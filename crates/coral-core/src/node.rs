//! The camera node: the full per-camera processing element.
//!
//! One `CameraNode` models the dedicated compute unit of one camera (the
//! two RPis + EdgeTPU of the paper), wiring together the continuous
//! processing of §4.1: Vehicle Identification → Inter-Camera Communication
//! → Vehicle Re-identification → Storage Client.

use crate::pool::CandidatePool;
use crate::reid::{ReIdentifier, ReidConfig, ReidMatch};
use coral_net::{ConnectionManager, DetectionEvent, EventId, Message, VertexId};
use coral_sim::CameraView;
use coral_storage::EdgeStorageNode;
use coral_topology::CameraId;
use coral_vision::{
    DetectorNoise, Frame, FrameId, GroundTruthId, IdentConfig, PostProcessor, Scene,
    SyntheticSsdDetector, VehicleIdentification, VehicleObservation,
};
use std::collections::BTreeSet;

/// Per-node configuration.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Vehicle-identification configuration (SORT, histograms, renderer).
    pub ident: IdentConfig,
    /// Detector noise model for this camera.
    pub detector_noise: DetectorNoise,
    /// Re-identification parameters.
    pub reid: ReidConfig,
    /// Candidate-pool lazy-GC threshold.
    pub pool_gc_size: usize,
    /// Prune matched pool entries eagerly instead of lazily — the
    /// alternative the paper rejects (§4.1.4); exposed for ablation.
    pub eager_pool_prune: bool,
    /// Fractional inset of the Context-of-Interest rectangle from the
    /// frame border (the CoI is "usually the central area", §4.1.2).
    pub coi_inset_frac: f64,
    /// Frame period in milliseconds (10.4 FPS ≈ 96 ms in the prototype).
    pub frame_period_ms: u64,
    /// Ship raw frames + annotations to the edge frame store (§4.2.2).
    /// Off by default in the simulation experiments (it multiplies memory
    /// traffic without affecting tracking metrics).
    pub store_frames: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            ident: IdentConfig::default(),
            detector_noise: DetectorNoise::default(),
            reid: ReidConfig::default(),
            pool_gc_size: 256,
            eager_pool_prune: false,
            coi_inset_frac: 0.05,
            frame_period_ms: 96,
            store_frames: false,
        }
    }
}

/// A re-identification performed by this node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReidRecord {
    /// The upstream event that was matched.
    pub upstream: EventId,
    /// The local event that matched it.
    pub local: EventId,
    /// The Bhattacharyya distance of the match.
    pub distance: f64,
}

/// The node-local result of the expensive per-frame analysis phase
/// (render → detect → SORT → feature-extract), produced by
/// [`CameraNode::analyze_frame`] and consumed by
/// [`CameraNode::commit_frame`].
///
/// Analysis touches only node-private state (the tracker, the frame
/// sequence counter), so different cameras' analyses are independent and
/// the runtime may compute them in parallel; everything that touches
/// shared state — storage, the candidate pool, outgoing messages — waits
/// for the commit phase, which the runtime performs in strict `CameraId`
/// order (see `DESIGN.md` §5).
#[derive(Debug)]
pub struct FrameAnalysis {
    frame_id: FrameId,
    completed: Vec<VehicleObservation>,
    /// Rendered pixels + annotations bound for the edge frame store (only
    /// when `store_frames` is on; the ingest itself is a commit-phase
    /// effect so cross-camera storage order stays sequential).
    stored: Option<(Frame, Vec<coral_storage::Annotation>)>,
    /// Ground-truth vehicles the detector fired on this frame, ascending
    /// id (evaluation only; see `IdentFrameResult::detected_gt`).
    detected: Vec<GroundTruthId>,
}

impl FrameAnalysis {
    /// The frame this analysis belongs to.
    pub fn frame_id(&self) -> FrameId {
        self.frame_id
    }

    /// Tracks completed this frame (vehicles that left the FOV).
    pub fn completed(&self) -> &[VehicleObservation] {
        &self.completed
    }

    /// Ground-truth vehicles the detector fired on this frame, ascending
    /// id (evaluation only).
    pub fn detected(&self) -> &[GroundTruthId] {
        &self.detected
    }
}

/// A cross-camera trajectory edge committed this frame, with everything a
/// federated runtime needs to replicate it to the upstream camera's
/// region store (see `DESIGN.md` §13). Single-region deployments ignore
/// these records entirely.
#[derive(Debug, Clone)]
pub struct HandoffEdge {
    /// The upstream vertex the edge leaves from.
    pub from_vertex: VertexId,
    /// The camera that generated the upstream event.
    pub from_camera: CameraId,
    /// The local (downstream) detection event; `vertex` is set.
    pub event: DetectionEvent,
    /// FOV-entry timestamp of the local event, milliseconds.
    pub first_ms: u64,
    /// Bhattacharyya distance of the re-identification (edge weight).
    pub distance: f64,
}

/// Output of processing one frame (or a flush).
#[derive(Debug, Clone, Default)]
pub struct FrameOutput {
    /// Messages to deliver to other cameras.
    pub messages: Vec<(CameraId, Message)>,
    /// Detection events generated this frame (one per vehicle that left
    /// the FOV).
    pub events: Vec<DetectionEvent>,
    /// Re-identifications performed this frame.
    pub reids: Vec<ReidRecord>,
    /// Cross-camera edges committed this frame (replication candidates).
    pub handoffs: Vec<HandoffEdge>,
}

/// The per-camera processing node.
#[derive(Debug)]
pub struct CameraNode {
    id: CameraId,
    view: CameraView,
    ident: VehicleIdentification<SyntheticSsdDetector>,
    connection: ConnectionManager,
    pool: CandidatePool,
    reid: ReIdentifier,
    storage: EdgeStorageNode,
    frame_seq: u64,
    frame_period_ms: u64,
    store_frames: bool,
    events_generated: u64,
}

impl CameraNode {
    /// Creates a node for `id` observing through `view`, persisting to
    /// `storage`.
    pub fn new(
        id: CameraId,
        view: CameraView,
        config: NodeConfig,
        storage: EdgeStorageNode,
        seed: u64,
    ) -> Self {
        let mut ident_cfg = config.ident.clone();
        ident_cfg.videoing_angle_deg = view.videoing_angle_deg;
        let inset = config.coi_inset_frac.clamp(0.0, 0.45);
        let (w, h) = (f64::from(view.image_width), f64::from(view.image_height));
        let coi =
            coral_geo::Polygon::rect(w * inset, h * inset, w * (1.0 - inset), h * (1.0 - inset));
        let detector = SyntheticSsdDetector::new(config.detector_noise, seed);
        Self {
            id,
            view,
            ident: VehicleIdentification::new(detector, PostProcessor::new(coi), ident_cfg, seed),
            connection: ConnectionManager::new(id, view.position, view.videoing_angle_deg),
            pool: if config.eager_pool_prune {
                CandidatePool::new_eager(config.pool_gc_size)
            } else {
                CandidatePool::new(config.pool_gc_size)
            },
            reid: ReIdentifier::new(config.reid),
            storage,
            frame_seq: 0,
            frame_period_ms: config.frame_period_ms.max(1),
            store_frames: config.store_frames,
            events_generated: 0,
        }
    }

    /// The camera id.
    pub fn id(&self) -> CameraId {
        self.id
    }

    /// The camera's view geometry.
    pub fn view(&self) -> &CameraView {
        &self.view
    }

    /// Swaps the node's storage handle. Region failover: the camera starts
    /// writing events to the adoptive region's store; vertex ids stay
    /// globally unique because all region stores share one allocator.
    pub fn set_storage(&mut self, storage: EdgeStorageNode) {
        self.storage = storage;
    }

    /// The candidate pool (telemetry).
    pub fn pool(&self) -> &CandidatePool {
        &self.pool
    }

    /// The communication element (telemetry).
    pub fn connection(&self) -> &ConnectionManager {
        &self.connection
    }

    /// The re-identification element (telemetry).
    pub fn reid(&self) -> &ReIdentifier {
        &self.reid
    }

    /// Detection events generated so far.
    pub fn events_generated(&self) -> u64 {
        self.events_generated
    }

    /// Tracks currently alive in the camera-local SORT tracker.
    pub fn live_track_count(&self) -> usize {
        self.ident.live_track_count()
    }

    /// Histogram scratch-arena counters: `(reuses, allocations)`.
    pub fn scratch_stats(&self) -> (u64, u64) {
        self.ident.scratch_stats()
    }

    /// Advances the frame counter for a tick on which the runtime's
    /// occupancy oracle proved no vehicle is near this camera *and* the
    /// tracker holds no live tracks. Produces exactly the [`FrameAnalysis`]
    /// that [`CameraNode::analyze_frame`]'s empty-scene fast path would —
    /// without building a scene, and (like that fast path) without drawing
    /// from the detector's clutter RNG — so sparse and dense stepping stay
    /// byte-identical.
    pub fn advance_idle_frame(&mut self) -> FrameAnalysis {
        debug_assert_eq!(
            self.ident.live_track_count(),
            0,
            "idle fast path requires an empty tracker"
        );
        let frame_id = FrameId(self.frame_seq);
        self.frame_seq += 1;
        FrameAnalysis {
            frame_id,
            completed: Vec::new(),
            stored: None,
            detected: Vec::new(),
        }
    }

    /// Processes one captured frame. `broadcast_roster`, when set, replaces
    /// MDCS routing with flooding to every listed camera (the baseline of
    /// §5.3); `None` uses the socket group.
    ///
    /// Equivalent to [`CameraNode::analyze_frame`] followed immediately by
    /// [`CameraNode::commit_frame`] — the split exists so the runtime can
    /// run the expensive analysis phase of many cameras in parallel.
    pub fn on_frame(
        &mut self,
        scene: &Scene,
        now_ms: u64,
        broadcast_roster: Option<&BTreeSet<CameraId>>,
    ) -> FrameOutput {
        let analysis = self.analyze_frame(scene);
        self.commit_frame(analysis, now_ms, broadcast_roster)
    }

    /// The expensive, node-local half of frame processing: render the
    /// scene, run detection/SORT/feature extraction, and collect the
    /// tracks completed this frame. Mutates only node-private state (the
    /// tracker and the frame sequence counter), so analyses of different
    /// cameras are independent and may run concurrently.
    pub fn analyze_frame(&mut self, scene: &Scene) -> FrameAnalysis {
        let frame_id = FrameId(self.frame_seq);
        self.frame_seq += 1;
        // Fast path: an empty scene with no live tracks cannot produce
        // detections, matches or expirations — skip rendering/inference.
        // (A camera watching an empty street spends its cycles idling.)
        if scene.actors.is_empty() && self.ident.live_track_count() == 0 {
            return FrameAnalysis {
                frame_id,
                completed: Vec::new(),
                stored: None,
                detected: Vec::new(),
            };
        }
        if self.store_frames {
            // Render once, analyse the same pixels, and carry the raw
            // frame with its annotations to the commit phase for the edge
            // frame store (§4.2.2).
            let frame = self.ident.render(frame_id, scene);
            let result = self.ident.process_rendered(frame_id, scene, &frame);
            let annotations = result
                .active
                .iter()
                .map(|st| coral_storage::Annotation {
                    bbox: st.bbox,
                    track: st.id,
                })
                .collect();
            FrameAnalysis {
                frame_id,
                completed: result.completed,
                stored: Some((frame, annotations)),
                detected: result.detected_gt,
            }
        } else {
            let result = self.ident.process_scene(frame_id, scene);
            FrameAnalysis {
                frame_id,
                completed: result.completed,
                stored: None,
                detected: result.detected_gt,
            }
        }
    }

    /// The shared-state half of frame processing: ship the stored frame
    /// (if any) to the edge store and turn each completed track into a
    /// detection event — storage vertex, pool re-identification, confirm
    /// and inform messages. The runtime calls this in strict `CameraId`
    /// order so shared effects interleave exactly as a sequential run.
    pub fn commit_frame(
        &mut self,
        analysis: FrameAnalysis,
        now_ms: u64,
        broadcast_roster: Option<&BTreeSet<CameraId>>,
    ) -> FrameOutput {
        if let Some((frame, annotations)) = analysis.stored {
            self.storage.ingest_frame(
                self.id,
                coral_storage::StoredFrame {
                    frame: analysis.frame_id,
                    timestamp_ms: now_ms,
                    pixels: Some(frame),
                    annotations,
                },
            );
        }
        let mut out = FrameOutput::default();
        for obs in analysis.completed {
            self.handle_observation(obs, now_ms, broadcast_roster, &mut out);
        }
        out
    }

    /// Flushes in-flight tracks (end of stream), emitting their events.
    pub fn flush(
        &mut self,
        now_ms: u64,
        broadcast_roster: Option<&BTreeSet<CameraId>>,
    ) -> FrameOutput {
        let mut out = FrameOutput::default();
        for obs in self.ident.flush() {
            self.handle_observation(obs, now_ms, broadcast_roster, &mut out);
        }
        out
    }

    /// Handles an incoming message, returning any messages to send in
    /// response (confirmation relays).
    pub fn on_message(&mut self, message: Message, now_ms: u64) -> Vec<(CameraId, Message)> {
        match message {
            Message::Inform(event) => {
                self.pool.add(event, now_ms);
                Vec::new()
            }
            Message::Confirm {
                event,
                reidentified_by,
            } => {
                if event.camera == self.id {
                    // We are the predecessor: relay to the rest of our MDCS.
                    self.connection.on_confirmation(event, reidentified_by)
                } else {
                    // A sibling downstream camera won the match: annotate
                    // for lazy GC.
                    self.pool.mark_matched_remote(event);
                    Vec::new()
                }
            }
            Message::TopologyUpdate(update) => {
                self.connection.on_topology_update(update);
                Vec::new()
            }
            Message::Heartbeat { .. } => Vec::new(), // cameras do not receive heartbeats
            Message::Replicate { .. } => Vec::new(), // storage-plane traffic, not for cameras
            // Reliable-delivery framing is normally stripped by the
            // transport; unwrap defensively if a raw frame reaches us.
            Message::Sequenced { payload, .. } => self.on_message(*payload, now_ms),
            Message::Ack { .. } => Vec::new(), // transport-internal traffic
        }
    }

    /// Builds the periodic heartbeat for the topology server.
    pub fn heartbeat(&mut self) -> Message {
        self.connection.heartbeat()
    }

    fn handle_observation(
        &mut self,
        obs: VehicleObservation,
        now_ms: u64,
        broadcast_roster: Option<&BTreeSet<CameraId>>,
        out: &mut FrameOutput,
    ) {
        self.events_generated += 1;
        let span_frames = obs.last_frame.0.saturating_sub(obs.first_frame.0);
        let first_ms = now_ms.saturating_sub(span_frames * self.frame_period_ms);
        let mut event = DetectionEvent {
            camera: self.id,
            timestamp_ms: now_ms,
            heading: obs.heading,
            bearing_deg: obs.bearing_deg,
            signature: obs.signature,
            track: obs.track,
            vertex: None,
            ground_truth: obs.ground_truth,
        };
        // Storage: insert the vertex, then add its id back to the JSON
        // object "such that [it] can be accessed from other cameras"
        // (§4.2.1 step a). The signature rides along so investigators can
        // query by appearance.
        let vertex = self.storage.insert_event_with_signature(
            event.event_id(),
            first_ms,
            now_ms,
            event.heading,
            Some(event.signature.clone()),
            event.ground_truth,
        );
        event.vertex = Some(vertex);

        // Re-identification against the candidate pool (§4.1.4).
        if let Some(ReidMatch {
            candidate,
            distance,
        }) = self.reid.match_event(&event, &self.pool)
        {
            if let Some(cand) = self.pool.get(candidate) {
                if let Some(up_vertex) = cand.event.vertex {
                    // §4.2.1 step b: edge pointing to the newer detection,
                    // weighted by the Bhattacharyya distance.
                    let mut inserted = self.storage.insert_edge(up_vertex, vertex, distance);
                    if matches!(inserted, Err(coral_storage::GraphError::UnknownVertex(_))) {
                        // Federated deployment: the upstream vertex lives
                        // in another region's store. Adopt it at its
                        // global id from the inform copy — the only
                        // metadata this camera holds, so the interval is
                        // the point timestamp — then retry. The union view
                        // prefers the owner region's record, so the
                        // approximation never surfaces in merged queries.
                        self.storage.adopt_event(
                            up_vertex,
                            cand.event.event_id(),
                            cand.event.timestamp_ms,
                            cand.event.timestamp_ms,
                            cand.event.heading,
                            Some(cand.event.signature.clone()),
                            cand.event.ground_truth,
                        );
                        inserted = self.storage.insert_edge(up_vertex, vertex, distance);
                    }
                    let _ = inserted;
                    out.handoffs.push(HandoffEdge {
                        from_vertex: up_vertex,
                        from_camera: cand.event.camera,
                        event: event.clone(),
                        first_ms,
                        distance,
                    });
                }
            }
            self.pool.mark_matched_local(candidate);
            out.messages
                .push(self.connection.confirm_to_upstream(candidate));
            out.reids.push(ReidRecord {
                upstream: candidate,
                local: event.event_id(),
                distance,
            });
        }

        // Informing stage: MDCS routing, or flooding for the baseline.
        let informs = match broadcast_roster {
            Some(roster) => {
                let recipients: BTreeSet<CameraId> =
                    roster.iter().copied().filter(|&c| c != self.id).collect();
                self.connection.on_detection_to(event.clone(), recipients)
            }
            None => self.connection.on_detection(event.clone()),
        };
        out.messages.extend(informs);
        out.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coral_geo::GeoPoint;
    use coral_topology::MdcsUpdate;
    use coral_vision::{BoundingBox, GroundTruthId, ObjectClass, SceneActor, VehicleAppearance};

    fn view() -> CameraView {
        CameraView {
            position: GeoPoint::new(33.77, -84.39),
            videoing_angle_deg: 0.0,
            range_m: 35.0,
            image_width: 200,
            image_height: 160,
            effects: None,
        }
    }

    fn perfect_node(id: u32, storage: EdgeStorageNode) -> CameraNode {
        let config = NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            ..NodeConfig::default()
        };
        CameraNode::new(CameraId(id), view(), config, storage, 7 + u64::from(id))
    }

    fn car_scene(gt: u64, t: u32) -> Scene {
        Scene {
            width: 200,
            height: 160,
            actors: vec![SceneActor {
                gt: GroundTruthId(gt),
                class: ObjectClass::Car,
                bbox: BoundingBox::from_center(30.0 + 6.0 * f64::from(t), 80.0, 36.0, 22.0)
                    .unwrap(),
                appearance: VehicleAppearance::from_seed(gt),
            }],
        }
    }

    /// Drives a car through the node's FOV; returns all outputs.
    fn drive(node: &mut CameraNode, gt: u64, frames: u32, t0_ms: u64) -> FrameOutput {
        let mut all = FrameOutput::default();
        let mut now = t0_ms;
        for t in 0..frames {
            let out = node.on_frame(&car_scene(gt, t), now, None);
            merge(&mut all, out);
            now += 96;
        }
        for _ in 0..6 {
            let out = node.on_frame(&Scene::empty(200, 160), now, None);
            merge(&mut all, out);
            now += 96;
        }
        all
    }

    fn merge(all: &mut FrameOutput, out: FrameOutput) {
        all.messages.extend(out.messages);
        all.events.extend(out.events);
        all.reids.extend(out.reids);
    }

    #[test]
    fn vehicle_passage_generates_one_event_with_vertex() {
        let storage = EdgeStorageNode::default();
        let mut node = perfect_node(0, storage.clone());
        let out = drive(&mut node, 4, 15, 10_000);
        assert_eq!(out.events.len(), 1);
        let e = &out.events[0];
        assert_eq!(e.camera, CameraId(0));
        assert!(e.vertex.is_some(), "vertex id added back to the event");
        assert_eq!(e.ground_truth, Some(GroundTruthId(4)));
        let s = storage.stats();
        assert_eq!(s.vertices, 1);
        assert_eq!(s.edges, 0);
        // No MDCS configured: nothing informed.
        assert!(out.messages.is_empty());
        assert_eq!(node.events_generated(), 1);
    }

    #[test]
    fn cross_camera_reid_builds_trajectory_edge_and_confirms() {
        let storage = EdgeStorageNode::default();
        let mut upstream = perfect_node(0, storage.clone());
        let mut downstream = perfect_node(1, storage.clone());

        // The red car (gt 4) crosses the upstream camera.
        let up_out = drive(&mut upstream, 4, 15, 0);
        let up_event = up_out.events[0].clone();

        // Deliver the inform to the downstream camera.
        let replies = downstream.on_message(Message::Inform(up_event.clone()), 3_000);
        assert!(replies.is_empty());
        assert_eq!(downstream.pool().len(), 1);

        // The same car appears at the downstream camera a few seconds later.
        let down_out = drive(&mut downstream, 4, 15, 9_000);
        assert_eq!(down_out.events.len(), 1);
        assert_eq!(down_out.reids.len(), 1, "should re-identify the red car");
        let r = down_out.reids[0];
        assert_eq!(r.upstream, up_event.event_id());

        // The confirm message goes to the upstream camera.
        let confirm = down_out
            .messages
            .iter()
            .find(|(_, m)| matches!(m, Message::Confirm { .. }))
            .expect("confirmation sent");
        assert_eq!(confirm.0, CameraId(0));

        // A trajectory edge now links the two events.
        let s = storage.stats();
        assert_eq!((s.vertices, s.edges), (2, 1));
        let up_vertex = up_event.vertex.unwrap();
        storage.with_graph(|g| {
            assert_eq!(g.out_edges(up_vertex).len(), 1);
        });
        // The pool entry is annotated matched (lazy GC).
        assert_eq!(downstream.pool().unmatched_len(), 0);
        assert_eq!(downstream.pool().len(), 1);
    }

    #[test]
    fn different_vehicle_is_not_reidentified() {
        let storage = EdgeStorageNode::default();
        let mut upstream = perfect_node(0, storage.clone());
        let mut downstream = perfect_node(1, storage.clone());
        let up_out = drive(&mut upstream, 1, 15, 0); // black car
        downstream.on_message(Message::Inform(up_out.events[0].clone()), 2_000);
        let down_out = drive(&mut downstream, 4, 15, 9_000); // red car
        assert!(down_out.reids.is_empty(), "colors differ: no match");
        assert_eq!(storage.stats().edges, 0);
    }

    #[test]
    fn confirm_for_own_event_is_relayed_confirm_for_foreign_marks_pool() {
        let storage = EdgeStorageNode::default();
        let mut node = perfect_node(0, storage.clone());
        // Foreign event in the pool.
        let mut other = perfect_node(2, storage);
        let foreign = drive(&mut other, 5, 12, 0).events[0].clone();
        node.on_message(Message::Inform(foreign.clone()), 1_000);
        assert_eq!(node.pool().unmatched_len(), 1);
        // A sibling camera matched it: mark, no relay.
        let replies = node.on_message(
            Message::Confirm {
                event: foreign.event_id(),
                reidentified_by: CameraId(3),
            },
            2_000,
        );
        assert!(replies.is_empty());
        assert_eq!(node.pool().unmatched_len(), 0);
    }

    #[test]
    fn broadcast_roster_floods_everyone_but_self() {
        let storage = EdgeStorageNode::default();
        let mut node = perfect_node(0, storage);
        let roster: BTreeSet<CameraId> = (0..5).map(CameraId).collect();
        let mut all = FrameOutput::default();
        let mut now = 0;
        for t in 0..12 {
            merge(
                &mut all,
                node.on_frame(&car_scene(4, t), now, Some(&roster)),
            );
            now += 96;
        }
        for _ in 0..6 {
            merge(
                &mut all,
                node.on_frame(&Scene::empty(200, 160), now, Some(&roster)),
            );
            now += 96;
        }
        let informs: Vec<CameraId> = all
            .messages
            .iter()
            .filter(|(_, m)| matches!(m, Message::Inform(_)))
            .map(|(c, _)| *c)
            .collect();
        assert_eq!(informs.len(), 4, "four peers informed: {informs:?}");
        assert!(!informs.contains(&CameraId(0)));
    }

    #[test]
    fn topology_update_reconfigures_socket_group() {
        let storage = EdgeStorageNode::default();
        let mut node = perfect_node(0, storage);
        assert_eq!(node.connection().socket_group().reconfigurations(), 0);
        node.on_message(
            Message::TopologyUpdate(MdcsUpdate {
                camera: CameraId(0),
                table: Default::default(),
                version: 1,
            }),
            0,
        );
        assert_eq!(node.connection().socket_group().reconfigurations(), 1);
    }

    #[test]
    fn analyze_then_commit_matches_on_frame() {
        let storage_a = EdgeStorageNode::default();
        let storage_b = EdgeStorageNode::default();
        let mut a = perfect_node(0, storage_a.clone());
        let mut b = perfect_node(0, storage_b.clone());
        let mut all_a = FrameOutput::default();
        let mut all_b = FrameOutput::default();
        let mut now = 0;
        for t in 0..15 {
            merge(&mut all_a, a.on_frame(&car_scene(4, t), now, None));
            let analysis = b.analyze_frame(&car_scene(4, t));
            merge(&mut all_b, b.commit_frame(analysis, now, None));
            now += 96;
        }
        for _ in 0..6 {
            merge(&mut all_a, a.on_frame(&Scene::empty(200, 160), now, None));
            let analysis = b.analyze_frame(&Scene::empty(200, 160));
            merge(&mut all_b, b.commit_frame(analysis, now, None));
            now += 96;
        }
        let ids_a: Vec<_> = all_a.events.iter().map(|e| e.event_id()).collect();
        let ids_b: Vec<_> = all_b.events.iter().map(|e| e.event_id()).collect();
        assert_eq!(ids_a, ids_b);
        assert_eq!(all_a.messages.len(), all_b.messages.len());
        assert_eq!(storage_a.stats(), storage_b.stats());
    }

    #[test]
    fn flush_emits_in_flight_tracks() {
        let storage = EdgeStorageNode::default();
        let mut node = perfect_node(0, storage);
        let mut now = 0;
        for t in 0..8 {
            node.on_frame(&car_scene(4, t), now, None);
            now += 96;
        }
        let out = node.flush(now, None);
        assert_eq!(out.events.len(), 1);
    }
}
