//! The end-to-end Coral-Pie system harness.
//!
//! Deploys camera nodes on a road network, attaches the cloud topology
//! server and edge storage, runs ground-truth traffic through the cameras'
//! fields of view on a deterministic discrete-event loop, and collects the
//! telemetry behind every system experiment in the paper's §5: inform
//! arrival times (Fig. 10a), candidate-pool pollution (Figs. 10b, 12b),
//! failure recovery (Fig. 11) and application-level accuracy (Table 2).

use crate::metrics::{
    event_detection_accuracy, reid_accuracy, transitions_from_passages, Accuracy, Passage,
    Transition,
};
use crate::node::{CameraNode, NodeConfig};
use crate::pool::PoolStats;
use coral_geo::{GeoPoint, IntersectionId, RoadNetwork};
use coral_net::Message;
use coral_sim::{
    CameraView, FailureKind, FailureSchedule, LinkProfile, PoissonArrivals, SimDuration, SimTime,
    TrafficConfig, TrafficModel,
};
use coral_storage::EdgeStorageNode;
use coral_topology::{CameraId, MdcsOptions, ServerConfig, TopologyServer};
use coral_vision::GroundTruthId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};

/// Whole-system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Per-node configuration (vision, re-id, pool).
    pub node: NodeConfig,
    /// Frame capture period (96 ms ≈ the prototype's 10.4 FPS).
    pub frame_period: SimDuration,
    /// Camera heartbeat interval (§5.4 evaluates 2 s and 5 s).
    pub heartbeat_interval: SimDuration,
    /// Missed heartbeats before the server declares a camera failed.
    pub miss_threshold: u32,
    /// How often the server scans for missed heartbeats.
    pub liveness_check_period: SimDuration,
    /// MDCS search options.
    pub mdcs: MdcsOptions,
    /// Network latency models.
    pub links: LinkProfile,
    /// Traffic model parameters.
    pub traffic: TrafficConfig,
    /// Camera observation range, meters.
    pub view_range_m: f64,
    /// Camera image width, pixels.
    pub image_width: u32,
    /// Camera image height, pixels.
    pub image_height: u32,
    /// Replace MDCS routing with broadcast flooding (the §5.3 baseline).
    pub broadcast: bool,
    /// Master seed for all stochastic components.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            node: NodeConfig::default(),
            frame_period: SimDuration::from_millis(96),
            heartbeat_interval: SimDuration::from_secs(2),
            miss_threshold: 2,
            liveness_check_period: SimDuration::from_millis(200),
            mdcs: MdcsOptions::default(),
            links: LinkProfile::default(),
            traffic: TrafficConfig::default(),
            view_range_m: 35.0,
            image_width: 200,
            image_height: 160,
            broadcast: false,
            seed: 42,
        }
    }
}

/// Deployment spec of one camera.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraSpec {
    /// Camera id.
    pub id: CameraId,
    /// Intersection the camera watches.
    pub site: IntersectionId,
    /// Videoing angle, degrees clockwise from north.
    pub videoing_angle_deg: f64,
}

/// An inform-message arrival at a camera (the Fig. 10a measurement).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InformArrival {
    /// Receiving camera.
    pub at: CameraId,
    /// The camera that generated the event.
    pub from: CameraId,
    /// Ground-truth vehicle of the event, if attributable.
    pub vehicle: Option<GroundTruthId>,
    /// Delivery time.
    pub arrived: SimTime,
}

/// A completed failure-recovery measurement (the Fig. 11 metric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recovery {
    /// The failed camera.
    pub killed: CameraId,
    /// When it was killed.
    pub killed_at: SimTime,
    /// When the last affected camera received its topology update.
    pub recovered_at: SimTime,
}

impl Recovery {
    /// The recovery duration.
    pub fn duration(&self) -> SimDuration {
        self.recovered_at.since(self.killed_at)
    }
}

/// Telemetry accumulated over a run.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Ground-truth FOV passages.
    pub passages: Vec<Passage>,
    /// Inform-message arrivals.
    pub informs: Vec<InformArrival>,
    /// Completed failure recoveries.
    pub recoveries: Vec<Recovery>,
    /// Detection events generated: `(camera, ground truth, at)`.
    pub events: Vec<(CameraId, Option<GroundTruthId>, SimTime)>,
    /// Total messages delivered.
    pub messages_delivered: u64,
    /// Inform messages delivered.
    pub informs_delivered: u64,
    /// Confirm messages delivered.
    pub confirms_delivered: u64,
    /// Topology updates delivered.
    pub updates_delivered: u64,
    /// Total JSON bytes of delivered horizontal (camera-to-camera)
    /// messages — the backhaul-free traffic the §3 architecture argument
    /// is about.
    pub horizontal_bytes: u64,
    /// Total JSON bytes of cloud-bound control traffic (heartbeats) and
    /// cloud-to-camera topology updates.
    pub cloud_bytes: u64,
}

/// The final report of a run.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Per-camera event-detection accuracy (Table 2).
    pub detection: BTreeMap<CameraId, Accuracy>,
    /// Cross-camera re-identification accuracy (§5.6).
    pub reid: Accuracy,
    /// Ground-truth transitions.
    pub transitions: Vec<Transition>,
    /// Per-camera pool statistics and current spurious fraction
    /// (Figs. 10b / 12b).
    pub pools: BTreeMap<CameraId, (PoolStats, f64)>,
}

#[derive(Debug, Clone)]
enum Ev {
    GlobalTick,
    Heartbeat(CameraId),
    CloudHeartbeat(CameraId, GeoPoint, f64),
    LivenessCheck,
    Deliver(CameraId, Message),
    Kill(CameraId),
}

#[derive(Debug)]
struct Queued {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug)]
struct RecoveryTracker {
    killed: CameraId,
    killed_at: SimTime,
    outstanding: BTreeSet<CameraId>,
}

/// The deployed system.
#[derive(Debug)]
pub struct CoralPieSystem {
    config: SystemConfig,
    server: TopologyServer,
    storage: EdgeStorageNode,
    traffic: TrafficModel,
    arrivals: Option<PoissonArrivals>,
    nodes: BTreeMap<CameraId, CameraNode>,
    alive: BTreeSet<CameraId>,
    queue: BinaryHeap<Reverse<Queued>>,
    seq: u64,
    now: SimTime,
    last_traffic_step: SimTime,
    rng: StdRng,
    telemetry: Telemetry,
    in_fov: HashMap<CameraId, HashSet<GroundTruthId>>,
    recovery_trackers: Vec<RecoveryTracker>,
    pending_kills: Vec<(CameraId, SimTime)>,
    roster: BTreeSet<CameraId>,
}

impl CoralPieSystem {
    /// Deploys cameras on `net` at the given intersections and schedules
    /// the initial event cycle.
    pub fn new(net: RoadNetwork, cameras: &[CameraSpec], config: SystemConfig) -> Self {
        let placements: Vec<(CameraId, GeoPoint, f64)> = cameras
            .iter()
            .map(|spec| {
                let position = net
                    .intersection(spec.site)
                    .expect("camera site exists")
                    .position;
                (spec.id, position, spec.videoing_angle_deg)
            })
            .collect();
        Self::with_positions(net, &placements, config)
    }

    /// Deploys cameras by raw geographic position — the paper's actual
    /// join semantics (§3.3): the topology server snaps each camera to the
    /// nearest intersection, or assigns it to a lane when it sits along a
    /// road segment (§4.3, Fig. 8). Use this to deploy lane-resident
    /// cameras.
    pub fn with_positions(
        net: RoadNetwork,
        cameras: &[(CameraId, GeoPoint, f64)],
        config: SystemConfig,
    ) -> Self {
        let server = TopologyServer::new(
            net.clone(),
            ServerConfig {
                heartbeat_interval_ms: config.heartbeat_interval.as_millis(),
                miss_threshold: config.miss_threshold,
                snap_radius_m: 30.0,
                mdcs: config.mdcs,
            },
        );
        let storage = EdgeStorageNode::default();
        let traffic = TrafficModel::new(net.clone(), config.traffic, config.seed ^ TRAFFIC_SEED_MIX);
        let mut system = Self {
            rng: StdRng::seed_from_u64(config.seed ^ 0x1a7e),
            server,
            storage: storage.clone(),
            traffic,
            arrivals: None,
            nodes: BTreeMap::new(),
            alive: BTreeSet::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            last_traffic_step: SimTime::ZERO,
            telemetry: Telemetry::default(),
            in_fov: HashMap::new(),
            recovery_trackers: Vec::new(),
            pending_kills: Vec::new(),
            roster: BTreeSet::new(),
            config,
        };
        for (i, &(id, position, angle)) in cameras.iter().enumerate() {
            let view = CameraView {
                position,
                videoing_angle_deg: angle,
                range_m: system.config.view_range_m,
                image_width: system.config.image_width,
                image_height: system.config.image_height,
            };
            let node = CameraNode::new(
                id,
                view,
                system.config.node.clone(),
                storage.clone(),
                system.config.seed ^ (0x5eed + id.0 as u64),
            );
            system.nodes.insert(id, node);
            system.alive.insert(id);
            system.roster.insert(id);
            // Stagger initial heartbeats so joins are ordered but quick.
            system.push(SimTime::from_millis(i as u64 + 1), Ev::Heartbeat(id));
        }
        system.push(
            SimTime::ZERO + system.config.frame_period,
            Ev::GlobalTick,
        );
        system.push(
            SimTime::ZERO + system.config.liveness_check_period * 5,
            Ev::LivenessCheck,
        );
        system
    }

    /// The traffic model (to add lights or spawn vehicles before running).
    pub fn traffic_mut(&mut self) -> &mut TrafficModel {
        &mut self.traffic
    }

    /// The traffic model, read-only.
    pub fn traffic(&self) -> &TrafficModel {
        &self.traffic
    }

    /// Installs an open-workload arrival process.
    pub fn set_arrivals(&mut self, arrivals: PoissonArrivals) {
        self.arrivals = Some(arrivals);
    }

    /// Schedules the failure workload.
    pub fn set_failures(&mut self, schedule: &FailureSchedule) {
        for event in schedule.events() {
            match event.kind {
                FailureKind::Kill => self.push(event.at, Ev::Kill(event.camera)),
                FailureKind::Restore => { /* restores are modelled as re-joins via heartbeats */ }
            }
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The shared storage node.
    pub fn storage(&self) -> &EdgeStorageNode {
        &self.storage
    }

    /// The topology server.
    pub fn server(&self) -> &TopologyServer {
        &self.server
    }

    /// A camera node, if deployed.
    pub fn node(&self, id: CameraId) -> Option<&CameraNode> {
        self.nodes.get(&id)
    }

    /// Cameras currently alive.
    pub fn alive(&self) -> &BTreeSet<CameraId> {
        &self.alive
    }

    /// Accumulated telemetry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Runs the system until `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > until {
                break;
            }
            let Reverse(q) = self.queue.pop().expect("peeked");
            self.now = q.at;
            self.dispatch(q.ev);
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Flushes all in-flight tracks at the end of a run, synchronously
    /// delivering the resulting protocol messages.
    pub fn finish(&mut self) {
        let now_ms = self.now.as_millis();
        let roster = self.config.broadcast.then(|| self.roster.clone());
        let mut pending: Vec<(CameraId, Message)> = Vec::new();
        let ids: Vec<CameraId> = self.alive.iter().copied().collect();
        for id in ids {
            let node = self.nodes.get_mut(&id).expect("alive node exists");
            let out = node.flush(now_ms, roster.as_ref());
            for e in &out.events {
                self.telemetry
                    .events
                    .push((id, e.ground_truth, self.now));
            }
            pending.extend(out.messages);
        }
        // Drain message cascades synchronously (zero-latency epilogue).
        while let Some((to, msg)) = pending.pop() {
            if !self.alive.contains(&to) {
                continue;
            }
            self.record_delivery(to, &msg);
            let node = self.nodes.get_mut(&to).expect("alive node exists");
            pending.extend(node.on_message(msg, now_ms));
        }
    }

    /// Ground-truth-based inform redundancy per camera: the fraction of
    /// delivered inform messages whose vehicle never subsequently entered
    /// the receiving camera's field of view.
    ///
    /// This is the paper's §5.3 methodology — "we first isolate the
    /// computer vision errors ... by manually labeling the ground truth ...
    /// and accounting the 'unmatched' detection events (at the end of the
    /// experiment) in the candidate pool as 'redundant'" — with the traffic
    /// simulator playing the role of the labeled ground truth.
    pub fn inform_redundancy(&self) -> BTreeMap<CameraId, (u64, u64)> {
        // Per (camera, vehicle): a delivered inform is useful only if the
        // vehicle subsequently enters the camera's FOV, and each passage
        // can consume at most one inform (the camera re-identifies each
        // vehicle once). Everything else is redundant. This is redundancy
        // under *ideal* vision, the quantity the paper isolates by manual
        // ground-truth labeling.
        let mut informs: BTreeMap<(CameraId, GroundTruthId), Vec<u64>> = BTreeMap::new();
        let mut untagged: BTreeMap<CameraId, u64> = BTreeMap::new();
        for inf in &self.telemetry.informs {
            match inf.vehicle {
                Some(v) => informs
                    .entry((inf.at, v))
                    .or_default()
                    .push(inf.arrived.as_millis()),
                None => *untagged.entry(inf.at).or_insert(0) += 1,
            }
        }
        let mut passages: BTreeMap<(CameraId, GroundTruthId), Vec<u64>> = BTreeMap::new();
        for p in &self.telemetry.passages {
            passages
                .entry((p.camera, p.vehicle))
                .or_default()
                .push(p.entered_ms);
        }
        let mut out: BTreeMap<CameraId, (u64, u64)> = BTreeMap::new();
        for cam in self.nodes.keys() {
            out.insert(*cam, (0, 0));
        }
        // Small slack for the inform racing the vehicle over the last hop.
        const SLACK_MS: u64 = 5_000;
        for ((cam, vehicle), arrivals) in &mut informs {
            arrivals.sort_unstable();
            let mut available = passages
                .get(&(*cam, *vehicle))
                .cloned()
                .unwrap_or_default();
            available.sort_unstable();
            let mut useful = 0u64;
            for &arrival in arrivals.iter() {
                if let Some(pos) = available
                    .iter()
                    .position(|&p| p + SLACK_MS >= arrival)
                {
                    available.remove(pos);
                    useful += 1;
                }
            }
            let entry = out.entry(*cam).or_insert((0, 0));
            entry.0 += arrivals.len() as u64 - useful;
            entry.1 += arrivals.len() as u64;
        }
        for (cam, &n) in &untagged {
            // Events without ground-truth attribution (clutter) are
            // redundant by definition.
            let entry = out.entry(*cam).or_insert((0, 0));
            entry.0 += n;
            entry.1 += n;
        }
        out
    }

    /// Builds the accuracy/pool report for the run so far.
    pub fn report(&self) -> SystemReport {
        let events: Vec<(CameraId, Option<GroundTruthId>)> = self
            .telemetry
            .events
            .iter()
            .map(|&(c, gt, _)| (c, gt))
            .collect();
        let detection = event_detection_accuracy(&self.telemetry.passages, &events);
        let transitions = transitions_from_passages(&self.telemetry.passages);
        let reid = self
            .storage
            .with_graph(|g| reid_accuracy(g, &transitions));
        let pools = self
            .nodes
            .iter()
            .map(|(&id, n)| (id, (n.pool().stats(), n.pool().spurious_fraction())))
            .collect();
        SystemReport {
            detection,
            reid,
            transitions,
            pools,
        }
    }

    fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Queued { at, seq, ev }));
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::GlobalTick => self.on_tick(),
            Ev::Heartbeat(cam) => self.on_heartbeat(cam),
            Ev::CloudHeartbeat(cam, pos, angle) => self.on_cloud_heartbeat(cam, pos, angle),
            Ev::LivenessCheck => self.on_liveness_check(),
            Ev::Deliver(to, msg) => self.on_deliver(to, msg),
            Ev::Kill(cam) => self.on_kill(cam),
        }
    }

    fn on_tick(&mut self) {
        let dt = self.now.since(self.last_traffic_step);
        // Workload arrivals, then kinematics.
        if let Some(arrivals) = &mut self.arrivals {
            arrivals.advance(self.now, &mut self.traffic);
        }
        self.traffic.step(self.last_traffic_step, dt);
        self.last_traffic_step = self.now;

        let now_ms = self.now.as_millis();
        let roster = self.config.broadcast.then(|| self.roster.clone());
        let ids: Vec<CameraId> = self.alive.iter().copied().collect();
        let mut outgoing: Vec<(CameraId, Message)> = Vec::new();
        for id in ids {
            let node = self.nodes.get_mut(&id).expect("alive node exists");
            let scene = node.view().scene(&self.traffic);
            // Ground-truth passage detection (edge-triggered on FOV entry).
            let current: HashSet<GroundTruthId> = scene.actors.iter().map(|a| a.gt).collect();
            let prev = self.in_fov.entry(id).or_default();
            for &gt in current.difference(prev) {
                self.telemetry.passages.push(Passage {
                    camera: id,
                    vehicle: gt,
                    entered_ms: now_ms,
                });
            }
            *prev = current;

            let out = node.on_frame(&scene, now_ms, roster.as_ref());
            for e in &out.events {
                self.telemetry.events.push((id, e.ground_truth, self.now));
            }
            outgoing.extend(out.messages);
        }
        for (to, msg) in outgoing {
            let delay = self.config.links.device_to_device.sample(&mut self.rng);
            self.push(self.now + delay, Ev::Deliver(to, msg));
        }
        let next = self.now + self.config.frame_period;
        self.push(next, Ev::GlobalTick);
    }

    fn on_heartbeat(&mut self, cam: CameraId) {
        if !self.alive.contains(&cam) {
            return; // dead cameras stop beating
        }
        let node = self.nodes.get_mut(&cam).expect("alive node exists");
        let Message::Heartbeat {
            camera,
            position,
            videoing_angle_deg,
        } = node.heartbeat()
        else {
            unreachable!("heartbeat() builds heartbeats");
        };
        self.telemetry.cloud_bytes += Message::Heartbeat {
            camera,
            position,
            videoing_angle_deg,
        }
        .encoded_len() as u64;
        let delay = self.config.links.device_to_cloud.sample(&mut self.rng);
        self.push(
            self.now + delay,
            Ev::CloudHeartbeat(camera, position, videoing_angle_deg),
        );
        let next = self.now + self.config.heartbeat_interval;
        self.push(next, Ev::Heartbeat(cam));
    }

    fn on_cloud_heartbeat(&mut self, cam: CameraId, position: GeoPoint, angle: f64) {
        let updates = self
            .server
            .handle_heartbeat(cam, position, angle, self.now.as_millis())
            .unwrap_or_default();
        for u in updates {
            if self.alive.contains(&u.camera) {
                let delay = self.config.links.device_to_cloud.sample(&mut self.rng);
                self.push(
                    self.now + delay,
                    Ev::Deliver(u.camera, Message::TopologyUpdate(u)),
                );
            }
        }
    }

    fn on_liveness_check(&mut self) {
        let before: BTreeSet<CameraId> = self.server.active_cameras().into_iter().collect();
        let updates = self.server.check_liveness(self.now.as_millis());
        if !updates.is_empty() {
            let after: BTreeSet<CameraId> = self.server.active_cameras().into_iter().collect();
            let removed: Vec<CameraId> = before.difference(&after).copied().collect();
            let recipients: BTreeSet<CameraId> = updates
                .iter()
                .map(|u| u.camera)
                .filter(|c| self.alive.contains(c))
                .collect();
            for r in removed {
                if let Some(pos) = self.pending_kills.iter().position(|&(c, _)| c == r) {
                    let (_, killed_at) = self.pending_kills.remove(pos);
                    if recipients.is_empty() {
                        // No survivors affected: instantaneous recovery.
                        self.telemetry.recoveries.push(Recovery {
                            killed: r,
                            killed_at,
                            recovered_at: self.now,
                        });
                    } else {
                        self.recovery_trackers.push(RecoveryTracker {
                            killed: r,
                            killed_at,
                            outstanding: recipients.clone(),
                        });
                    }
                }
            }
            for u in updates {
                if self.alive.contains(&u.camera) {
                    let delay = self.config.links.device_to_cloud.sample(&mut self.rng);
                    self.push(
                        self.now + delay,
                        Ev::Deliver(u.camera, Message::TopologyUpdate(u)),
                    );
                }
            }
        }
        let next = self.now + self.config.liveness_check_period;
        self.push(next, Ev::LivenessCheck);
    }

    fn on_deliver(&mut self, to: CameraId, msg: Message) {
        if !self.alive.contains(&to) {
            return; // messages to dead cameras are lost
        }
        self.record_delivery(to, &msg);
        if let Message::TopologyUpdate(_) = &msg {
            self.note_update_delivered(to);
        }
        let now_ms = self.now.as_millis();
        let node = self.nodes.get_mut(&to).expect("alive node exists");
        let replies = node.on_message(msg, now_ms);
        for (next_to, reply) in replies {
            let delay = self.config.links.device_to_device.sample(&mut self.rng);
            self.push(self.now + delay, Ev::Deliver(next_to, reply));
        }
    }

    fn on_kill(&mut self, cam: CameraId) {
        if self.alive.remove(&cam) {
            self.pending_kills.push((cam, self.now));
        }
    }

    fn record_delivery(&mut self, to: CameraId, msg: &Message) {
        self.telemetry.messages_delivered += 1;
        match msg {
            Message::Inform(e) => {
                self.telemetry.informs_delivered += 1;
                self.telemetry.horizontal_bytes += msg.encoded_len() as u64;
                self.telemetry.informs.push(InformArrival {
                    at: to,
                    from: e.camera,
                    vehicle: e.ground_truth,
                    arrived: self.now,
                });
            }
            Message::Confirm { .. } => {
                self.telemetry.confirms_delivered += 1;
                self.telemetry.horizontal_bytes += msg.encoded_len() as u64;
            }
            Message::TopologyUpdate(_) => {
                self.telemetry.updates_delivered += 1;
                self.telemetry.cloud_bytes += msg.encoded_len() as u64;
            }
            Message::Heartbeat { .. } => {}
        }
    }

    fn note_update_delivered(&mut self, to: CameraId) {
        let now = self.now;
        let mut finished = Vec::new();
        for (i, t) in self.recovery_trackers.iter_mut().enumerate() {
            t.outstanding.remove(&to);
            if t.outstanding.is_empty() {
                finished.push(i);
            }
        }
        for i in finished.into_iter().rev() {
            let t = self.recovery_trackers.remove(i);
            self.telemetry.recoveries.push(Recovery {
                killed: t.killed,
                killed_at: t.killed_at,
                recovered_at: now,
            });
        }
    }
}

/// Seed-mixing constant decorrelating the traffic RNG from the system RNG.
const TRAFFIC_SEED_MIX: u64 = 0x070A_FF1C;

#[cfg(test)]
mod tests {
    use super::*;
    use coral_geo::generators;
    use coral_sim::TrafficLight;
    use coral_vision::DetectorNoise;

    fn corridor_system(n: usize, broadcast: bool) -> (CoralPieSystem, RoadNetwork) {
        let net = generators::corridor(n, 120.0, 12.0);
        let specs: Vec<CameraSpec> = (0..n)
            .map(|i| CameraSpec {
                id: CameraId(i as u32),
                site: IntersectionId(i as u32),
                videoing_angle_deg: 0.0,
            })
            .collect();
        let config = SystemConfig {
            node: NodeConfig {
                detector_noise: DetectorNoise::perfect(),
                ..NodeConfig::default()
            },
            broadcast,
            ..SystemConfig::default()
        };
        (CoralPieSystem::new(net.clone(), &specs, config), net)
    }

    #[test]
    fn cameras_join_and_get_mdcs_tables() {
        let (mut sys, _) = corridor_system(3, false);
        sys.run_until(SimTime::from_secs(3));
        assert_eq!(sys.server().active_cameras().len(), 3);
        // The middle camera's socket group knows both neighbours.
        let node = sys.node(CameraId(1)).unwrap();
        let down = node.connection().socket_group().all_downstream();
        assert_eq!(down, BTreeSet::from([CameraId(0), CameraId(2)]));
    }

    #[test]
    fn end_to_end_track_single_vehicle() {
        let (mut sys, net) = corridor_system(3, false);
        // Let cameras join first.
        sys.run_until(SimTime::from_secs(2));
        // One vehicle end to end.
        let route =
            coral_geo::route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
        sys.traffic_mut()
            .spawn(SimTime::from_secs(2), route, Some(coral_vision::ObjectClass::Car));
        sys.run_until(SimTime::from_secs(40));
        sys.finish();

        // Ground truth: the vehicle passed all three cameras.
        let report = sys.report();
        assert_eq!(report.transitions.len(), 2, "{:?}", report.transitions);
        // All three cameras detected it.
        for cam in 0..3u32 {
            let acc = report.detection[&CameraId(cam)];
            assert_eq!(acc.fn_, 0, "cam{cam} missed the vehicle: {acc:?}");
            assert!(acc.tp >= 1);
        }
        // Re-identification linked the events across cameras.
        assert_eq!(
            report.reid.fn_, 0,
            "expected full trajectory: {:?}",
            report.reid
        );
        assert!(report.reid.tp >= 2);
        // The trajectory graph holds a 3-vertex chain.
        let (v, e, _, _) = sys.storage().stats();
        assert_eq!(v, 3);
        assert!(e >= 2);
        // Protocol effectiveness (the Fig. 10a property): for every
        // camera-to-camera transition, the *earliest* inform for the
        // vehicle reaches the downstream camera before the vehicle does.
        let passages = &sys.telemetry().passages;
        let informs = &sys.telemetry().informs;
        for t in &report.transitions {
            let p = passages
                .iter()
                .find(|p| p.camera == t.to && p.vehicle == t.vehicle)
                .expect("transition implies a passage");
            let earliest = informs
                .iter()
                .filter(|i| i.at == t.to && i.vehicle == Some(t.vehicle))
                .map(|i| i.arrived.as_millis())
                .min()
                .expect("an inform must precede the transition");
            assert!(
                earliest < p.entered_ms,
                "inform at {earliest} ms after vehicle at {} ms",
                p.entered_ms
            );
        }
    }

    #[test]
    fn broadcast_pollutes_pools_more_than_mdcs() {
        let run = |broadcast: bool| {
            let (mut sys, net) = corridor_system(5, broadcast);
            sys.run_until(SimTime::from_secs(2));
            // A stream of vehicles west->east.
            for k in 0..6u64 {
                let route = coral_geo::route::shortest_path(
                    &net,
                    IntersectionId(0),
                    IntersectionId(4),
                )
                .unwrap();
                sys.traffic_mut().spawn(
                    SimTime::from_secs(2 + 6 * k),
                    route,
                    Some(coral_vision::ObjectClass::Car),
                );
            }
            sys.run_until(SimTime::from_secs(120));
            sys.finish();
            let t = sys.telemetry();
            (t.informs_delivered, sys.report())
        };
        let (mdcs_informs, _mdcs_report) = run(false);
        let (bcast_informs, _bcast_report) = run(true);
        assert!(
            bcast_informs > mdcs_informs * 2,
            "broadcast {bcast_informs} vs mdcs {mdcs_informs}"
        );
    }

    #[test]
    fn failure_recovery_within_two_heartbeat_intervals() {
        let (mut sys, _) = corridor_system(5, false);
        sys.run_until(SimTime::from_secs(5));
        let mut schedule = FailureSchedule::new();
        schedule.push(coral_sim::FailureEvent {
            at: SimTime::from_secs(10),
            camera: CameraId(2),
            kind: FailureKind::Kill,
        });
        sys.set_failures(&schedule);
        sys.run_until(SimTime::from_secs(30));
        let recoveries = &sys.telemetry().recoveries;
        assert_eq!(recoveries.len(), 1, "recovery not recorded");
        let r = recoveries[0];
        assert_eq!(r.killed, CameraId(2));
        let hb = SimDuration::from_secs(2);
        assert!(
            r.duration() <= hb * 2 + SimDuration::from_millis(700),
            "recovery took {}",
            r.duration()
        );
        // The healed neighbours now skip the failed camera.
        let n1 = sys.node(CameraId(1)).unwrap();
        assert!(n1
            .connection()
            .socket_group()
            .all_downstream()
            .contains(&CameraId(3)));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let (mut sys, net) = corridor_system(3, false);
            sys.run_until(SimTime::from_secs(2));
            let route = coral_geo::route::shortest_path(
                &net,
                IntersectionId(0),
                IntersectionId(2),
            )
            .unwrap();
            sys.traffic_mut()
                .spawn(SimTime::from_secs(2), route, Some(coral_vision::ObjectClass::Car));
            sys.run_until(SimTime::from_secs(40));
            sys.finish();
            let t = sys.telemetry();
            (
                t.messages_delivered,
                t.informs_delivered,
                t.events.len(),
                sys.storage().stats(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn telemetry_counts_bandwidth_and_redundancy() {
        let (mut sys, net) = corridor_system(3, false);
        sys.run_until(SimTime::from_secs(2));
        let route =
            coral_geo::route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
        sys.traffic_mut()
            .spawn(SimTime::from_secs(2), route, Some(coral_vision::ObjectClass::Car));
        sys.run_until(SimTime::from_secs(40));
        sys.finish();
        let t = sys.telemetry();
        // Horizontal traffic (informs + confirms) and cloud traffic
        // (heartbeats + updates) were metered.
        assert!(t.horizontal_bytes > 0, "no horizontal bytes recorded");
        assert!(t.cloud_bytes > 0, "no cloud bytes recorded");
        // Camera 1 received cam0's inform ahead of the vehicle (useful);
        // it may also hold a trailing end-of-route inform from cam2's exit
        // event (redundant). Useful informs must dominate.
        let redundancy = sys.inform_redundancy();
        let (red1, recv1) = redundancy[&CameraId(1)];
        assert!(recv1 >= 1, "camera 1 received informs");
        assert!(red1 < recv1, "no useful inform at cam1: {red1}/{recv1}");
        // The end camera may hold a trailing exit inform; totals stay
        // within the received counts.
        for (&cam, &(red, recv)) in &redundancy {
            assert!(red <= recv, "{cam}: {red} > {recv}");
        }
    }

    #[test]
    fn traffic_light_creates_platooned_passages() {
        let (mut sys, net) = corridor_system(3, false);
        sys.traffic_mut().add_light(TrafficLight::new(
            IntersectionId(1),
            SimDuration::from_secs(40),
            SimDuration::ZERO,
        ));
        sys.run_until(SimTime::from_secs(2));
        for k in 0..3u64 {
            let route = coral_geo::route::shortest_path(
                &net,
                IntersectionId(0),
                IntersectionId(2),
            )
            .unwrap();
            sys.traffic_mut().spawn(
                SimTime::from_secs(2 + 3 * k),
                route,
                Some(coral_vision::ObjectClass::Car),
            );
        }
        sys.run_until(SimTime::from_secs(80));
        sys.finish();
        // All three vehicles reach camera 2 in a tight platoon after the
        // light turns green.
        let arrivals: Vec<u64> = sys
            .telemetry()
            .passages
            .iter()
            .filter(|p| p.camera == CameraId(2))
            .map(|p| p.entered_ms / 1_000)
            .collect();
        assert_eq!(arrivals.len(), 3, "arrivals: {arrivals:?}");
        let spread = arrivals.iter().max().unwrap() - arrivals.iter().min().unwrap();
        assert!(spread <= 6, "platoon spread {spread}s: {arrivals:?}");
    }
}
