//! The end-to-end Coral-Pie system facade.
//!
//! `CoralPieSystem` is a thin shell over the layered runtime: a
//! [`Deployment`] wires camera nodes, the
//! topology server and ground-truth traffic onto a simulated network, and a
//! [`SimRuntime`] drives them on the
//! discrete-event engine. The facade keeps the one-object API the tests,
//! examples and experiment binaries use, and collects the telemetry behind
//! every system experiment in the paper's §5: inform arrival times
//! (Fig. 10a), candidate-pool pollution (Figs. 10b, 12b), failure recovery
//! (Fig. 11) and application-level accuracy (Table 2).

pub use crate::deploy::{CameraSpec, SystemConfig};
pub use crate::telemetry::{InformArrival, Recovery, SystemReport, Telemetry};

use crate::deploy::Deployment;
use crate::metrics::{event_detection_accuracy, reid_accuracy, transitions_from_passages};
use crate::node::CameraNode;
use crate::runtime::SimRuntime;
use crate::telemetry::{self, TelemetrySink};
use coral_geo::{GeoPoint, RoadNetwork};
use coral_sim::{FailureKind, FailureSchedule, PoissonArrivals, SimTime, TrafficModel};
use coral_storage::EdgeStorageNode;
use coral_topology::{CameraId, TopologyServer};
use std::collections::{BTreeMap, BTreeSet};

/// The deployed system.
#[derive(Debug)]
pub struct CoralPieSystem {
    runtime: SimRuntime,
}

impl CoralPieSystem {
    /// Deploys cameras on `net` at the given intersections and schedules
    /// the initial event cycle.
    pub fn new(net: RoadNetwork, cameras: &[CameraSpec], config: SystemConfig) -> Self {
        Self {
            runtime: Deployment::from_specs(net, cameras, config).build(),
        }
    }

    /// Deploys cameras by raw geographic position — the paper's actual
    /// join semantics (§3.3): the topology server snaps each camera to the
    /// nearest intersection, or assigns it to a lane when it sits along a
    /// road segment (§4.3, Fig. 8). Use this to deploy lane-resident
    /// cameras.
    pub fn with_positions(
        net: RoadNetwork,
        cameras: &[(CameraId, GeoPoint, f64)],
        config: SystemConfig,
    ) -> Self {
        Self {
            runtime: Deployment::from_positions(net, cameras, config).build(),
        }
    }

    /// The underlying discrete-event runtime.
    pub fn runtime(&self) -> &SimRuntime {
        &self.runtime
    }

    /// The underlying discrete-event runtime, mutably.
    pub fn runtime_mut(&mut self) -> &mut SimRuntime {
        &mut self.runtime
    }

    /// The traffic model (to add lights or spawn vehicles before running).
    pub fn traffic_mut(&mut self) -> &mut TrafficModel {
        self.runtime.world_mut().traffic_mut()
    }

    /// The traffic model, read-only.
    pub fn traffic(&self) -> &TrafficModel {
        self.runtime.world().traffic()
    }

    /// Installs an open-workload arrival process.
    pub fn set_arrivals(&mut self, arrivals: PoissonArrivals) {
        self.runtime.world_mut().set_arrivals(arrivals);
    }

    /// Installs an additional telemetry sink alongside the built-in
    /// accumulator.
    pub fn add_sink(&mut self, sink: impl TelemetrySink + Send + 'static) {
        self.runtime.world_mut().add_sink(sink);
    }

    /// Schedules the failure workload.
    pub fn set_failures(&mut self, schedule: &FailureSchedule) {
        for event in schedule.events() {
            match event.kind {
                FailureKind::Kill => self.runtime.schedule_kill(event.at, event.camera),
                FailureKind::Restore => self.runtime.schedule_restore(event.at, event.camera),
            }
        }
    }

    /// Schedules a whole-region partition at `at` (federated deployments;
    /// a no-op otherwise).
    pub fn schedule_region_kill(&mut self, at: SimTime, region: u16) {
        self.runtime.schedule_region_kill(at, region);
    }

    /// Schedules the heal of a region partition at `at`.
    pub fn schedule_region_restore(&mut self, at: SimTime, region: u16) {
        self.runtime.schedule_region_restore(at, region);
    }

    /// Number of federated regions (`1` for single-region deployments).
    pub fn regions(&self) -> usize {
        self.runtime.world().regions()
    }

    /// Runs `f` over the deployment-wide trajectory graph: the flat store
    /// when single-region, the owner-preferring union of every region
    /// store when federated.
    pub fn with_trajectory_graph<R>(
        &self,
        f: impl FnOnce(&coral_storage::TrajectoryGraph) -> R,
    ) -> R {
        self.runtime.world().with_trajectory_graph(f)
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.runtime.now()
    }

    /// Total discrete events executed by the engine so far (ticks,
    /// deliveries, heartbeats, sweeps). Deltas across a window give the
    /// event rate — the denominator for per-event cost accounting.
    pub fn events_executed(&self) -> u64 {
        self.runtime.events_executed()
    }

    /// The shared storage node.
    pub fn storage(&self) -> &EdgeStorageNode {
        self.runtime.world().storage()
    }

    /// Snapshots the trajectory store into directory `dir` (per-shard
    /// files + checksummed manifest).
    ///
    /// # Errors
    ///
    /// Returns [`coral_storage::SnapshotError::Io`] on filesystem
    /// failures.
    pub fn snapshot_storage(
        &self,
        dir: &std::path::Path,
    ) -> Result<(), coral_storage::SnapshotError> {
        self.storage().snapshot_to(dir)
    }

    /// Restores the trajectory store from the snapshot at `dir`, in
    /// place: every camera node's storage handle sees the recovered
    /// graph — the storage half of the node-restore path.
    ///
    /// # Errors
    ///
    /// Any [`coral_storage::SnapshotError`]; the store is untouched on
    /// failure.
    pub fn restore_storage(
        &self,
        dir: &std::path::Path,
    ) -> Result<(), coral_storage::SnapshotError> {
        self.storage().restore_from_snapshot(dir)
    }

    /// The topology server.
    pub fn server(&self) -> &TopologyServer {
        self.runtime.world().server()
    }

    /// A camera node, if deployed.
    pub fn node(&self, id: CameraId) -> Option<&CameraNode> {
        self.runtime.world().node(id)
    }

    /// Cameras currently alive.
    pub fn alive(&self) -> &BTreeSet<CameraId> {
        self.runtime.world().alive()
    }

    /// Accumulated telemetry.
    pub fn telemetry(&self) -> &Telemetry {
        self.runtime.world().telemetry()
    }

    /// The ground-truth FOV interval log: which vehicle was in which
    /// camera's field of view, and when. Open intervals are closed by
    /// [`CoralPieSystem::finish`]; the evaluation layer scores trajectory
    /// graphs against this record.
    pub fn ground_truth(&self) -> &coral_sim::GroundTruthLog {
        self.runtime.world().ground_truth()
    }

    /// The deployment-wide observability bundle: the shared metrics
    /// registry (protocol counters, stage/storage latency histograms) and
    /// the per-vehicle causal tracer.
    pub fn observability(&self) -> &crate::obs::CoreObs {
        self.runtime.world().observability()
    }

    /// Turns on per-vehicle causal tracing. Call before
    /// [`CoralPieSystem::run_until`]; export afterwards with
    /// `observability().tracer().export_chrome()`.
    pub fn enable_tracing(&mut self) {
        self.runtime.world_mut().enable_tracing();
    }

    /// Runs the system until `until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.runtime.run_until(until);
    }

    /// Flushes all in-flight tracks at the end of a run, synchronously
    /// delivering the resulting protocol messages.
    pub fn finish(&mut self) {
        self.runtime.finish();
    }

    /// Ground-truth-based inform redundancy per camera: the fraction of
    /// delivered inform messages whose vehicle never subsequently entered
    /// the receiving camera's field of view (the §5.3 methodology; see
    /// [`telemetry::inform_redundancy`]).
    pub fn inform_redundancy(&self) -> BTreeMap<CameraId, (u64, u64)> {
        let world = self.runtime.world();
        telemetry::inform_redundancy(world.telemetry(), world.nodes().map(|(id, _)| id))
    }

    /// Builds the accuracy/pool report for the run so far.
    pub fn report(&self) -> SystemReport {
        let world = self.runtime.world();
        let t = world.telemetry();
        let events: Vec<(CameraId, Option<coral_vision::GroundTruthId>)> =
            t.events.iter().map(|&(c, gt, _)| (c, gt)).collect();
        let detection = event_detection_accuracy(&t.passages, &events);
        let transitions = transitions_from_passages(&t.passages);
        let reid = world.with_trajectory_graph(|g| reid_accuracy(g, &transitions));
        let pools = world
            .nodes()
            .map(|(id, n)| (id, (n.pool().stats(), n.pool().spurious_fraction())))
            .collect();
        SystemReport {
            detection,
            reid,
            transitions,
            pools,
        }
    }
}
