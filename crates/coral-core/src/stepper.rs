//! Deterministic scoped worker pool for the per-tick camera fan-out.
//!
//! The paper dedicates two RPis per camera because the per-frame chain
//! (render → detect → track → feature-extract) is the throughput
//! bottleneck (§4.1, Table 1); the DES has the same bottleneck in
//! miniature — one thread stepping every camera sequentially. The
//! [`Stepper`] fans a tick's per-camera work across a scoped thread pool
//! and merges results back **by submission index**, so the caller observes
//! exactly the sequential order no matter which worker ran which item or
//! how the OS scheduled them. Parallel runs stay byte-identical to
//! sequential ones as long as the mapped closure itself is deterministic
//! per item (see `DESIGN.md` §5 for the full argument).
//!
//! Work distribution is a static interleaved partition: worker `k` owns
//! items `k, k + W, k + 2W, …`. Camera workloads within a tick are
//! near-homogeneous, so the round-robin split balances well, costs no
//! synchronisation, and — unlike a greedy claim queue — assigns each item
//! to the same worker on every run and on every host. That keeps the
//! per-worker busy times in [`StepStats`] meaningful even on machines
//! with fewer cores than workers (where a greedy queue degenerates: the
//! first thread scheduled claims everything). The `exp_speedup` baseline
//! relies on this to compute schedule speedup.

use std::time::{Duration, Instant};

/// Per-step execution statistics: how much wall-clock work each worker
/// performed and how long the whole fan-out took.
#[derive(Debug, Clone)]
pub struct StepStats {
    /// Number of workers that participated (1 for the sequential path).
    pub workers: usize,
    /// Number of items processed.
    pub items: usize,
    /// Busy time per worker (time spent inside the mapped closure).
    pub worker_busy: Vec<Duration>,
    /// Wall-clock duration of the whole `run` call.
    pub wall: Duration,
}

impl StepStats {
    /// Total busy time summed over all workers — the sequential-equivalent
    /// work this step performed.
    pub fn busy_total(&self) -> Duration {
        self.worker_busy.iter().sum()
    }

    /// The critical path of the fan-out: the busiest single worker. With
    /// perfect balance this is `busy_total / workers`.
    pub fn critical_path(&self) -> Duration {
        self.worker_busy.iter().max().copied().unwrap_or_default()
    }
}

/// A deterministic fork-join executor: fans a batch of items across up to
/// `parallelism` scoped threads and returns results in submission order.
///
/// The pool is scoped per [`Stepper::run`] call (no persistent threads),
/// so borrowed data — the traffic model, camera drivers — can cross into
/// workers without `'static` bounds. The calling thread participates as
/// worker 0; `parallelism <= 1` short-circuits to a plain sequential loop
/// with zero thread traffic.
#[derive(Debug, Clone, Copy)]
pub struct Stepper {
    workers: usize,
}

impl Stepper {
    /// Creates a stepper that uses up to `parallelism` workers
    /// (`0` is treated as `1`).
    pub fn new(parallelism: usize) -> Self {
        Self {
            workers: parallelism.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, fanning across workers, and returns the
    /// results **in submission order** together with per-worker stats.
    /// `f` receives the item's submission index and the item.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> (Vec<R>, StepStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.workers.min(n.max(1));
        let wall_start = Instant::now();
        if workers <= 1 {
            let mut busy = Duration::ZERO;
            let out: Vec<R> = items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    let start = Instant::now();
                    let r = f(i, item);
                    busy += start.elapsed();
                    r
                })
                .collect();
            let stats = StepStats {
                workers: 1,
                items: n,
                worker_busy: vec![busy],
                wall: wall_start.elapsed(),
            };
            return (out, stats);
        }

        // Static interleaved partition: worker k owns items k, k+W, k+2W…
        // Each worker takes ownership of its share up front, so the only
        // cross-thread traffic is the fork and the join.
        let mut shares: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            shares[i % workers].push((i, item));
        }
        let mut per_worker: Vec<(Vec<(usize, R)>, Duration)> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let rest = shares.split_off(1);
            let handles: Vec<_> = rest
                .into_iter()
                .map(|share| scope.spawn(|| worker_loop(share, &f)))
                .collect();
            // The calling thread is worker 0.
            per_worker.push(worker_loop(shares.pop().expect("worker 0 share"), &f));
            for handle in handles {
                per_worker.push(handle.join().expect("stepper worker panicked"));
            }
        });

        // Merge by submission index: the output order is a pure function
        // of the input order, independent of worker scheduling.
        let mut merged: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut worker_busy = Vec::with_capacity(workers);
        for (results, busy) in per_worker {
            worker_busy.push(busy);
            for (i, r) in results {
                merged[i] = Some(r);
            }
        }
        let out: Vec<R> = merged
            .into_iter()
            .map(|r| r.expect("every claimed slot produced a result"))
            .collect();
        let stats = StepStats {
            workers,
            items: n,
            worker_busy,
            wall: wall_start.elapsed(),
        };
        (out, stats)
    }
}

fn worker_loop<T, R>(
    share: Vec<(usize, T)>,
    f: &(impl Fn(usize, T) -> R + Sync),
) -> (Vec<(usize, R)>, Duration) {
    let mut out = Vec::with_capacity(share.len());
    let mut busy = Duration::ZERO;
    for (i, item) in share {
        let start = Instant::now();
        out.push((i, f(i, item)));
        busy += start.elapsed();
    }
    (out, busy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_is_a_noop() {
        let (out, stats) = Stepper::new(4).run(Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
        assert_eq!(stats.items, 0);
        assert_eq!(stats.busy_total(), Duration::ZERO);
    }

    #[test]
    fn sequential_path_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let (out, stats) = Stepper::new(1).run(items, |i, x| (i as u64) * 1000 + x * 3);
        let expect: Vec<u64> = (0..100).map(|x| x * 1000 + x * 3).collect();
        assert_eq!(out, expect);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.worker_busy.len(), 1);
    }

    #[test]
    fn parallel_output_matches_sequential_for_all_widths() {
        let items: Vec<u64> = (0..257).collect();
        let (seq, _) = Stepper::new(1).run(items.clone(), |i, x| x.wrapping_mul(31) ^ i as u64);
        for workers in [2, 3, 4, 8, 16] {
            let (par, stats) =
                Stepper::new(workers).run(items.clone(), |i, x| x.wrapping_mul(31) ^ i as u64);
            assert_eq!(par, seq, "workers={workers}");
            assert_eq!(stats.items, items.len());
            assert!(stats.workers <= workers);
        }
    }

    #[test]
    fn workers_capped_by_item_count() {
        let (out, stats) = Stepper::new(8).run(vec![1u32, 2], |_, x| x * 2);
        assert_eq!(out, vec![2, 4]);
        assert!(stats.workers <= 2);
    }

    #[test]
    fn mutable_borrows_cross_into_workers() {
        // The per-tick use: &mut driver state moves into workers, results
        // merge back in order.
        let mut cells: Vec<u64> = (0..64).collect();
        let items: Vec<&mut u64> = cells.iter_mut().collect();
        let (out, _) = Stepper::new(4).run(items, |i, cell| {
            *cell += 100;
            (i, *cell)
        });
        for (i, (idx, val)) in out.into_iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(val, i as u64 + 100);
        }
        assert_eq!(cells[63], 163);
    }

    #[test]
    fn partition_is_static_round_robin() {
        use std::sync::Mutex;
        use std::thread::ThreadId;
        let workers = 4usize;
        let seen: Mutex<Vec<(usize, ThreadId)>> = Mutex::new(Vec::new());
        let items: Vec<usize> = (0..40).collect();
        Stepper::new(workers).run(items, |i, x| {
            seen.lock().unwrap().push((i, std::thread::current().id()));
            x
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 40);
        // Every index pair i, i+W must have run on the same worker thread.
        let thread_of = |i: usize| seen.iter().find(|(j, _)| *j == i).unwrap().1;
        for i in 0..40 - workers {
            assert_eq!(
                thread_of(i),
                thread_of(i + workers),
                "items {i} and {} must share a worker",
                i + workers
            );
        }
    }

    #[test]
    fn busy_stats_cover_all_work() {
        let items: Vec<u64> = (0..32).collect();
        let (_, stats) = Stepper::new(4).run(items, |_, x| {
            // Enough work to register a nonzero busy time.
            (0..2000).fold(x, |acc, i| {
                acc.wrapping_mul(6364136223846793005).wrapping_add(i)
            })
        });
        assert_eq!(stats.worker_busy.len(), stats.workers);
        assert!(stats.busy_total() >= stats.critical_path());
    }
}
