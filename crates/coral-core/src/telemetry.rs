//! Run telemetry: the measurements behind every system experiment in the
//! paper's §5, and the [`TelemetrySink`] seam through which bench harnesses
//! plug structured collectors instead of scraping counter fields.

use crate::metrics::{Accuracy, Passage, Transition};
use crate::pool::PoolStats;
use coral_net::Message;
use coral_sim::{SimDuration, SimTime};
use coral_topology::CameraId;
use coral_vision::GroundTruthId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An inform-message arrival at a camera (the Fig. 10a measurement).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InformArrival {
    /// Receiving camera.
    pub at: CameraId,
    /// The camera that generated the event.
    pub from: CameraId,
    /// Ground-truth vehicle of the event, if attributable.
    pub vehicle: Option<GroundTruthId>,
    /// Delivery time.
    pub arrived: SimTime,
}

/// A completed failure-recovery measurement (the Fig. 11 metric).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recovery {
    /// The failed camera.
    pub killed: CameraId,
    /// When it was killed.
    pub killed_at: SimTime,
    /// When the last affected camera received its topology update.
    pub recovered_at: SimTime,
}

impl Recovery {
    /// The recovery duration.
    pub fn duration(&self) -> SimDuration {
        self.recovered_at.since(self.killed_at)
    }
}

/// A completed region-failover measurement (federated deployments): one
/// whole region's server and store were partitioned away, restored, and
/// every surviving home camera's heartbeat landed back at the revived
/// region server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionRecovery {
    /// The partitioned region.
    pub region: u16,
    /// When the partition opened.
    pub killed_at: SimTime,
    /// When the partition healed (the region came back).
    pub restored_at: SimTime,
    /// When the last surviving home camera's heartbeat was received
    /// directly by the revived region server again.
    pub recovered_at: SimTime,
}

impl RegionRecovery {
    /// How long the region was partitioned.
    pub fn downtime(&self) -> SimDuration {
        self.restored_at.since(self.killed_at)
    }

    /// How long re-convergence took after the heal.
    pub fn recovery(&self) -> SimDuration {
        self.recovered_at.since(self.restored_at)
    }
}

/// Observer of runtime measurements.
///
/// The runtime drives one mandatory sink — the [`Telemetry`] accumulator
/// backing `CoralPieSystem::telemetry()` — plus any number of additional
/// sinks installed with `CoralPieSystem::add_sink`, so experiment harnesses
/// can stream structured records (histograms, per-camera aggregations,
/// traces) without scraping counters after the fact. All methods default to
/// no-ops; implement only the measurements you care about.
pub trait TelemetrySink {
    /// A ground-truth vehicle entered a camera's field of view.
    fn on_passage(&mut self, passage: &Passage) {
        let _ = passage;
    }

    /// The detector fired on a ground-truth vehicle this frame (raw
    /// detection evidence, before tracking; evaluation only).
    fn on_detection(&mut self, camera: CameraId, vehicle: GroundTruthId, at: SimTime) {
        let _ = (camera, vehicle, at);
    }

    /// A camera generated a detection event.
    fn on_event(&mut self, camera: CameraId, ground_truth: Option<GroundTruthId>, at: SimTime) {
        let _ = (camera, ground_truth, at);
    }

    /// A protocol message was delivered to a camera.
    fn on_delivery(&mut self, at: SimTime, to: CameraId, message: &Message) {
        let _ = (at, to, message);
    }

    /// Cloud-bound control bytes left a camera (heartbeat metering).
    fn on_cloud_send(&mut self, at: SimTime, from: CameraId, bytes: u64) {
        let _ = (at, from, bytes);
    }

    /// A failure recovery completed.
    fn on_recovery(&mut self, recovery: &Recovery) {
        let _ = recovery;
    }

    /// A region failover cycle completed (federated deployments only).
    fn on_region_recovery(&mut self, recovery: &RegionRecovery) {
        let _ = recovery;
    }
}

/// Telemetry accumulated over a run — the default [`TelemetrySink`].
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Ground-truth FOV passages.
    pub passages: Vec<Passage>,
    /// Inform-message arrivals.
    pub informs: Vec<InformArrival>,
    /// Completed failure recoveries.
    pub recoveries: Vec<Recovery>,
    /// Completed region-failover cycles (federated deployments only).
    pub region_recoveries: Vec<RegionRecovery>,
    /// Detection events generated: `(camera, ground truth, at)`.
    pub events: Vec<(CameraId, Option<GroundTruthId>, SimTime)>,
    /// Per-frame detector hits on ground-truth vehicles:
    /// `(camera, vehicle, at)`. The raw evidence the evaluation layer uses
    /// to attribute misses to the detect stage vs. the track stage.
    pub detections: Vec<(CameraId, GroundTruthId, SimTime)>,
    /// Total messages delivered.
    pub messages_delivered: u64,
    /// Inform messages delivered.
    pub informs_delivered: u64,
    /// Confirm messages delivered.
    pub confirms_delivered: u64,
    /// Topology updates delivered.
    pub updates_delivered: u64,
    /// Total JSON bytes of delivered horizontal (camera-to-camera)
    /// messages — the backhaul-free traffic the §3 architecture argument
    /// is about.
    pub horizontal_bytes: u64,
    /// Total JSON bytes of cloud-bound control traffic (heartbeats) and
    /// cloud-to-camera topology updates.
    pub cloud_bytes: u64,
}

impl TelemetrySink for Telemetry {
    fn on_passage(&mut self, passage: &Passage) {
        self.passages.push(*passage);
    }

    fn on_detection(&mut self, camera: CameraId, vehicle: GroundTruthId, at: SimTime) {
        self.detections.push((camera, vehicle, at));
    }

    fn on_event(&mut self, camera: CameraId, ground_truth: Option<GroundTruthId>, at: SimTime) {
        self.events.push((camera, ground_truth, at));
    }

    fn on_delivery(&mut self, at: SimTime, to: CameraId, message: &Message) {
        self.messages_delivered += 1;
        match message {
            Message::Inform(e) => {
                self.informs_delivered += 1;
                self.horizontal_bytes += message.encoded_len() as u64;
                self.informs.push(InformArrival {
                    at: to,
                    from: e.camera,
                    vehicle: e.ground_truth,
                    arrived: at,
                });
            }
            Message::Confirm { .. } => {
                self.confirms_delivered += 1;
                self.horizontal_bytes += message.encoded_len() as u64;
            }
            Message::TopologyUpdate(_) => {
                self.updates_delivered += 1;
                self.cloud_bytes += message.encoded_len() as u64;
            }
            Message::Heartbeat { .. } => {}
            // Replication is storage-plane traffic addressed to edge
            // stores; it never reaches a camera.
            Message::Replicate { .. } => {}
            // Reliable-delivery framing is transport-internal and stripped
            // before delivery; raw frames carry no protocol telemetry.
            Message::Sequenced { .. } | Message::Ack { .. } => {}
        }
    }

    fn on_cloud_send(&mut self, _at: SimTime, _from: CameraId, bytes: u64) {
        self.cloud_bytes += bytes;
    }

    fn on_recovery(&mut self, recovery: &Recovery) {
        self.recoveries.push(*recovery);
    }

    fn on_region_recovery(&mut self, recovery: &RegionRecovery) {
        self.region_recoveries.push(*recovery);
    }
}

/// Shared-collector convenience: an `Arc<Mutex<S>>` sink forwards to `S`,
/// so a harness can keep a handle onto a sink it hands to the runtime.
impl<S: TelemetrySink> TelemetrySink for std::sync::Arc<parking_lot::Mutex<S>> {
    fn on_passage(&mut self, passage: &Passage) {
        self.lock().on_passage(passage);
    }

    fn on_detection(&mut self, camera: CameraId, vehicle: GroundTruthId, at: SimTime) {
        self.lock().on_detection(camera, vehicle, at);
    }

    fn on_event(&mut self, camera: CameraId, ground_truth: Option<GroundTruthId>, at: SimTime) {
        self.lock().on_event(camera, ground_truth, at);
    }

    fn on_delivery(&mut self, at: SimTime, to: CameraId, message: &Message) {
        self.lock().on_delivery(at, to, message);
    }

    fn on_cloud_send(&mut self, at: SimTime, from: CameraId, bytes: u64) {
        self.lock().on_cloud_send(at, from, bytes);
    }

    fn on_recovery(&mut self, recovery: &Recovery) {
        self.lock().on_recovery(recovery);
    }

    fn on_region_recovery(&mut self, recovery: &RegionRecovery) {
        self.lock().on_region_recovery(recovery);
    }
}

/// The final report of a run.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Per-camera event-detection accuracy (Table 2).
    pub detection: BTreeMap<CameraId, Accuracy>,
    /// Cross-camera re-identification accuracy (§5.6).
    pub reid: Accuracy,
    /// Ground-truth transitions.
    pub transitions: Vec<Transition>,
    /// Per-camera pool statistics and current spurious fraction
    /// (Figs. 10b / 12b).
    pub pools: BTreeMap<CameraId, (PoolStats, f64)>,
}

/// Ground-truth-based inform redundancy per camera: the fraction of
/// delivered inform messages whose vehicle never subsequently entered the
/// receiving camera's field of view.
///
/// This is the paper's §5.3 methodology — "we first isolate the computer
/// vision errors ... by manually labeling the ground truth ... and
/// accounting the 'unmatched' detection events (at the end of the
/// experiment) in the candidate pool as 'redundant'" — with the traffic
/// simulator playing the role of the labeled ground truth. Returns
/// `(redundant, received)` per camera in `cameras`.
pub fn inform_redundancy(
    telemetry: &Telemetry,
    cameras: impl IntoIterator<Item = CameraId>,
) -> BTreeMap<CameraId, (u64, u64)> {
    // Per (camera, vehicle): a delivered inform is useful only if the
    // vehicle subsequently enters the camera's FOV, and each passage can
    // consume at most one inform (the camera re-identifies each vehicle
    // once). Everything else is redundant. This is redundancy under
    // *ideal* vision, the quantity the paper isolates by manual
    // ground-truth labeling.
    let mut informs: BTreeMap<(CameraId, GroundTruthId), Vec<u64>> = BTreeMap::new();
    let mut untagged: BTreeMap<CameraId, u64> = BTreeMap::new();
    for inf in &telemetry.informs {
        match inf.vehicle {
            Some(v) => informs
                .entry((inf.at, v))
                .or_default()
                .push(inf.arrived.as_millis()),
            None => *untagged.entry(inf.at).or_insert(0) += 1,
        }
    }
    let mut passages: BTreeMap<(CameraId, GroundTruthId), Vec<u64>> = BTreeMap::new();
    for p in &telemetry.passages {
        passages
            .entry((p.camera, p.vehicle))
            .or_default()
            .push(p.entered_ms);
    }
    let mut out: BTreeMap<CameraId, (u64, u64)> = BTreeMap::new();
    for cam in cameras {
        out.insert(cam, (0, 0));
    }
    // Small slack for the inform racing the vehicle over the last hop.
    const SLACK_MS: u64 = 5_000;
    for ((cam, vehicle), arrivals) in &mut informs {
        arrivals.sort_unstable();
        let mut available = passages.get(&(*cam, *vehicle)).cloned().unwrap_or_default();
        available.sort_unstable();
        let mut useful = 0u64;
        for &arrival in arrivals.iter() {
            if let Some(pos) = available.iter().position(|&p| p + SLACK_MS >= arrival) {
                available.remove(pos);
                useful += 1;
            }
        }
        let entry = out.entry(*cam).or_insert((0, 0));
        entry.0 += arrivals.len() as u64 - useful;
        entry.1 += arrivals.len() as u64;
    }
    for (cam, &n) in &untagged {
        // Events without ground-truth attribution (clutter) are redundant
        // by definition.
        let entry = out.entry(*cam).or_insert((0, 0));
        entry.0 += n;
        entry.1 += n;
    }
    out
}
