//! Deployment: topology wiring shared by every runtime mode.
//!
//! A [`Deployment`] resolves camera placements against the road network
//! and manufactures the actors — the topology server and the per-camera
//! nodes — with the exact seeds and view geometry the experiments pin.
//! [`Deployment::build`] wires them onto a simulated network and launches
//! the discrete-event runtime; threaded and TCP harnesses instead call
//! [`Deployment::make_server`] / [`Deployment::make_node`] and bind the
//! actors to their own transports.

use crate::node::{CameraNode, NodeConfig};
use crate::runtime::{region_endpoint, sim_link, NodeDriver, SimRuntime, SimWorld};
use coral_geo::{GeoPoint, IntersectionId, RoadNetwork};
use coral_net::{Endpoint, FaultPlan, RetryPolicy, SimNet};
use coral_sim::{CameraView, LinkProfile, SceneEffects, SimDuration, TrafficConfig, TrafficModel};
use coral_storage::{EdgeStorageNode, FederatedStores, StorageConfig};
use coral_topology::{CameraId, MdcsOptions, ServerConfig, TopologyServer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Federated multi-region deployment knobs.
///
/// The default (`regions: 1`) deploys the classic single-region system —
/// one topology server, one storage pool — through code paths that are
/// byte-identical to a build without this struct: every federation hook
/// in the runtime is a no-op when only one region exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FederationConfig {
    /// Number of geographic regions. Cameras are partitioned into
    /// contiguous stripes of the id-sorted roster; each region runs its
    /// own topology server and trajectory store.
    pub regions: u16,
    /// Replicate boundary-crossing trajectory edges to the upstream
    /// camera's home-region store (ignored when `regions == 1`).
    pub replication: bool,
    /// Re-parent a camera onto a surviving region when its parent region
    /// stops acking heartbeats (ignored when `regions == 1`; requires
    /// `SystemConfig::reliability` to detect the silence).
    pub failover: bool,
}

impl Default for FederationConfig {
    fn default() -> Self {
        Self {
            regions: 1,
            replication: true,
            failover: true,
        }
    }
}

/// Whole-system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Per-node configuration (vision, re-id, pool).
    pub node: NodeConfig,
    /// Frame capture period (96 ms ≈ the prototype's 10.4 FPS).
    pub frame_period: SimDuration,
    /// Camera heartbeat interval (§5.4 evaluates 2 s and 5 s).
    pub heartbeat_interval: SimDuration,
    /// Missed heartbeats before the server declares a camera failed.
    pub miss_threshold: u32,
    /// How often the server scans for missed heartbeats.
    pub liveness_check_period: SimDuration,
    /// MDCS search options.
    pub mdcs: MdcsOptions,
    /// Network latency models.
    pub links: LinkProfile,
    /// Traffic model parameters.
    pub traffic: TrafficConfig,
    /// Camera observation range, meters.
    pub view_range_m: f64,
    /// Camera image width, pixels.
    pub image_width: u32,
    /// Camera image height, pixels.
    pub image_height: u32,
    /// Adversarial scene effects (occlusion culling, clutter bursts)
    /// applied by every camera, re-seeded per camera so phantom draws are
    /// decorrelated. `None` keeps rendering clean.
    pub scene_effects: Option<SceneEffects>,
    /// Replace MDCS routing with broadcast flooding (the §5.3 baseline).
    pub broadcast: bool,
    /// Seeded fault injection on every link (chaos testing). `None` keeps
    /// the fault layer a verbatim passthrough.
    pub faults: Option<FaultPlan>,
    /// At-least-once delivery (sequence numbers, acks, bounded
    /// retransmission with backoff) on every link. `None` keeps the
    /// reliability layer a verbatim passthrough.
    pub reliability: Option<RetryPolicy>,
    /// Worker threads for the per-tick camera fan-out (the frame analysis
    /// phase: render → detect → SORT → feature-extract). `1` (or `0`)
    /// steps cameras sequentially on the engine thread. Results are
    /// merged back in `CameraId` order before any shared-state effect, so
    /// every value produces byte-identical runs — parallelism only trades
    /// wall-clock time.
    pub parallelism: usize,
    /// Evaluate the health/SLO engine once per sim-second over the
    /// metrics registry, journaling verdict transitions. The engine is a
    /// pure observer — it consumes no randomness and schedules no events
    /// — so toggling it cannot change simulation outcomes.
    pub health_checks: bool,
    /// Trajectory-store sharding and compaction knobs. The default single
    /// shard with checked ingest-time dedup is byte-identical to the flat
    /// graph; raising `shard_count` re-partitions the store by space-time
    /// key without changing any query answer (vertex ids are allocated
    /// globally, so ids and the merged view are shard-count-invariant).
    /// Compaction runs incrementally once per sim-second; on dup-free
    /// streams (checked ingest) it is a structural no-op.
    pub storage: StorageConfig,
    /// Event-driven stepping: consult the spatial occupancy index each
    /// tick and take a cheap early-out for cameras with no nearby vehicle
    /// and no live tracks. The early-out advances the frame counter
    /// without rendering, detection or RNG draws — exactly what the full
    /// path does for an empty scene — so `true` and `false` produce
    /// byte-identical runs; sparse stepping only trades wall-clock time.
    pub sparse_stepping: bool,
    /// Federated multi-region deployment. The default single region is
    /// byte-identical to the pre-federation system; see
    /// [`FederationConfig`].
    pub federation: FederationConfig,
    /// Master seed for all stochastic components.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            node: NodeConfig::default(),
            frame_period: SimDuration::from_millis(96),
            heartbeat_interval: SimDuration::from_secs(2),
            miss_threshold: 2,
            liveness_check_period: SimDuration::from_millis(200),
            mdcs: MdcsOptions::default(),
            links: LinkProfile::default(),
            traffic: TrafficConfig::default(),
            view_range_m: 35.0,
            image_width: 200,
            image_height: 160,
            scene_effects: None,
            broadcast: false,
            faults: None,
            reliability: None,
            parallelism: 1,
            health_checks: true,
            storage: StorageConfig::default(),
            sparse_stepping: true,
            federation: FederationConfig::default(),
            seed: 42,
        }
    }
}

/// Deployment spec of one camera.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraSpec {
    /// Camera id.
    pub id: CameraId,
    /// Intersection the camera watches.
    pub site: IntersectionId,
    /// Videoing angle, degrees clockwise from north.
    pub videoing_angle_deg: f64,
}

/// Seed-mixing constant decorrelating the traffic RNG from the system RNG.
const TRAFFIC_SEED_MIX: u64 = 0x070A_FF1C;

/// Seed-mixing constant for the network latency RNG.
const NET_SEED_MIX: u64 = 0x1a7e;

/// Per-camera seed mixing base.
const NODE_SEED_BASE: u64 = 0x5eed;

/// A resolved deployment: camera placements on a road network plus the
/// system configuration.
#[derive(Debug, Clone)]
pub struct Deployment {
    net: RoadNetwork,
    placements: Vec<(CameraId, GeoPoint, f64)>,
    config: SystemConfig,
}

impl Deployment {
    /// Places cameras at named intersections.
    ///
    /// # Panics
    ///
    /// Panics if a spec names an intersection absent from `net`.
    pub fn from_specs(net: RoadNetwork, specs: &[CameraSpec], config: SystemConfig) -> Self {
        let placements: Vec<(CameraId, GeoPoint, f64)> = specs
            .iter()
            .map(|spec| {
                let position = net
                    .intersection(spec.site)
                    .expect("camera site exists")
                    .position;
                (spec.id, position, spec.videoing_angle_deg)
            })
            .collect();
        Self {
            net,
            placements,
            config,
        }
    }

    /// Places cameras by raw geographic position — the paper's actual join
    /// semantics (§3.3): the topology server snaps each camera to the
    /// nearest intersection, or assigns it to a lane when it sits along a
    /// road segment (§4.3, Fig. 8). Use this to deploy lane-resident
    /// cameras.
    pub fn from_positions(
        net: RoadNetwork,
        placements: &[(CameraId, GeoPoint, f64)],
        config: SystemConfig,
    ) -> Self {
        Self {
            net,
            placements: placements.to_vec(),
            config,
        }
    }

    /// The road network.
    pub fn net(&self) -> &RoadNetwork {
        &self.net
    }

    /// The resolved `(camera, position, videoing angle)` placements.
    pub fn placements(&self) -> &[(CameraId, GeoPoint, f64)] {
        &self.placements
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Manufactures the topology server for this deployment.
    pub fn make_server(&self) -> TopologyServer {
        TopologyServer::new(
            self.net.clone(),
            ServerConfig {
                heartbeat_interval_ms: self.config.heartbeat_interval.as_millis(),
                miss_threshold: self.config.miss_threshold,
                snap_radius_m: 30.0,
                mdcs: self.config.mdcs,
            },
        )
    }

    /// Manufactures the camera node for placement `id`, sharing `storage`.
    /// Seeds and view geometry are identical across deployment modes, so
    /// the same placement produces the same node everywhere.
    pub fn make_node(&self, id: CameraId, storage: EdgeStorageNode) -> Option<CameraNode> {
        let &(_, position, angle) = self.placements.iter().find(|&&(c, _, _)| c == id)?;
        let view = CameraView {
            position,
            videoing_angle_deg: angle,
            range_m: self.config.view_range_m,
            image_width: self.config.image_width,
            image_height: self.config.image_height,
            effects: self
                .config
                .scene_effects
                .map(|e| e.seeded(e.seed ^ u64::from(id.0).wrapping_mul(0x9e37_79b9_7f4a_7c15))),
        };
        Some(CameraNode::new(
            id,
            view,
            self.config.node.clone(),
            storage,
            self.config.seed ^ (NODE_SEED_BASE + id.0 as u64),
        ))
    }

    /// The ground-truth traffic model for this deployment.
    pub fn make_traffic(&self) -> TrafficModel {
        TrafficModel::new(
            self.net.clone(),
            self.config.traffic,
            self.config.seed ^ TRAFFIC_SEED_MIX,
        )
    }

    /// Wires the deployment onto a simulated network and launches the
    /// discrete-event runtime.
    pub fn build(self) -> SimRuntime {
        let regions = usize::from(self.config.federation.regions.max(1));
        if regions > 1 {
            return self.build_federated(regions);
        }
        let server = self.make_server();
        let storage = EdgeStorageNode::with_config(512, self.config.storage.clone());
        let traffic = self.make_traffic();
        let links = self.config.links;
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ NET_SEED_MIX);
        let net = SimNet::new(move |envelope| {
            if envelope.is_cloud_bound() {
                links.device_to_cloud.sample(&mut rng)
            } else {
                links.device_to_device.sample(&mut rng)
            }
        });
        let mut drivers = BTreeMap::new();
        let join_order: Vec<CameraId> = self.placements.iter().map(|&(id, _, _)| id).collect();
        for &id in &join_order {
            let node = self
                .make_node(id, storage.clone())
                .expect("placement exists");
            let endpoint = Endpoint::Camera(id);
            let link = sim_link(&self.config, net.handle(endpoint), endpoint);
            drivers.insert(id, NodeDriver::new(node, link));
        }
        let world = SimWorld::new(self.config, net, server, storage, traffic, drivers);
        SimRuntime::launch(world, &join_order)
    }

    /// The multi-region wiring: one topology server and one trajectory
    /// store per region, cameras partitioned into contiguous stripes of
    /// the id-sorted roster, each node writing to (and heartbeating at)
    /// its home region. The network, latency RNG, node seeds and join
    /// order are exactly those of the single-region build.
    fn build_federated(self, regions: usize) -> SimRuntime {
        let servers: Vec<TopologyServer> = (0..regions).map(|_| self.make_server()).collect();
        let stores = FederatedStores::new(regions, 512, self.config.storage.clone());
        let traffic = self.make_traffic();
        let links = self.config.links;
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ NET_SEED_MIX);
        let net = SimNet::new(move |envelope| {
            if envelope.is_cloud_bound() {
                links.device_to_cloud.sample(&mut rng)
            } else {
                links.device_to_device.sample(&mut rng)
            }
        });
        // Home regions: contiguous stripes over the id-sorted roster, so
        // neighboring cameras (grid deployments number them row-major)
        // mostly share a region and the boundary is where stripes meet.
        let mut roster: Vec<CameraId> = self.placements.iter().map(|&(id, _, _)| id).collect();
        roster.sort_unstable();
        roster.dedup();
        let n = roster.len().max(1);
        let home: BTreeMap<CameraId, u16> = roster
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, (((i * regions) / n).min(regions - 1)) as u16))
            .collect();
        let mut drivers = BTreeMap::new();
        let join_order: Vec<CameraId> = self.placements.iter().map(|&(id, _, _)| id).collect();
        for &id in &join_order {
            let region = usize::from(home.get(&id).copied().unwrap_or(0));
            let node = self
                .make_node(id, stores.node(region).clone())
                .expect("placement exists");
            let endpoint = Endpoint::Camera(id);
            let link = sim_link(&self.config, net.handle(endpoint), endpoint);
            let mut driver = NodeDriver::new(node, link);
            driver.set_parent(region_endpoint(region as u16));
            drivers.insert(id, driver);
        }
        let world =
            SimWorld::new_federated(self.config, net, servers, stores, home, traffic, drivers);
        SimRuntime::launch(world, &join_order)
    }
}
