//! Deployment: topology wiring shared by every runtime mode.
//!
//! A [`Deployment`] resolves camera placements against the road network
//! and manufactures the actors — the topology server and the per-camera
//! nodes — with the exact seeds and view geometry the experiments pin.
//! [`Deployment::build`] wires them onto a simulated network and launches
//! the discrete-event runtime; threaded and TCP harnesses instead call
//! [`Deployment::make_server`] / [`Deployment::make_node`] and bind the
//! actors to their own transports.

use crate::node::{CameraNode, NodeConfig};
use crate::runtime::{sim_link, NodeDriver, SimRuntime, SimWorld};
use coral_geo::{GeoPoint, IntersectionId, RoadNetwork};
use coral_net::{Endpoint, FaultPlan, RetryPolicy, SimNet};
use coral_sim::{CameraView, LinkProfile, SceneEffects, SimDuration, TrafficConfig, TrafficModel};
use coral_storage::{EdgeStorageNode, StorageConfig};
use coral_topology::{CameraId, MdcsOptions, ServerConfig, TopologyServer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Whole-system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Per-node configuration (vision, re-id, pool).
    pub node: NodeConfig,
    /// Frame capture period (96 ms ≈ the prototype's 10.4 FPS).
    pub frame_period: SimDuration,
    /// Camera heartbeat interval (§5.4 evaluates 2 s and 5 s).
    pub heartbeat_interval: SimDuration,
    /// Missed heartbeats before the server declares a camera failed.
    pub miss_threshold: u32,
    /// How often the server scans for missed heartbeats.
    pub liveness_check_period: SimDuration,
    /// MDCS search options.
    pub mdcs: MdcsOptions,
    /// Network latency models.
    pub links: LinkProfile,
    /// Traffic model parameters.
    pub traffic: TrafficConfig,
    /// Camera observation range, meters.
    pub view_range_m: f64,
    /// Camera image width, pixels.
    pub image_width: u32,
    /// Camera image height, pixels.
    pub image_height: u32,
    /// Adversarial scene effects (occlusion culling, clutter bursts)
    /// applied by every camera, re-seeded per camera so phantom draws are
    /// decorrelated. `None` keeps rendering clean.
    pub scene_effects: Option<SceneEffects>,
    /// Replace MDCS routing with broadcast flooding (the §5.3 baseline).
    pub broadcast: bool,
    /// Seeded fault injection on every link (chaos testing). `None` keeps
    /// the fault layer a verbatim passthrough.
    pub faults: Option<FaultPlan>,
    /// At-least-once delivery (sequence numbers, acks, bounded
    /// retransmission with backoff) on every link. `None` keeps the
    /// reliability layer a verbatim passthrough.
    pub reliability: Option<RetryPolicy>,
    /// Worker threads for the per-tick camera fan-out (the frame analysis
    /// phase: render → detect → SORT → feature-extract). `1` (or `0`)
    /// steps cameras sequentially on the engine thread. Results are
    /// merged back in `CameraId` order before any shared-state effect, so
    /// every value produces byte-identical runs — parallelism only trades
    /// wall-clock time.
    pub parallelism: usize,
    /// Evaluate the health/SLO engine once per sim-second over the
    /// metrics registry, journaling verdict transitions. The engine is a
    /// pure observer — it consumes no randomness and schedules no events
    /// — so toggling it cannot change simulation outcomes.
    pub health_checks: bool,
    /// Trajectory-store sharding and compaction knobs. The default single
    /// shard with checked ingest-time dedup is byte-identical to the flat
    /// graph; raising `shard_count` re-partitions the store by space-time
    /// key without changing any query answer (vertex ids are allocated
    /// globally, so ids and the merged view are shard-count-invariant).
    /// Compaction runs incrementally once per sim-second; on dup-free
    /// streams (checked ingest) it is a structural no-op.
    pub storage: StorageConfig,
    /// Event-driven stepping: consult the spatial occupancy index each
    /// tick and take a cheap early-out for cameras with no nearby vehicle
    /// and no live tracks. The early-out advances the frame counter
    /// without rendering, detection or RNG draws — exactly what the full
    /// path does for an empty scene — so `true` and `false` produce
    /// byte-identical runs; sparse stepping only trades wall-clock time.
    pub sparse_stepping: bool,
    /// Master seed for all stochastic components.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            node: NodeConfig::default(),
            frame_period: SimDuration::from_millis(96),
            heartbeat_interval: SimDuration::from_secs(2),
            miss_threshold: 2,
            liveness_check_period: SimDuration::from_millis(200),
            mdcs: MdcsOptions::default(),
            links: LinkProfile::default(),
            traffic: TrafficConfig::default(),
            view_range_m: 35.0,
            image_width: 200,
            image_height: 160,
            scene_effects: None,
            broadcast: false,
            faults: None,
            reliability: None,
            parallelism: 1,
            health_checks: true,
            storage: StorageConfig::default(),
            sparse_stepping: true,
            seed: 42,
        }
    }
}

/// Deployment spec of one camera.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraSpec {
    /// Camera id.
    pub id: CameraId,
    /// Intersection the camera watches.
    pub site: IntersectionId,
    /// Videoing angle, degrees clockwise from north.
    pub videoing_angle_deg: f64,
}

/// Seed-mixing constant decorrelating the traffic RNG from the system RNG.
const TRAFFIC_SEED_MIX: u64 = 0x070A_FF1C;

/// Seed-mixing constant for the network latency RNG.
const NET_SEED_MIX: u64 = 0x1a7e;

/// Per-camera seed mixing base.
const NODE_SEED_BASE: u64 = 0x5eed;

/// A resolved deployment: camera placements on a road network plus the
/// system configuration.
#[derive(Debug, Clone)]
pub struct Deployment {
    net: RoadNetwork,
    placements: Vec<(CameraId, GeoPoint, f64)>,
    config: SystemConfig,
}

impl Deployment {
    /// Places cameras at named intersections.
    ///
    /// # Panics
    ///
    /// Panics if a spec names an intersection absent from `net`.
    pub fn from_specs(net: RoadNetwork, specs: &[CameraSpec], config: SystemConfig) -> Self {
        let placements: Vec<(CameraId, GeoPoint, f64)> = specs
            .iter()
            .map(|spec| {
                let position = net
                    .intersection(spec.site)
                    .expect("camera site exists")
                    .position;
                (spec.id, position, spec.videoing_angle_deg)
            })
            .collect();
        Self {
            net,
            placements,
            config,
        }
    }

    /// Places cameras by raw geographic position — the paper's actual join
    /// semantics (§3.3): the topology server snaps each camera to the
    /// nearest intersection, or assigns it to a lane when it sits along a
    /// road segment (§4.3, Fig. 8). Use this to deploy lane-resident
    /// cameras.
    pub fn from_positions(
        net: RoadNetwork,
        placements: &[(CameraId, GeoPoint, f64)],
        config: SystemConfig,
    ) -> Self {
        Self {
            net,
            placements: placements.to_vec(),
            config,
        }
    }

    /// The road network.
    pub fn net(&self) -> &RoadNetwork {
        &self.net
    }

    /// The resolved `(camera, position, videoing angle)` placements.
    pub fn placements(&self) -> &[(CameraId, GeoPoint, f64)] {
        &self.placements
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Manufactures the topology server for this deployment.
    pub fn make_server(&self) -> TopologyServer {
        TopologyServer::new(
            self.net.clone(),
            ServerConfig {
                heartbeat_interval_ms: self.config.heartbeat_interval.as_millis(),
                miss_threshold: self.config.miss_threshold,
                snap_radius_m: 30.0,
                mdcs: self.config.mdcs,
            },
        )
    }

    /// Manufactures the camera node for placement `id`, sharing `storage`.
    /// Seeds and view geometry are identical across deployment modes, so
    /// the same placement produces the same node everywhere.
    pub fn make_node(&self, id: CameraId, storage: EdgeStorageNode) -> Option<CameraNode> {
        let &(_, position, angle) = self.placements.iter().find(|&&(c, _, _)| c == id)?;
        let view = CameraView {
            position,
            videoing_angle_deg: angle,
            range_m: self.config.view_range_m,
            image_width: self.config.image_width,
            image_height: self.config.image_height,
            effects: self
                .config
                .scene_effects
                .map(|e| e.seeded(e.seed ^ u64::from(id.0).wrapping_mul(0x9e37_79b9_7f4a_7c15))),
        };
        Some(CameraNode::new(
            id,
            view,
            self.config.node.clone(),
            storage,
            self.config.seed ^ (NODE_SEED_BASE + id.0 as u64),
        ))
    }

    /// The ground-truth traffic model for this deployment.
    pub fn make_traffic(&self) -> TrafficModel {
        TrafficModel::new(
            self.net.clone(),
            self.config.traffic,
            self.config.seed ^ TRAFFIC_SEED_MIX,
        )
    }

    /// Wires the deployment onto a simulated network and launches the
    /// discrete-event runtime.
    pub fn build(self) -> SimRuntime {
        let server = self.make_server();
        let storage = EdgeStorageNode::with_config(512, self.config.storage.clone());
        let traffic = self.make_traffic();
        let links = self.config.links;
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ NET_SEED_MIX);
        let net = SimNet::new(move |envelope| {
            if envelope.is_cloud_bound() {
                links.device_to_cloud.sample(&mut rng)
            } else {
                links.device_to_device.sample(&mut rng)
            }
        });
        let mut drivers = BTreeMap::new();
        let join_order: Vec<CameraId> = self.placements.iter().map(|&(id, _, _)| id).collect();
        for &id in &join_order {
            let node = self
                .make_node(id, storage.clone())
                .expect("placement exists");
            let endpoint = Endpoint::Camera(id);
            let link = sim_link(&self.config, net.handle(endpoint), endpoint);
            drivers.insert(id, NodeDriver::new(node, link));
        }
        let world = SimWorld::new(self.config, net, server, storage, traffic, drivers);
        SimRuntime::launch(world, &join_order)
    }
}
