//! The candidate pool: detection events received from upstream cameras,
//! awaiting re-identification.
//!
//! "Upon receiving an informing notification from an upstream camera, the
//! connection manager appends the associated event into its candidate pool
//! ... All matched events are ready to be garbage collected. However, to
//! reduce false negatives, pruning of matched events \[is\] done only when
//! the candidate pool grows too large" (paper §4.1.3–4.1.4).

use coral_net::{DetectionEvent, EventId};
use serde::{Deserialize, Serialize};

/// One pooled candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The upstream detection event.
    pub event: DetectionEvent,
    /// When the inform message arrived, ms.
    pub received_ms: u64,
    /// Whether a confirmation marked this event matched (locally or at a
    /// sibling downstream camera).
    pub matched: bool,
}

/// Pool statistics for the communication-effectiveness experiments
/// (Figs. 10b, 12b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Informs ever received.
    pub received: u64,
    /// Entries this camera re-identified itself.
    pub matched_local: u64,
    /// Entries annotated matched via a relayed confirmation (a sibling
    /// downstream camera won the match).
    pub matched_remote: u64,
    /// Entries pruned by lazy garbage collection.
    pub pruned: u64,
}

impl PoolStats {
    /// Total matched entries (local + remote).
    pub fn matched(&self) -> u64 {
        self.matched_local + self.matched_remote
    }
}

/// The candidate pool of one camera.
#[derive(Debug, Clone, Default)]
pub struct CandidatePool {
    entries: Vec<Candidate>,
    gc_threshold: usize,
    eager: bool,
    stats: PoolStats,
}

impl CandidatePool {
    /// Creates a pool that garbage-collects matched entries lazily once it
    /// grows beyond `gc_threshold` entries — the paper's policy (§4.1.4).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is zero.
    pub fn new(gc_threshold: usize) -> Self {
        assert!(gc_threshold > 0, "gc threshold must be positive");
        Self {
            entries: Vec::new(),
            gc_threshold,
            eager: false,
            stats: PoolStats::default(),
        }
    }

    /// Creates a pool that removes matched entries immediately — the eager
    /// alternative the paper rejects because "the reported matching could
    /// be a false positive and ... eager pruning ... \[may\] lead to false
    /// negatives" (§4.1.4). Exposed for the ablation benchmark.
    pub fn new_eager(gc_threshold: usize) -> Self {
        let mut pool = Self::new(gc_threshold);
        pool.eager = true;
        pool
    }

    /// Appends an event received from an upstream camera. Duplicate event
    /// ids refresh the payload but are not double-counted as entries.
    pub fn add(&mut self, event: DetectionEvent, received_ms: u64) {
        self.stats.received += 1;
        let id = event.event_id();
        if let Some(existing) = self.entries.iter_mut().find(|c| c.event.event_id() == id) {
            existing.event = event;
            existing.received_ms = received_ms;
            return;
        }
        self.entries.push(Candidate {
            event,
            received_ms,
            matched: false,
        });
        self.maybe_gc();
    }

    /// The re-identification search space: every entry still physically in
    /// the pool, including matched-annotated ones. The paper deliberately
    /// keeps matched events searchable until the lazy GC prunes them, so
    /// that a premature (false-positive) match cannot mask the true one;
    /// the trajectory graph tolerates the resulting extra edges (§4.2.1).
    pub fn candidates(&self) -> impl Iterator<Item = &Candidate> + '_ {
        self.entries.iter()
    }

    /// All entries (matched and unmatched) — used by the redundancy
    /// accounting.
    pub fn entries(&self) -> &[Candidate] {
        &self.entries
    }

    /// Looks up a pooled candidate by event id.
    pub fn get(&self, id: EventId) -> Option<&Candidate> {
        self.entries.iter().find(|c| c.event.event_id() == id)
    }

    /// Annotates an event this camera re-identified itself. The entry
    /// becomes eligible for lazy GC but is not removed immediately —
    /// paper §4.1.4: eager pruning risks false negatives if the reported
    /// match was itself a false positive. Returns whether the event was
    /// present and not yet matched.
    pub fn mark_matched_local(&mut self, id: EventId) -> bool {
        if self.mark(id) {
            self.stats.matched_local += 1;
            true
        } else {
            false
        }
    }

    /// Annotates an event matched elsewhere (a relayed confirmation from
    /// the predecessor, §3.2). For this camera the entry was a redundant
    /// delivery; it is GC-able but counts as spurious in the Fig. 10(b)
    /// accounting.
    pub fn mark_matched_remote(&mut self, id: EventId) -> bool {
        if self.mark(id) {
            self.stats.matched_remote += 1;
            true
        } else {
            false
        }
    }

    fn mark(&mut self, id: EventId) -> bool {
        let Some(pos) = self
            .entries
            .iter()
            .position(|c| c.event.event_id() == id && !c.matched)
        else {
            return false;
        };
        if self.eager {
            self.entries.remove(pos);
            self.stats.pruned += 1;
        } else {
            self.entries[pos].matched = true;
        }
        true
    }

    /// Current pool size (matched + unmatched).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries not yet annotated matched.
    pub fn unmatched_len(&self) -> usize {
        self.entries.iter().filter(|c| !c.matched).count()
    }

    /// Fraction of lifetime-received events that this camera never
    /// re-identified itself — the "redundant / spurious entries" metric of
    /// Figs. 10(b) and 12(b). Entries matched only via relayed
    /// confirmations were still redundant deliveries to this camera, so
    /// they count as spurious; this is what makes broadcast flooding score
    /// over 83% in the paper even though siblings eventually match the
    /// event somewhere.
    pub fn spurious_fraction(&self) -> f64 {
        if self.stats.received == 0 {
            return 0.0;
        }
        1.0 - self.stats.matched_local as f64 / self.stats.received as f64
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    fn maybe_gc(&mut self) {
        if self.entries.len() <= self.gc_threshold {
            return;
        }
        let before = self.entries.len();
        self.entries.retain(|c| !c.matched);
        let pruned = before - self.entries.len();
        self.stats.pruned += pruned as u64;
        // Still over threshold with only unmatched entries: drop the oldest
        // to bound memory (stale candidates whose vehicle never arrived).
        while self.entries.len() > self.gc_threshold {
            self.entries.remove(0);
            self.stats.pruned += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coral_topology::CameraId;
    use coral_vision::{ColorHistogram, TrackId};

    fn event(cam: u32, track: u64) -> DetectionEvent {
        DetectionEvent {
            camera: CameraId(cam),
            timestamp_ms: 0,
            heading: None,
            bearing_deg: None,
            signature: ColorHistogram::uniform(2),
            track: TrackId(track),
            vertex: None,
            ground_truth: None,
        }
    }

    #[test]
    fn add_and_iterate() {
        let mut pool = CandidatePool::new(16);
        pool.add(event(0, 1), 100);
        pool.add(event(0, 2), 110);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.unmatched_len(), 2);
        assert_eq!(pool.stats().received, 2);
    }

    #[test]
    fn duplicate_event_refreshes_not_duplicates() {
        let mut pool = CandidatePool::new(16);
        pool.add(event(0, 1), 100);
        pool.add(event(0, 1), 200);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.entries()[0].received_ms, 200);
        assert_eq!(pool.stats().received, 2);
    }

    #[test]
    fn matched_entries_stay_pooled_and_searchable() {
        let mut pool = CandidatePool::new(16);
        pool.add(event(0, 1), 100);
        pool.add(event(1, 1), 120);
        assert!(pool.mark_matched_local(event(0, 1).event_id()));
        assert_eq!(pool.len(), 2, "lazy GC: matched entry not removed");
        assert_eq!(pool.unmatched_len(), 1);
        // Matched entries remain in the search space until pruned
        // (paper §4.1.4: a premature match must not mask the true one).
        assert_eq!(pool.candidates().count(), 2);
        // Double-matching is rejected.
        assert!(!pool.mark_matched_remote(event(0, 1).event_id()));
        // Unknown events are rejected.
        assert!(!pool.mark_matched_local(event(9, 9).event_id()));
        assert_eq!(pool.stats().matched_local, 1);
        assert_eq!(pool.stats().matched(), 1);
    }

    #[test]
    fn gc_prunes_matched_when_pool_grows() {
        let mut pool = CandidatePool::new(4);
        for i in 0..4 {
            pool.add(event(0, i), i);
        }
        pool.mark_matched_local(event(0, 0).event_id());
        pool.mark_matched_remote(event(0, 1).event_id());
        assert_eq!(pool.len(), 4);
        // The 5th insertion overflows and triggers GC of the two matched.
        pool.add(event(0, 4), 4);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.stats().pruned, 2);
        assert!(
            pool.entries().iter().all(|c| !c.matched),
            "matched entries pruned"
        );
    }

    #[test]
    fn gc_falls_back_to_oldest_unmatched() {
        let mut pool = CandidatePool::new(3);
        for i in 0..5 {
            pool.add(event(0, i), i);
        }
        assert_eq!(pool.len(), 3);
        // Oldest (tracks 0, 1) evicted.
        let ids: Vec<u64> = pool.entries().iter().map(|c| c.event.track.0).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert_eq!(pool.stats().pruned, 2);
    }

    #[test]
    fn spurious_fraction() {
        let mut pool = CandidatePool::new(16);
        assert_eq!(pool.spurious_fraction(), 0.0);
        for i in 0..4 {
            pool.add(event(0, i), i);
        }
        pool.mark_matched_local(event(0, 0).event_id());
        pool.mark_matched_local(event(0, 1).event_id());
        // A remote confirmation does not reduce this camera's redundancy.
        pool.mark_matched_remote(event(0, 2).event_id());
        assert!((pool.spurious_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(pool.stats().matched(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_panics() {
        CandidatePool::new(0);
    }

    #[test]
    fn eager_pool_removes_matched_immediately() {
        let mut pool = CandidatePool::new_eager(16);
        pool.add(event(0, 1), 100);
        assert!(pool.mark_matched_local(event(0, 1).event_id()));
        assert_eq!(pool.len(), 0, "eager mode must prune on match");
        assert_eq!(pool.stats().pruned, 1);
        assert_eq!(pool.stats().matched_local, 1);
        // A late second match attempt finds nothing (the false-negative
        // risk the paper calls out).
        assert!(!pool.mark_matched_remote(event(0, 1).event_id()));
    }
}
