//! End-to-end behavior of the deployed system through the public facade —
//! the same scenarios the original monolithic event loop pinned, now
//! exercising the layered runtime (deploy → runtime → telemetry).

use coral_core::{CameraSpec, CoralPieSystem, NodeConfig, SystemConfig};
use coral_geo::{generators, IntersectionId, RoadNetwork};
use coral_sim::{FailureEvent, FailureKind, FailureSchedule, SimDuration, SimTime, TrafficLight};
use coral_topology::CameraId;
use coral_vision::DetectorNoise;
use std::collections::BTreeSet;

fn corridor_system(n: usize, broadcast: bool) -> (CoralPieSystem, RoadNetwork) {
    let net = generators::corridor(n, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..n)
        .map(|i| CameraSpec {
            id: CameraId(i as u32),
            site: IntersectionId(i as u32),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            ..NodeConfig::default()
        },
        broadcast,
        ..SystemConfig::default()
    };
    (CoralPieSystem::new(net.clone(), &specs, config), net)
}

#[test]
fn cameras_join_and_get_mdcs_tables() {
    let (mut sys, _) = corridor_system(3, false);
    sys.run_until(SimTime::from_secs(3));
    assert_eq!(sys.server().active_cameras().len(), 3);
    // The middle camera's socket group knows both neighbours.
    let node = sys.node(CameraId(1)).unwrap();
    let down = node.connection().socket_group().all_downstream();
    assert_eq!(down, BTreeSet::from([CameraId(0), CameraId(2)]));
}

#[test]
fn end_to_end_track_single_vehicle() {
    let (mut sys, net) = corridor_system(3, false);
    // Let cameras join first.
    sys.run_until(SimTime::from_secs(2));
    // One vehicle end to end.
    let route =
        coral_geo::route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
    sys.traffic_mut().spawn(
        SimTime::from_secs(2),
        route,
        Some(coral_vision::ObjectClass::Car),
    );
    sys.run_until(SimTime::from_secs(40));
    sys.finish();

    // Ground truth: the vehicle passed all three cameras.
    let report = sys.report();
    assert_eq!(report.transitions.len(), 2, "{:?}", report.transitions);
    // All three cameras detected it.
    for cam in 0..3u32 {
        let acc = report.detection[&CameraId(cam)];
        assert_eq!(acc.fn_, 0, "cam{cam} missed the vehicle: {acc:?}");
        assert!(acc.tp >= 1);
    }
    // Re-identification linked the events across cameras.
    assert_eq!(
        report.reid.fn_, 0,
        "expected full trajectory: {:?}",
        report.reid
    );
    assert!(report.reid.tp >= 2);
    // The trajectory graph holds a 3-vertex chain.
    let s = sys.storage().stats();
    assert_eq!(s.vertices, 3);
    assert!(s.edges >= 2);
    // Protocol effectiveness (the Fig. 10a property): for every
    // camera-to-camera transition, the *earliest* inform for the vehicle
    // reaches the downstream camera before the vehicle does.
    let passages = &sys.telemetry().passages;
    let informs = &sys.telemetry().informs;
    for t in &report.transitions {
        let p = passages
            .iter()
            .find(|p| p.camera == t.to && p.vehicle == t.vehicle)
            .expect("transition implies a passage");
        let earliest = informs
            .iter()
            .filter(|i| i.at == t.to && i.vehicle == Some(t.vehicle))
            .map(|i| i.arrived.as_millis())
            .min()
            .expect("an inform must precede the transition");
        assert!(
            earliest < p.entered_ms,
            "inform at {earliest} ms after vehicle at {} ms",
            p.entered_ms
        );
    }
}

#[test]
fn broadcast_pollutes_pools_more_than_mdcs() {
    let run = |broadcast: bool| {
        let (mut sys, net) = corridor_system(5, broadcast);
        sys.run_until(SimTime::from_secs(2));
        // A stream of vehicles west->east.
        for k in 0..6u64 {
            let route = coral_geo::route::shortest_path(&net, IntersectionId(0), IntersectionId(4))
                .unwrap();
            sys.traffic_mut().spawn(
                SimTime::from_secs(2 + 6 * k),
                route,
                Some(coral_vision::ObjectClass::Car),
            );
        }
        sys.run_until(SimTime::from_secs(120));
        sys.finish();
        let t = sys.telemetry();
        (t.informs_delivered, sys.report())
    };
    let (mdcs_informs, _mdcs_report) = run(false);
    let (bcast_informs, _bcast_report) = run(true);
    assert!(
        bcast_informs > mdcs_informs * 2,
        "broadcast {bcast_informs} vs mdcs {mdcs_informs}"
    );
}

#[test]
fn failure_recovery_within_two_heartbeat_intervals() {
    let (mut sys, _) = corridor_system(5, false);
    sys.run_until(SimTime::from_secs(5));
    let mut schedule = FailureSchedule::new();
    schedule.push(FailureEvent {
        at: SimTime::from_secs(10),
        camera: CameraId(2),
        kind: FailureKind::Kill,
    });
    sys.set_failures(&schedule);
    sys.run_until(SimTime::from_secs(30));
    let recoveries = &sys.telemetry().recoveries;
    assert_eq!(recoveries.len(), 1, "recovery not recorded");
    let r = recoveries[0];
    assert_eq!(r.killed, CameraId(2));
    let hb = SimDuration::from_secs(2);
    assert!(
        r.duration() <= hb * 2 + SimDuration::from_millis(700),
        "recovery took {}",
        r.duration()
    );
    // The healed neighbours now skip the failed camera.
    let n1 = sys.node(CameraId(1)).unwrap();
    assert!(n1
        .connection()
        .socket_group()
        .all_downstream()
        .contains(&CameraId(3)));
}

#[test]
fn deterministic_for_fixed_seed() {
    let run = || {
        let (mut sys, net) = corridor_system(3, false);
        sys.run_until(SimTime::from_secs(2));
        let route =
            coral_geo::route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
        sys.traffic_mut().spawn(
            SimTime::from_secs(2),
            route,
            Some(coral_vision::ObjectClass::Car),
        );
        sys.run_until(SimTime::from_secs(40));
        sys.finish();
        let t = sys.telemetry();
        (
            t.messages_delivered,
            t.informs_delivered,
            t.events.len(),
            sys.storage().stats(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn telemetry_counts_bandwidth_and_redundancy() {
    let (mut sys, net) = corridor_system(3, false);
    sys.run_until(SimTime::from_secs(2));
    let route =
        coral_geo::route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
    sys.traffic_mut().spawn(
        SimTime::from_secs(2),
        route,
        Some(coral_vision::ObjectClass::Car),
    );
    sys.run_until(SimTime::from_secs(40));
    sys.finish();
    let t = sys.telemetry();
    // Horizontal traffic (informs + confirms) and cloud traffic
    // (heartbeats + updates) were metered.
    assert!(t.horizontal_bytes > 0, "no horizontal bytes recorded");
    assert!(t.cloud_bytes > 0, "no cloud bytes recorded");
    // Camera 1 received cam0's inform ahead of the vehicle (useful); it
    // may also hold a trailing end-of-route inform from cam2's exit event
    // (redundant). Useful informs must dominate.
    let redundancy = sys.inform_redundancy();
    let (red1, recv1) = redundancy[&CameraId(1)];
    assert!(recv1 >= 1, "camera 1 received informs");
    assert!(red1 < recv1, "no useful inform at cam1: {red1}/{recv1}");
    // The end camera may hold a trailing exit inform; totals stay within
    // the received counts.
    for (&cam, &(red, recv)) in &redundancy {
        assert!(red <= recv, "{cam}: {red} > {recv}");
    }
}

#[test]
fn traffic_light_creates_platooned_passages() {
    let (mut sys, net) = corridor_system(3, false);
    sys.traffic_mut().add_light(TrafficLight::new(
        IntersectionId(1),
        SimDuration::from_secs(40),
        SimDuration::ZERO,
    ));
    sys.run_until(SimTime::from_secs(2));
    for k in 0..3u64 {
        let route =
            coral_geo::route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
        sys.traffic_mut().spawn(
            SimTime::from_secs(2 + 3 * k),
            route,
            Some(coral_vision::ObjectClass::Car),
        );
    }
    sys.run_until(SimTime::from_secs(80));
    sys.finish();
    // All three vehicles reach camera 2 in a tight platoon after the light
    // turns green.
    let arrivals: Vec<u64> = sys
        .telemetry()
        .passages
        .iter()
        .filter(|p| p.camera == CameraId(2))
        .map(|p| p.entered_ms / 1_000)
        .collect();
    assert_eq!(arrivals.len(), 3, "arrivals: {arrivals:?}");
    let spread = arrivals.iter().max().unwrap() - arrivals.iter().min().unwrap();
    assert!(spread <= 6, "platoon spread {spread}s: {arrivals:?}");
}

#[test]
fn telemetry_sink_observes_the_run() {
    use coral_core::TelemetrySink;
    use coral_sim::SimTime as T;
    use std::sync::Arc;

    #[derive(Default)]
    struct Counter {
        passages: u64,
        events: u64,
        deliveries: u64,
        cloud_sends: u64,
    }
    impl TelemetrySink for Counter {
        fn on_passage(&mut self, _p: &coral_core::Passage) {
            self.passages += 1;
        }
        fn on_event(&mut self, _c: CameraId, _gt: Option<coral_vision::GroundTruthId>, _at: T) {
            self.events += 1;
        }
        fn on_delivery(&mut self, _at: T, _to: CameraId, _m: &coral_net::Message) {
            self.deliveries += 1;
        }
        fn on_cloud_send(&mut self, _at: T, _from: CameraId, _bytes: u64) {
            self.cloud_sends += 1;
        }
    }

    let (mut sys, net) = corridor_system(3, false);
    let counter = Arc::new(parking_lot::Mutex::new(Counter::default()));
    sys.add_sink(counter.clone());
    sys.run_until(SimTime::from_secs(2));
    let route =
        coral_geo::route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
    sys.traffic_mut().spawn(
        SimTime::from_secs(2),
        route,
        Some(coral_vision::ObjectClass::Car),
    );
    sys.run_until(SimTime::from_secs(40));
    sys.finish();

    // The external sink saw exactly what the built-in accumulator saw.
    let t = sys.telemetry();
    let c = counter.lock();
    assert_eq!(c.passages as usize, t.passages.len());
    assert_eq!(c.events as usize, t.events.len());
    assert_eq!(c.deliveries, t.messages_delivered);
    assert!(c.cloud_sends > 0, "heartbeat sends not observed");
}

#[test]
fn added_sinks_receive_identical_sequences() {
    use coral_core::TelemetrySink;
    use std::sync::Arc;

    // A sink recording every callback as one ordered log line.
    #[derive(Default)]
    struct Recorder {
        log: Vec<String>,
    }
    impl TelemetrySink for Recorder {
        fn on_passage(&mut self, p: &coral_core::Passage) {
            self.log.push(format!(
                "passage {} {:?} {}",
                p.camera, p.vehicle, p.entered_ms
            ));
        }
        fn on_event(
            &mut self,
            camera: CameraId,
            gt: Option<coral_vision::GroundTruthId>,
            at: SimTime,
        ) {
            self.log.push(format!("event {camera} {gt:?} {at}"));
        }
        fn on_delivery(&mut self, at: SimTime, to: CameraId, m: &coral_net::Message) {
            let kind = match m {
                coral_net::Message::Inform(_) => "inform",
                coral_net::Message::Confirm { .. } => "confirm",
                coral_net::Message::Heartbeat { .. } => "heartbeat",
                coral_net::Message::TopologyUpdate(_) => "update",
                coral_net::Message::Sequenced { .. } | coral_net::Message::Ack { .. } => "framing",
                coral_net::Message::Replicate { .. } => "replicate",
            };
            self.log.push(format!("delivery {kind} {to} {at}"));
        }
        fn on_cloud_send(&mut self, at: SimTime, from: CameraId, bytes: u64) {
            self.log.push(format!("cloud {from} {bytes} {at}"));
        }
        fn on_recovery(&mut self, r: &coral_core::Recovery) {
            self.log.push(format!(
                "recovery {} {} {}",
                r.killed, r.killed_at, r.recovered_at
            ));
        }
    }

    let (mut sys, net) = corridor_system(3, false);
    let first = Arc::new(parking_lot::Mutex::new(Recorder::default()));
    let second = Arc::new(parking_lot::Mutex::new(Recorder::default()));
    sys.add_sink(first.clone());
    sys.add_sink(second.clone());
    sys.run_until(SimTime::from_secs(2));
    let route =
        coral_geo::route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
    sys.traffic_mut().spawn(
        SimTime::from_secs(2),
        route,
        Some(coral_vision::ObjectClass::Car),
    );
    sys.run_until(SimTime::from_secs(40));
    sys.finish();

    // Both sinks saw the same fan-out, record for record, in order.
    let first = first.lock();
    let second = second.lock();
    assert!(!first.log.is_empty(), "sinks observed nothing");
    assert_eq!(first.log, second.log);
    // And the sequence matches the built-in accumulator's totals.
    let t = sys.telemetry();
    let count = |prefix: &str| first.log.iter().filter(|l| l.starts_with(prefix)).count();
    assert_eq!(count("passage "), t.passages.len());
    assert_eq!(count("event "), t.events.len());
    assert_eq!(count("delivery ") as u64, t.messages_delivered);
}
