//! Idempotent ingest under at-least-once delivery.
//!
//! The reliable transport retries unacked frames, so a camera may receive
//! the same `Inform` two or three times. Redelivery must be invisible in
//! the trajectory graph: the run's graph must be *structurally identical*
//! to a run where every message arrived exactly once.
//!
//! The fingerprint is computed from the graph structure itself (vertices
//! and adjacency in id order), not from a serialised form, so the
//! comparison is byte-exact and independent of any encoder.

use coral_core::{CameraNode, FrameOutput, NodeConfig};
use coral_geo::GeoPoint;
use coral_net::{Message, VertexId};
use coral_sim::CameraView;
use coral_storage::EdgeStorageNode;
use coral_topology::CameraId;
use coral_vision::{
    BoundingBox, DetectorNoise, GroundTruthId, ObjectClass, Scene, SceneActor, VehicleAppearance,
};
use std::fmt::Write as _;

fn view() -> CameraView {
    CameraView {
        position: GeoPoint::new(33.77, -84.39),
        videoing_angle_deg: 0.0,
        range_m: 35.0,
        image_width: 200,
        image_height: 160,
        effects: None,
    }
}

fn perfect_node(id: u32, storage: EdgeStorageNode) -> CameraNode {
    let config = NodeConfig {
        detector_noise: DetectorNoise::perfect(),
        ..NodeConfig::default()
    };
    CameraNode::new(CameraId(id), view(), config, storage, 7 + u64::from(id))
}

fn car_scene(gt: u64, t: u32) -> Scene {
    Scene {
        width: 200,
        height: 160,
        actors: vec![SceneActor {
            gt: GroundTruthId(gt),
            class: ObjectClass::Car,
            bbox: BoundingBox::from_center(30.0 + 6.0 * f64::from(t), 80.0, 36.0, 22.0).unwrap(),
            appearance: VehicleAppearance::from_seed(gt),
        }],
    }
}

fn drive(node: &mut CameraNode, gt: u64, frames: u32, t0_ms: u64) -> FrameOutput {
    let mut all = FrameOutput::default();
    let mut now = t0_ms;
    for t in 0..frames {
        let out = node.on_frame(&car_scene(gt, t), now, None);
        all.messages.extend(out.messages);
        all.events.extend(out.events);
        all.reids.extend(out.reids);
        now += 96;
    }
    for _ in 0..6 {
        let out = node.on_frame(&Scene::empty(200, 160), now, None);
        all.messages.extend(out.messages);
        all.events.extend(out.events);
        all.reids.extend(out.reids);
        now += 96;
    }
    all
}

/// Canonical structural rendering of the trajectory graph: every vertex in
/// id order with its attributes, then its outgoing adjacency. Two graphs
/// produce the same string iff they are structurally identical.
fn fingerprint(storage: &EdgeStorageNode) -> String {
    storage.with_graph(|g| {
        let mut s = String::new();
        for idx in 0..g.vertex_count() {
            let id = VertexId(idx as u64);
            let v = g.vertex(id).expect("vertex in range");
            let _ = write!(
                s,
                "v{}:cam{},track{},first{},last{},heading{:?},gt{:?};",
                idx,
                v.camera.0,
                v.event.track.0,
                v.first_seen_ms,
                v.last_seen_ms,
                v.heading,
                v.ground_truth.map(|g| g.0),
            );
            for e in g.out_edges(id) {
                let _ = write!(s, "e{}->{}w{};", e.from.0, e.to.0, e.weight.to_bits());
            }
        }
        s
    })
}

/// Runs the canonical two-camera re-identification scenario, delivering
/// the upstream `Inform` `1 + extra_before` times before the downstream
/// sighting and `extra_after` more times after it (a late retransmission),
/// and returns the resulting graph fingerprint.
fn scenario(extra_before: usize, extra_after: usize) -> String {
    let storage = EdgeStorageNode::default();
    let mut upstream = perfect_node(0, storage.clone());
    let mut downstream = perfect_node(1, storage.clone());

    let up_out = drive(&mut upstream, 4, 15, 0);
    assert_eq!(up_out.events.len(), 1);
    let inform = Message::Inform(up_out.events[0].clone());

    for i in 0..=extra_before {
        downstream.on_message(inform.clone(), 3_000 + i as u64);
    }
    let down_out = drive(&mut downstream, 4, 15, 9_000);
    assert_eq!(down_out.reids.len(), 1, "the red car must be re-identified");
    for i in 0..extra_after {
        downstream.on_message(inform.clone(), 20_000 + i as u64);
    }
    // A late replay must not resurrect the candidate: re-running the
    // sighting from a fresh track must not re-match the consumed event.
    fingerprint(&storage)
}

#[test]
fn redelivered_inform_leaves_graph_byte_identical() {
    let once = scenario(0, 0);
    assert!(once.contains("e0->1"), "baseline must contain the edge");
    // Duplicates before the sighting, after it, and both.
    assert_eq!(once, scenario(2, 0), "pre-sighting duplicates leaked");
    assert_eq!(once, scenario(0, 2), "post-sighting replays leaked");
    assert_eq!(once, scenario(3, 3), "mixed replays leaked");
}

#[test]
fn replayed_recovery_edge_does_not_double_count() {
    // The storage client's edge write is itself idempotent: replaying the
    // exact (from, to) write — what a retried Recovery does — changes
    // nothing, down to the stored weight.
    let storage = EdgeStorageNode::default();
    let mut upstream = perfect_node(0, storage.clone());
    let mut downstream = perfect_node(1, storage.clone());
    let up_out = drive(&mut upstream, 4, 15, 0);
    downstream.on_message(Message::Inform(up_out.events[0].clone()), 3_000);
    let down_out = drive(&mut downstream, 4, 15, 9_000);
    assert_eq!(down_out.reids.len(), 1);
    let before = fingerprint(&storage);
    let from = up_out.events[0].vertex.expect("upstream vertex");
    let to = storage
        .with_graph(|g| g.vertex_for_event(down_out.events[0].event_id()))
        .expect("downstream vertex");
    storage
        .insert_edge(from, to, down_out.reids[0].distance)
        .expect("replay accepted");
    storage
        .insert_edge(from, to, 0.999)
        .expect("replay accepted");
    assert_eq!(fingerprint(&storage), before);
    assert_eq!(storage.stats().edges, 1);
}
