//! Property-based invariants for the candidate pool and accuracy metrics.

use coral_core::{
    event_detection_accuracy, transitions_from_passages, Accuracy, CandidatePool, Passage,
};
use coral_net::DetectionEvent;
use coral_topology::CameraId;
use coral_vision::{ColorHistogram, GroundTruthId, TrackId};
use proptest::prelude::*;

fn event(cam: u32, track: u64) -> DetectionEvent {
    DetectionEvent {
        camera: CameraId(cam),
        timestamp_ms: track,
        heading: None,
        bearing_deg: None,
        signature: ColorHistogram::uniform(2),
        track: TrackId(track),
        vertex: None,
        ground_truth: None,
    }
}

/// A pool operation script.
#[derive(Debug, Clone)]
enum Op {
    Add(u32, u64),
    MarkLocal(u32, u64),
    MarkRemote(u32, u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..4, 0u64..30).prop_map(|(c, t)| Op::Add(c, t)),
            (0u32..4, 0u64..30).prop_map(|(c, t)| Op::MarkLocal(c, t)),
            (0u32..4, 0u64..30).prop_map(|(c, t)| Op::MarkRemote(c, t)),
        ],
        0..120,
    )
}

proptest! {
    #[test]
    fn pool_invariants_hold_for_any_script(ops in arb_ops(), threshold in 1usize..40) {
        let mut pool = CandidatePool::new(threshold);
        for op in &ops {
            match *op {
                Op::Add(c, t) => pool.add(event(c, t), t),
                Op::MarkLocal(c, t) => {
                    pool.mark_matched_local(event(c, t).event_id());
                }
                Op::MarkRemote(c, t) => {
                    pool.mark_matched_remote(event(c, t).event_id());
                }
            }
            // Size never exceeds the GC threshold after an add settles.
            prop_assert!(pool.len() <= threshold.max(1));
            prop_assert!(pool.unmatched_len() <= pool.len());
            let stats = pool.stats();
            // Conservation: everything received is pooled, pruned, or was
            // a duplicate refresh.
            prop_assert!(stats.received >= pool.len() as u64);
            prop_assert!(stats.matched() <= stats.received);
            let frac = pool.spurious_fraction();
            prop_assert!((0.0..=1.0).contains(&frac));
        }
    }

    #[test]
    fn eager_pool_never_holds_matched_entries(ops in arb_ops(), threshold in 1usize..40) {
        let mut pool = CandidatePool::new_eager(threshold);
        for op in &ops {
            match *op {
                Op::Add(c, t) => pool.add(event(c, t), t),
                Op::MarkLocal(c, t) => {
                    pool.mark_matched_local(event(c, t).event_id());
                }
                Op::MarkRemote(c, t) => {
                    pool.mark_matched_remote(event(c, t).event_id());
                }
            }
            prop_assert!(pool.entries().iter().all(|c| !c.matched));
            prop_assert_eq!(pool.unmatched_len(), pool.len());
        }
    }

    #[test]
    fn f_beta_is_finite_and_bounded_for_any_positive_beta(
        tp in 0u64..1_000_000,
        fp in 0u64..1_000_000,
        fn_ in 0u64..1_000_000,
        beta in 1e-6f64..64.0,
    ) {
        let acc = Accuracy { tp, fp, fn_ };
        let f = acc.f_beta(beta);
        prop_assert!(!f.is_nan(), "f_beta({beta}) is NaN for {acc:?}");
        prop_assert!((0.0..=1.0).contains(&f), "f_beta({beta}) = {f} for {acc:?}");
    }

    #[test]
    fn accuracy_merge_is_commutative_and_associative(
        a in (0u64..1000, 0u64..1000, 0u64..1000),
        b in (0u64..1000, 0u64..1000, 0u64..1000),
        c in (0u64..1000, 0u64..1000, 0u64..1000),
    ) {
        let acc = |(tp, fp, fn_)| Accuracy { tp, fp, fn_ };
        // Named fn, not a closure: rustc 1.95 at opt-level 1 miscompiles
        // closures that mutate and return a by-value `mut` parameter.
        fn merged(mut x: Accuracy, y: Accuracy) -> Accuracy {
            x.merge(y);
            x
        }
        // Commutative: a ∪ b == b ∪ a.
        prop_assert_eq!(merged(acc(a), acc(b)), merged(acc(b), acc(a)));
        // Associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
        prop_assert_eq!(
            merged(merged(acc(a), acc(b)), acc(c)),
            merged(acc(a), merged(acc(b), acc(c)))
        );
    }

    #[test]
    fn f_beta_bounds_and_monotonicity(tp in 0u64..50, fp in 0u64..50, fn_ in 0u64..50) {
        let acc = Accuracy { tp, fp, fn_ };
        for beta in [0.5, 1.0, 2.0] {
            let f = acc.f_beta(beta);
            prop_assert!((0.0..=1.0).contains(&f), "f_{beta} = {f}");
        }
        // Adding a true positive never lowers any score.
        let better = Accuracy { tp: tp + 1, fp, fn_ };
        prop_assert!(better.f2() >= acc.f2() - 1e-12);
        prop_assert!(better.precision() >= acc.precision() - 1e-12);
        prop_assert!(better.recall() >= acc.recall() - 1e-12);
        // Adding a false negative never raises recall or F2.
        let worse = Accuracy { tp, fp, fn_: fn_ + 1 };
        prop_assert!(worse.recall() <= acc.recall() + 1e-12);
        prop_assert!(worse.f2() <= acc.f2() + 1e-12);
    }

    #[test]
    fn detection_accuracy_conserves_counts(
        passages in proptest::collection::vec((0u32..4, 0u64..8, 0u64..1000), 0..30),
        events in proptest::collection::vec((0u32..4, proptest::option::of(0u64..8)), 0..30),
    ) {
        let passages: Vec<Passage> = passages
            .into_iter()
            .map(|(c, v, t)| Passage {
                camera: CameraId(c),
                vehicle: GroundTruthId(v),
                entered_ms: t,
            })
            .collect();
        let events: Vec<(CameraId, Option<GroundTruthId>)> = events
            .into_iter()
            .map(|(c, v)| (CameraId(c), v.map(GroundTruthId)))
            .collect();
        let per_cam = event_detection_accuracy(&passages, &events);
        let mut total = Accuracy::default();
        for acc in per_cam.values() {
            total.merge(*acc);
        }
        // Every event is a TP or FP; every passage is a TP or FN.
        prop_assert_eq!(total.tp + total.fp, events.len() as u64);
        prop_assert_eq!(total.tp + total.fn_, passages.len() as u64);
    }

    #[test]
    fn transitions_respect_time_order_and_count(
        passages in proptest::collection::vec((0u32..5, 0u64..6, 0u64..100_000), 0..40),
    ) {
        let passages: Vec<Passage> = passages
            .into_iter()
            .map(|(c, v, t)| Passage {
                camera: CameraId(c),
                vehicle: GroundTruthId(v),
                entered_ms: t,
            })
            .collect();
        let transitions = transitions_from_passages(&passages);
        // At most passages-1 transitions per vehicle.
        for v in 0..6u64 {
            let p_count = passages
                .iter()
                .filter(|p| p.vehicle == GroundTruthId(v))
                .count();
            let t_count = transitions
                .iter()
                .filter(|t| t.vehicle == GroundTruthId(v))
                .count();
            prop_assert!(t_count <= p_count.saturating_sub(1));
        }
        // Transitions never link a camera to itself.
        prop_assert!(transitions.iter().all(|t| t.from != t.to));
    }
}
