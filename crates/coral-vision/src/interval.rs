//! The "detect-and-track" baseline of the paper's design-space exploration.
//!
//! "In this method, the detection model is run at a specific frame interval
//! (e.g., every 5 frames), and a KCF tracker is used for tracking the
//! detected vehicle(s) on the intervening frames. We found this method to
//! be not robust enough for vehicle identification" (§4.1.5). This module
//! reproduces the approach so the ablation benchmark can quantify the
//! robustness gap against every-frame detection + SORT.
//!
//! Correlation-filter behaviour is emulated against the frame's true
//! object boxes (the appearance the filter would lock onto): between
//! detection frames a track *follows* the object it overlaps — with lag,
//! with a fixed template size (KCF is scale-brittle), and losing the
//! target entirely once overlap falls below the search-window threshold
//! (fast motion, sharp turns, occlusion). Vehicles entering mid-interval
//! are invisible until the next detection frame.

use crate::bbox::BoundingBox;
use crate::hungarian;
use crate::sort::{ExpiredTrack, SortOutput, TrackId, TrackState};
use serde::{Deserialize, Serialize};

/// Configuration for [`DetectAndTrack`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectAndTrackConfig {
    /// Run the detector every `detect_every` frames (the paper's example
    /// uses 5).
    pub detect_every: u32,
    /// Minimum IoU to re-associate a tracked box with a detection at
    /// detection frames.
    pub iou_threshold: f64,
    /// Minimum IoU between the tracked box and the object for the
    /// correlation filter to keep its lock between detections.
    pub follow_iou: f64,
    /// Per-frame fraction of the position error closed while following
    /// (1.0 = perfect lock; lower = laggy filter).
    pub follow_gain: f64,
    /// Detection frames a track may go unmatched before it is dropped.
    pub max_missed_detections: u32,
}

impl Default for DetectAndTrackConfig {
    fn default() -> Self {
        Self {
            detect_every: 5,
            iou_threshold: 0.3,
            follow_iou: 0.15,
            follow_gain: 0.8,
            max_missed_detections: 1,
        }
    }
}

#[derive(Debug, Clone)]
struct CoastingTrack {
    id: TrackId,
    bbox: BoundingBox,
    /// Template size locked at the last detection (KCF scale brittleness).
    template: (f64, f64),
    lost: bool,
    hits: u32,
    missed_detections: u32,
    reported: bool,
}

/// Detect-every-k-frames tracker with correlation-filter following on the
/// intervening frames.
#[derive(Debug, Clone)]
pub struct DetectAndTrack {
    config: DetectAndTrackConfig,
    tracks: Vec<CoastingTrack>,
    next_id: u64,
    frame_idx: u64,
}

impl DetectAndTrack {
    /// Creates a tracker.
    pub fn new(config: DetectAndTrackConfig) -> Self {
        Self {
            config,
            tracks: Vec::new(),
            next_id: 0,
            frame_idx: 0,
        }
    }

    /// Whether the detector should run on the upcoming frame.
    pub fn is_detection_frame(&self) -> bool {
        self.frame_idx
            .is_multiple_of(u64::from(self.config.detect_every.max(1)))
    }

    /// Number of live tracks.
    pub fn live_track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Advances one frame.
    ///
    /// `detections` must be `Some` on detection frames (see
    /// [`DetectAndTrack::is_detection_frame`]); `objects` are the true
    /// object boxes visible in the frame — the pixels a correlation filter
    /// would latch onto on intervening frames.
    pub fn advance(
        &mut self,
        detections: Option<&[BoundingBox]>,
        objects: &[BoundingBox],
    ) -> SortOutput {
        let is_det_frame = self.is_detection_frame();
        self.frame_idx += 1;
        let mut out = SortOutput::default();

        // Correlation-filter step: every live track follows the object it
        // overlaps most (with lag and a fixed template size).
        for t in &mut self.tracks {
            if t.lost {
                continue;
            }
            let best = objects
                .iter()
                .map(|o| (o, t.bbox.iou(o)))
                .max_by(|a, b| a.1.total_cmp(&b.1));
            match best {
                Some((target, iou)) if iou >= self.config.follow_iou => {
                    let cur = t.bbox.centroid();
                    let aim = target.centroid();
                    let g = self.config.follow_gain.clamp(0.0, 1.0);
                    let (cx, cy) = (cur.x + (aim.x - cur.x) * g, cur.y + (aim.y - cur.y) * g);
                    t.bbox = BoundingBox::from_center(cx, cy, t.template.0, t.template.1)
                        .unwrap_or(t.bbox);
                }
                _ => t.lost = true, // target left the search window
            }
        }

        if !is_det_frame || detections.is_none() {
            for t in &self.tracks {
                if !t.lost {
                    out.active.push(TrackState {
                        id: t.id,
                        bbox: t.bbox,
                        hits: t.hits,
                        is_new: false,
                    });
                }
            }
            return out;
        }
        let detections = detections.expect("checked above");

        // Detection frame: re-associate tracked boxes with fresh boxes.
        let (matches, unmatched_dets) = self.associate(detections);
        let mut matched = vec![false; self.tracks.len()];
        for (det_idx, trk_idx) in matches {
            let track = &mut self.tracks[trk_idx];
            track.bbox = detections[det_idx];
            track.template = (detections[det_idx].width(), detections[det_idx].height());
            track.hits += 1;
            track.missed_detections = 0;
            track.lost = false;
            matched[trk_idx] = true;
            out.active.push(TrackState {
                id: track.id,
                bbox: track.bbox,
                hits: track.hits,
                is_new: !track.reported,
            });
            track.reported = true;
        }
        for (i, t) in self.tracks.iter_mut().enumerate() {
            if !matched[i] {
                t.missed_detections += 1;
            }
        }
        for det_idx in unmatched_dets {
            let id = TrackId(self.next_id);
            self.next_id += 1;
            self.tracks.push(CoastingTrack {
                id,
                bbox: detections[det_idx],
                template: (detections[det_idx].width(), detections[det_idx].height()),
                lost: false,
                hits: 1,
                missed_detections: 0,
                reported: true,
            });
            out.active.push(TrackState {
                id,
                bbox: detections[det_idx],
                hits: 1,
                is_new: true,
            });
        }
        let max_missed = self.config.max_missed_detections;
        let mut expired = Vec::new();
        self.tracks.retain(|t| {
            if t.missed_detections > max_missed {
                if t.reported {
                    expired.push(ExpiredTrack {
                        id: t.id,
                        hits: t.hits,
                    });
                }
                false
            } else {
                true
            }
        });
        out.expired = expired;
        out
    }

    /// Drops all tracks, reporting them expired.
    pub fn flush(&mut self) -> Vec<ExpiredTrack> {
        let out = self
            .tracks
            .iter()
            .filter(|t| t.reported)
            .map(|t| ExpiredTrack {
                id: t.id,
                hits: t.hits,
            })
            .collect();
        self.tracks.clear();
        out
    }

    fn associate(&self, detections: &[BoundingBox]) -> (Vec<(usize, usize)>, Vec<usize>) {
        if detections.is_empty() {
            return (Vec::new(), Vec::new());
        }
        if self.tracks.is_empty() {
            return (Vec::new(), (0..detections.len()).collect());
        }
        let cost: Vec<Vec<f64>> = detections
            .iter()
            .map(|d| self.tracks.iter().map(|t| -d.iou(&t.bbox)).collect())
            .collect();
        let assignment = hungarian::assign(&cost);
        let mut matches = Vec::new();
        let mut unmatched = Vec::new();
        for (det_idx, assigned) in assignment.iter().enumerate() {
            match assigned {
                Some(trk_idx)
                    if detections[det_idx].iou(&self.tracks[*trk_idx].bbox)
                        >= self.config.iou_threshold =>
                {
                    matches.push((det_idx, *trk_idx));
                }
                _ => unmatched.push(det_idx),
            }
        }
        (matches, unmatched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::{SortConfig, SortTracker};

    fn b(cx: f64, cy: f64) -> BoundingBox {
        BoundingBox::from_center(cx, cy, 36.0, 22.0).unwrap()
    }

    fn small(cx: f64, cy: f64) -> BoundingBox {
        BoundingBox::from_center(cx, cy, 12.0, 8.0).unwrap()
    }

    /// Drives the tracker over a path where the frame's true object box is
    /// the same as the (perfect) detection; counts distinct track ids.
    fn distinct_ids_dnt(path: &[BoundingBox], cfg: DetectAndTrackConfig) -> usize {
        let mut dnt = DetectAndTrack::new(cfg);
        let mut ids = std::collections::HashSet::new();
        for bb in path {
            let objs = [*bb];
            let out = if dnt.is_detection_frame() {
                dnt.advance(Some(&objs), &objs)
            } else {
                dnt.advance(None, &objs)
            };
            for st in out.active {
                ids.insert(st.id);
            }
        }
        ids.len()
    }

    #[test]
    fn smooth_motion_keeps_one_id() {
        let path: Vec<BoundingBox> = (0..30).map(|t| b(10.0 + 5.0 * t as f64, 60.0)).collect();
        assert_eq!(distinct_ids_dnt(&path, DetectAndTrackConfig::default()), 1);
    }

    #[test]
    fn follows_object_between_detection_frames() {
        let mut dnt = DetectAndTrack::new(DetectAndTrackConfig::default());
        let objs0 = [b(10.0, 60.0)];
        dnt.advance(Some(&objs0), &objs0);
        // Object moves; KCF follows on non-detection frames.
        let objs1 = [b(16.0, 60.0)];
        let out = dnt.advance(None, &objs1);
        let c = out.active[0].bbox.centroid();
        assert!(c.x > 13.0 && c.x <= 16.0, "followed to {}", c.x);
    }

    #[test]
    fn accelerating_small_object_escapes_the_search_window() {
        // A small vehicle accelerating smoothly from 4 to 16 px/frame:
        // SORT's Kalman velocity tracks the acceleration (its prediction
        // error stays ~1 px), while the correlation filter loses its lock
        // once the per-frame displacement exceeds the box extent — the
        // robustness gap the paper observed (§4.1.5).
        let mut x = 10.0f64;
        let mut v = 4.0f64;
        let path: Vec<BoundingBox> = (0..50)
            .map(|_| {
                x += v;
                v = (v + 0.25).min(10.0);
                small(x, 60.0)
            })
            .collect();
        let dnt_ids = distinct_ids_dnt(&path, DetectAndTrackConfig::default());
        assert!(dnt_ids > 1, "fast target should fragment, got {dnt_ids}");
        let mut sort = SortTracker::new(SortConfig::default());
        let mut sort_ids = std::collections::HashSet::new();
        for bb in &path {
            for st in sort.update(&[*bb]).active {
                sort_ids.insert(st.id);
            }
        }
        assert!(
            sort_ids.len() < dnt_ids,
            "SORT ({}) must beat detect-and-track ({dnt_ids})",
            sort_ids.len()
        );
        assert!(sort_ids.len() <= 2, "SORT fragmented: {}", sort_ids.len());
    }

    #[test]
    fn scale_change_breaks_association_at_detection_frames() {
        // A vehicle approaching the camera grows quickly; the fixed
        // template keeps the old size, and at the next detection frame the
        // IoU gate fails -> fragmented identity.
        let path: Vec<BoundingBox> = (0..20)
            .map(|t| {
                let s = 10.0 + 8.0 * t as f64; // rapid growth
                BoundingBox::from_center(100.0 + 2.0 * t as f64, 80.0, s, s * 0.6).unwrap()
            })
            .collect();
        let ids = distinct_ids_dnt(
            &path,
            DetectAndTrackConfig {
                detect_every: 8,
                ..DetectAndTrackConfig::default()
            },
        );
        assert!(ids > 1, "rapid scale change should fragment, got {ids}");
    }

    #[test]
    fn mid_interval_entry_is_detected_late() {
        let mut dnt = DetectAndTrack::new(DetectAndTrackConfig::default());
        dnt.advance(Some(&[]), &[]); // detection frame, empty road
        let mut first_report = None;
        for t in 1..=6u32 {
            let objs = [b(10.0 + 4.0 * f64::from(t), 60.0)];
            let out = if dnt.is_detection_frame() {
                dnt.advance(Some(&objs), &objs)
            } else {
                dnt.advance(None, &objs)
            };
            if first_report.is_none() && !out.active.is_empty() {
                first_report = Some(t);
            }
        }
        assert_eq!(first_report, Some(5), "entry visible only at frame 5");
    }

    #[test]
    fn expiry_after_missed_detection_frames() {
        let mut dnt = DetectAndTrack::new(DetectAndTrackConfig::default());
        let objs = [b(50.0, 50.0)];
        dnt.advance(Some(&objs), &objs);
        let mut expired = Vec::new();
        for _ in 0..15 {
            let out = if dnt.is_detection_frame() {
                dnt.advance(Some(&[]), &[])
            } else {
                dnt.advance(None, &[])
            };
            expired.extend(out.expired);
        }
        assert_eq!(expired.len(), 1);
        assert_eq!(dnt.live_track_count(), 0);
    }

    #[test]
    fn flush_reports_all() {
        let mut dnt = DetectAndTrack::new(DetectAndTrackConfig::default());
        let objs = [b(10.0, 10.0), b(100.0, 100.0)];
        dnt.advance(Some(&objs), &objs);
        assert_eq!(dnt.flush().len(), 2);
        assert!(dnt.flush().is_empty());
    }
}
