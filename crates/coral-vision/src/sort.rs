//! SORT — Simple Online and Realtime Tracking (Bewley et al., 2016).
//!
//! "We feed the bounding boxes received from RPi 1 into the Sort Tracker,
//! which assigns an ID for each bounding box. ... A vehicle is considered
//! leaving the camera when its ID does not appear in the output of the Sort
//! Tracker for `max_age` consecutive frames" (paper §4.1.2; the prototype
//! uses `max_age = 3`).
//!
//! Track IDs are local to one camera and carry no cross-camera meaning
//! (paper footnote 6).

use crate::bbox::BoundingBox;
use crate::hungarian;
use crate::kalman::KalmanBoxFilter;
use serde::{Deserialize, Serialize};

/// Camera-local track identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TrackId(pub u64);

impl std::fmt::Display for TrackId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// SORT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SortConfig {
    /// Frames a track may go unmatched before it is considered to have left
    /// the field of view. The paper's prototype uses 3, giving tolerance to
    /// detector false negatives (§4.1.2).
    pub max_age: u32,
    /// Matched frames required before a track is reported (burn-in against
    /// clutter). SORT's default is 1.
    pub min_hits: u32,
    /// Minimum IoU between a detection and a predicted track box for the
    /// pair to be associable.
    pub iou_threshold: f64,
}

impl Default for SortConfig {
    fn default() -> Self {
        Self {
            max_age: 3,
            min_hits: 1,
            iou_threshold: 0.3,
        }
    }
}

/// One reported track state for the current frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackState {
    /// Track identifier.
    pub id: TrackId,
    /// The detection box matched to the track this frame.
    pub bbox: BoundingBox,
    /// Total matched frames for this track.
    pub hits: u32,
    /// Whether this is the track's first reported frame.
    pub is_new: bool,
}

/// A track that was dropped this frame because it went unmatched for more
/// than `max_age` frames — i.e. the vehicle left the camera's FOV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpiredTrack {
    /// The identifier of the expired track.
    pub id: TrackId,
    /// Total matched frames the track accumulated.
    pub hits: u32,
}

/// Per-frame tracker output.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SortOutput {
    /// Tracks matched to a detection this frame.
    pub active: Vec<TrackState>,
    /// Tracks dropped this frame (vehicle left the FOV).
    pub expired: Vec<ExpiredTrack>,
}

#[derive(Debug, Clone)]
struct Track {
    id: TrackId,
    kf: KalmanBoxFilter,
    hits: u32,
    time_since_update: u32,
    reported: bool,
    last_bbox: BoundingBox,
}

/// Per-frame working buffers recycled across [`SortTracker::update`]
/// calls: predictions, the association cost matrix (rows keep their
/// capacity between frames), the match lists and the matched-track
/// bitmap. Purely an allocation optimisation — the values written each
/// frame are identical to freshly allocated buffers.
#[derive(Debug, Clone, Default)]
struct SortScratch {
    predicted: Vec<BoundingBox>,
    cost: Vec<Vec<f64>>,
    matches: Vec<(usize, usize)>,
    unmatched: Vec<usize>,
    matched: Vec<bool>,
}

/// The SORT multi-object tracker.
///
/// # Examples
///
/// ```
/// use coral_vision::{BoundingBox, SortConfig, SortTracker};
///
/// let mut sort = SortTracker::new(SortConfig::default());
/// let b = |x: f64| BoundingBox::from_center(x, 50.0, 30.0, 20.0).unwrap();
/// let out = sort.update(&[b(10.0)]);
/// let id = out.active[0].id;
/// let out = sort.update(&[b(14.0)]);
/// assert_eq!(out.active[0].id, id); // same vehicle, same ID
/// ```
#[derive(Debug, Clone)]
pub struct SortTracker {
    config: SortConfig,
    tracks: Vec<Track>,
    next_id: u64,
    frame_count: u64,
    scratch: SortScratch,
}

impl SortTracker {
    /// Creates a tracker.
    pub fn new(config: SortConfig) -> Self {
        Self {
            config,
            tracks: Vec::new(),
            next_id: 0,
            frame_count: 0,
            scratch: SortScratch::default(),
        }
    }

    /// The tracker configuration.
    pub fn config(&self) -> &SortConfig {
        &self.config
    }

    /// Number of tracks currently alive (matched within `max_age` frames).
    pub fn live_track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Processes one frame of detections and returns matched and expired
    /// tracks.
    pub fn update(&mut self, detections: &[BoundingBox]) -> SortOutput {
        self.frame_count += 1;
        let mut scratch = std::mem::take(&mut self.scratch);

        // 1. Predict all existing tracks forward one frame.
        scratch.predicted.clear();
        scratch
            .predicted
            .extend(self.tracks.iter_mut().map(|t| t.kf.predict()));

        // 2. Associate detections to predictions by IoU via Hungarian.
        self.associate_into(detections, &mut scratch);

        let mut out = SortOutput::default();

        // 3. Update matched tracks.
        scratch.matched.clear();
        scratch.matched.resize(self.tracks.len(), false);
        for &(det_idx, trk_idx) in &scratch.matches {
            let track = &mut self.tracks[trk_idx];
            track.kf.update(&detections[det_idx]);
            track.hits += 1;
            track.time_since_update = 0;
            track.last_bbox = detections[det_idx];
            scratch.matched[trk_idx] = true;
            if track.hits >= self.config.min_hits {
                out.active.push(TrackState {
                    id: track.id,
                    bbox: detections[det_idx],
                    hits: track.hits,
                    is_new: !track.reported,
                });
                track.reported = true;
            }
        }

        // 4. Age unmatched tracks.
        for (i, track) in self.tracks.iter_mut().enumerate() {
            if !scratch.matched[i] {
                track.time_since_update += 1;
            }
        }

        // 5. Spawn new tracks for unmatched detections.
        for &det_idx in &scratch.unmatched {
            let id = TrackId(self.next_id);
            self.next_id += 1;
            let mut track = Track {
                id,
                kf: KalmanBoxFilter::new(&detections[det_idx]),
                hits: 1,
                time_since_update: 0,
                reported: false,
                last_bbox: detections[det_idx],
            };
            if track.hits >= self.config.min_hits {
                out.active.push(TrackState {
                    id,
                    bbox: detections[det_idx],
                    hits: 1,
                    is_new: true,
                });
                track.reported = true;
            }
            self.tracks.push(track);
        }

        // 6. Expire tracks unmatched for more than max_age frames.
        let max_age = self.config.max_age;
        let mut expired = Vec::new();
        self.tracks.retain(|t| {
            if t.time_since_update > max_age {
                if t.reported {
                    expired.push(ExpiredTrack {
                        id: t.id,
                        hits: t.hits,
                    });
                }
                false
            } else {
                true
            }
        });
        out.expired = expired;
        self.scratch = scratch;
        out
    }

    /// Flushes all live tracks as expired (end of stream).
    pub fn flush(&mut self) -> Vec<ExpiredTrack> {
        let out = self
            .tracks
            .iter()
            .filter(|t| t.reported)
            .map(|t| ExpiredTrack {
                id: t.id,
                hits: t.hits,
            })
            .collect();
        self.tracks.clear();
        out
    }

    /// IoU-gated Hungarian association over `scratch.predicted`, writing
    /// `(detection index, track index)` pairs into `scratch.matches` and
    /// unmatched detection indices into `scratch.unmatched`. The cost matrix
    /// rows in `scratch.cost` keep their capacity between frames.
    fn associate_into(&self, detections: &[BoundingBox], scratch: &mut SortScratch) {
        let SortScratch {
            predicted,
            cost,
            matches,
            unmatched,
            ..
        } = scratch;
        matches.clear();
        unmatched.clear();
        if detections.is_empty() {
            return;
        }
        if predicted.is_empty() {
            unmatched.extend(0..detections.len());
            return;
        }
        cost.truncate(detections.len());
        while cost.len() < detections.len() {
            cost.push(Vec::new());
        }
        for (row, d) in cost.iter_mut().zip(detections) {
            row.clear();
            row.extend(predicted.iter().map(|p| -d.iou(p)));
        }
        let assignment = hungarian::assign(cost);
        for (det_idx, assigned) in assignment.iter().enumerate() {
            match assigned {
                Some(trk_idx)
                    if detections[det_idx].iou(&predicted[*trk_idx])
                        >= self.config.iou_threshold =>
                {
                    matches.push((det_idx, *trk_idx));
                }
                _ => unmatched.push(det_idx),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(cx: f64, cy: f64) -> BoundingBox {
        BoundingBox::from_center(cx, cy, 40.0, 24.0).unwrap()
    }

    #[test]
    fn single_vehicle_keeps_one_id() {
        let mut sort = SortTracker::new(SortConfig::default());
        let mut ids = std::collections::HashSet::new();
        for t in 0..30 {
            let out = sort.update(&[b(10.0 + 4.0 * t as f64, 60.0)]);
            assert_eq!(out.active.len(), 1);
            ids.insert(out.active[0].id);
        }
        assert_eq!(ids.len(), 1, "one vehicle must keep one ID");
    }

    #[test]
    fn two_crossing_vehicles_keep_distinct_ids() {
        let mut sort = SortTracker::new(SortConfig::default());
        let first = sort.update(&[b(0.0, 40.0), b(200.0, 90.0)]);
        assert_eq!(first.active.len(), 2);
        let (ida, idb) = (first.active[0].id, first.active[1].id);
        assert_ne!(ida, idb);
        for t in 1..25 {
            // Vehicle A moves right, B moves left, on separate rows.
            let out = sort.update(&[b(8.0 * t as f64, 40.0), b(200.0 - 8.0 * t as f64, 90.0)]);
            assert_eq!(out.active.len(), 2);
            for st in &out.active {
                assert!(st.id == ida || st.id == idb);
            }
        }
    }

    #[test]
    fn track_survives_missed_frames_within_max_age() {
        let mut sort = SortTracker::new(SortConfig::default());
        let out = sort.update(&[b(50.0, 50.0)]);
        let id = out.active[0].id;
        // Two missed frames (within max_age = 3).
        assert!(sort.update(&[]).expired.is_empty());
        assert!(sort.update(&[]).expired.is_empty());
        // Vehicle reappears a bit further along; same ID.
        let out = sort.update(&[b(56.0, 50.0)]);
        assert_eq!(out.active.len(), 1);
        assert_eq!(out.active[0].id, id);
        assert!(!out.active[0].is_new);
    }

    #[test]
    fn track_expires_after_max_age() {
        let mut sort = SortTracker::new(SortConfig::default());
        let out = sort.update(&[b(50.0, 50.0)]);
        let id = out.active[0].id;
        let mut expired = Vec::new();
        for _ in 0..5 {
            expired.extend(sort.update(&[]).expired);
        }
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, id);
        assert_eq!(sort.live_track_count(), 0);
        // A new detection now gets a fresh ID.
        let out = sort.update(&[b(50.0, 50.0)]);
        assert_ne!(out.active[0].id, id);
        assert!(out.active[0].is_new);
    }

    #[test]
    fn max_age_boundary_is_exclusive() {
        // With max_age = 3, a track missing for exactly 3 frames survives;
        // it expires on the 4th.
        let mut sort = SortTracker::new(SortConfig::default());
        sort.update(&[b(50.0, 50.0)]);
        for i in 0..3 {
            let out = sort.update(&[]);
            assert!(out.expired.is_empty(), "expired early at miss {}", i + 1);
        }
        let out = sort.update(&[]);
        assert_eq!(out.expired.len(), 1);
    }

    #[test]
    fn min_hits_burn_in_suppresses_clutter() {
        let cfg = SortConfig {
            min_hits: 3,
            ..SortConfig::default()
        };
        let mut sort = SortTracker::new(cfg);
        // A single-frame clutter box never reaches min_hits: not reported,
        // and not reported as expired either.
        let out = sort.update(&[b(10.0, 10.0)]);
        assert!(out.active.is_empty());
        let mut expired_any = false;
        for _ in 0..6 {
            expired_any |= !sort.update(&[]).expired.is_empty();
        }
        assert!(!expired_any, "unreported clutter must not emit expiry");
        // A persistent vehicle is reported from its third frame.
        let mut reported_at = None;
        for t in 0..5 {
            let out = sort.update(&[b(100.0 + 4.0 * t as f64, 80.0)]);
            if !out.active.is_empty() && reported_at.is_none() {
                reported_at = Some(t);
                assert!(out.active[0].is_new);
            }
        }
        assert_eq!(reported_at, Some(2));
    }

    #[test]
    fn far_detection_spawns_new_track_not_match() {
        let mut sort = SortTracker::new(SortConfig::default());
        let out = sort.update(&[b(50.0, 50.0)]);
        let id = out.active[0].id;
        // Teleported detection: IoU 0 with prediction -> new track.
        let out = sort.update(&[b(300.0, 200.0)]);
        assert_eq!(out.active.len(), 1);
        assert_ne!(out.active[0].id, id);
    }

    #[test]
    fn flush_reports_live_tracks() {
        let mut sort = SortTracker::new(SortConfig::default());
        sort.update(&[b(10.0, 10.0), b(100.0, 100.0)]);
        let flushed = sort.flush();
        assert_eq!(flushed.len(), 2);
        assert_eq!(sort.live_track_count(), 0);
        assert!(sort.flush().is_empty());
    }

    #[test]
    fn hits_accumulate() {
        let mut sort = SortTracker::new(SortConfig::default());
        for t in 0..5 {
            let out = sort.update(&[b(10.0 + 3.0 * t as f64, 10.0)]);
            assert_eq!(out.active[0].hits, t + 1);
        }
    }

    #[test]
    fn occlusion_gap_with_motion_reacquires_same_id() {
        // A vehicle moving at constant velocity disappears for 2 frames
        // behind an "occluder" and reappears where the Kalman prediction
        // expects it: the ID must persist.
        let mut sort = SortTracker::new(SortConfig::default());
        let mut id = None;
        for t in 0..10 {
            let out = sort.update(&[b(10.0 + 6.0 * t as f64, 50.0)]);
            id = Some(out.active[0].id);
        }
        sort.update(&[]);
        sort.update(&[]);
        let out = sort.update(&[b(10.0 + 6.0 * 12.0, 50.0)]);
        assert_eq!(out.active[0].id, id.unwrap());
    }
}
