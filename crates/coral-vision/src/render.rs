//! Synthetic scene renderer.
//!
//! The offline substitute for live camera streams: ground-truth vehicles are
//! rasterised into raw RGB frames with per-vehicle appearance (body color,
//! trim, texture) plus sensor noise. Downstream components — the detector's
//! post-processing, SORT tracking, adaptive color-histogram signatures and
//! Bhattacharyya re-identification — consume these pixels exactly as they
//! would consume camera output, so cross-camera matching accuracy *emerges*
//! from appearance rather than being hardcoded.

use crate::bbox::BoundingBox;
use crate::frame::{Frame, FrameBuf, Rgb};
use serde::{Deserialize, Serialize};

/// Opaque ground-truth identity of a vehicle, assigned by the traffic
/// simulator and used only by the evaluation harness (never by the tracking
/// pipeline itself).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct GroundTruthId(pub u64);

impl GroundTruthId {
    /// Base of the clutter-id namespace: ids at or above this are
    /// phantom scene actors injected by the simulator's clutter regime.
    /// They flow through detection and tracking like any other actor but
    /// are *not* ground-truth vehicles — the evaluation harness never
    /// credits them, so clutter tracks score as false positives.
    pub const CLUTTER_BASE: u64 = 1 << 48;

    /// Whether this id names a clutter phantom rather than a vehicle.
    pub fn is_clutter(self) -> bool {
        self.0 >= Self::CLUTTER_BASE
    }
}

impl std::fmt::Display for GroundTruthId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gt{}", self.0)
    }
}

/// Coarse object class, mirroring the COCO labels the paper's detector
/// emits; post-processing keeps only `{car, bus, truck}` (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// Passenger car.
    Car,
    /// Bus.
    Bus,
    /// Truck.
    Truck,
    /// Pedestrian (filtered out by post-processing).
    Person,
    /// Bicycle (filtered out by post-processing).
    Bicycle,
}

impl ObjectClass {
    /// Whether the class is one of the vehicle labels kept by the paper's
    /// post-processing filter.
    pub fn is_vehicle(self) -> bool {
        matches!(
            self,
            ObjectClass::Car | ObjectClass::Bus | ObjectClass::Truck
        )
    }
}

impl std::fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ObjectClass::Car => "car",
            ObjectClass::Bus => "bus",
            ObjectClass::Truck => "truck",
            ObjectClass::Person => "person",
            ObjectClass::Bicycle => "bicycle",
        };
        f.write_str(s)
    }
}

/// Deterministic visual appearance of one vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VehicleAppearance {
    /// Body paint color.
    pub body: Rgb,
    /// Trim / window color.
    pub trim: Rgb,
    /// Seed for the per-pixel texture hash.
    pub texture_seed: u64,
}

impl VehicleAppearance {
    /// Derives a deterministic appearance from a seed (typically the
    /// ground-truth vehicle id), drawing from a palette of common vehicle
    /// paints so that *some* vehicles genuinely look alike — the failure
    /// mode color-histogram re-identification must cope with (paper
    /// §4.1.2 note on color-histogram limitations).
    pub fn from_seed(seed: u64) -> Self {
        const PALETTE: [Rgb; 12] = [
            Rgb::new(230, 230, 235), // white
            Rgb::new(25, 25, 30),    // black
            Rgb::new(128, 130, 135), // silver
            Rgb::new(90, 92, 95),    // gray
            Rgb::new(170, 30, 35),   // red
            Rgb::new(30, 60, 140),   // blue
            Rgb::new(30, 90, 50),    // green
            Rgb::new(200, 160, 40),  // yellow
            Rgb::new(120, 70, 30),   // brown
            Rgb::new(230, 120, 30),  // orange
            Rgb::new(60, 20, 80),    // purple
            Rgb::new(180, 185, 190), // light silver
        ];
        let h = splitmix64(seed);
        let body = PALETTE[(h % PALETTE.len() as u64) as usize];
        let trim = Rgb::new(
            (u32::from(body.r) / 3) as u8 + 20,
            (u32::from(body.g) / 3) as u8 + 20,
            (u32::from(body.b) / 3) as u8 + 25,
        );
        Self {
            body,
            trim,
            texture_seed: splitmix64(h),
        }
    }
}

/// One vehicle instance within a camera's field of view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneActor {
    /// Ground-truth identity (evaluation only).
    pub gt: GroundTruthId,
    /// Object class.
    pub class: ObjectClass,
    /// Position in image coordinates.
    pub bbox: BoundingBox,
    /// Visual appearance.
    pub appearance: VehicleAppearance,
}

/// The ground-truth content of one camera frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Actors in draw order (later actors occlude earlier ones).
    pub actors: Vec<SceneActor>,
}

impl Scene {
    /// Creates an empty scene of the given dimensions.
    pub fn empty(width: u32, height: u32) -> Self {
        Self {
            width,
            height,
            actors: Vec::new(),
        }
    }
}

/// Renderer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Renderer {
    /// Road / background base color.
    pub background: Rgb,
    /// Peak-to-peak amplitude of the per-pixel sensor noise.
    pub noise_amplitude: u8,
}

impl Default for Renderer {
    fn default() -> Self {
        Self {
            background: Rgb::new(70, 72, 74),
            noise_amplitude: 8,
        }
    }
}

impl Renderer {
    /// Rasterises `scene` into a raw frame. `frame_seed` decorrelates the
    /// sensor noise between frames while keeping rendering deterministic.
    pub fn render(&self, scene: &Scene, frame_seed: u64) -> Frame {
        let mut buf = FrameBuf::filled(scene.width, scene.height, self.background);
        // Background sensor noise.
        if self.noise_amplitude > 0 {
            let amp = i32::from(self.noise_amplitude);
            for y in 0..scene.height {
                for x in 0..scene.width {
                    let h = pixel_hash(frame_seed, x, y);
                    let n = (h % (2 * amp as u64 + 1)) as i32 - amp;
                    let c = shade(self.background, n);
                    buf.put(i64::from(x), i64::from(y), c);
                }
            }
        }
        for actor in &scene.actors {
            self.draw_actor(&mut buf, actor, frame_seed);
        }
        buf.freeze()
    }

    fn draw_actor(&self, buf: &mut FrameBuf, actor: &SceneActor, frame_seed: u64) {
        let b = actor.bbox;
        let (x0, y0) = (b.x0.floor() as i64, b.y0.floor() as i64);
        let (x1, y1) = (b.x1.ceil() as i64, b.y1.ceil() as i64);
        let h = (y1 - y0).max(1);
        let w = (x1 - x0).max(1);
        // Per-vehicle trim-band height: the "shape" component of the
        // signature (two same-color vehicles still differ in their
        // window/body proportion).
        let trim_frac = 0.20 + (actor.appearance.texture_seed % 5) as f64 * 0.05;
        for y in y0..y1 {
            for x in x0..x1 {
                let fy = (y - y0) as f64 / h as f64;
                let fx = (x - x0) as f64 / w as f64;
                let base = if fy < trim_frac {
                    actor.appearance.trim // windows / roof band
                } else if fy > 0.85 && !(0.25..=0.75).contains(&fx) {
                    Rgb::new(15, 15, 15) // wheels
                } else {
                    actor.appearance.body
                };
                // Deterministic texture + illumination noise.
                let th = pixel_hash(
                    actor.appearance.texture_seed ^ frame_seed,
                    x as u32 & 0xffff,
                    y as u32 & 0xffff,
                );
                let n = (th % 13) as i32 - 6;
                buf.put(x, y, shade(base, n));
            }
        }
    }
}

fn shade(c: Rgb, delta: i32) -> Rgb {
    Rgb::new(
        (i32::from(c.r) + delta).clamp(0, 255) as u8,
        (i32::from(c.g) + delta).clamp(0, 255) as u8,
        (i32::from(c.b) + delta).clamp(0, 255) as u8,
    )
}

fn pixel_hash(seed: u64, x: u32, y: u32) -> u64 {
    splitmix64(seed ^ (u64::from(x) << 32) ^ u64::from(y))
}

/// SplitMix64 — a tiny, high-quality deterministic hash/PRNG step.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actor(gt: u64, bbox: BoundingBox) -> SceneActor {
        SceneActor {
            gt: GroundTruthId(gt),
            class: ObjectClass::Car,
            bbox,
            appearance: VehicleAppearance::from_seed(gt),
        }
    }

    #[test]
    fn appearance_is_deterministic() {
        assert_eq!(
            VehicleAppearance::from_seed(42),
            VehicleAppearance::from_seed(42)
        );
        // Different seeds usually differ (palette has 12 entries; seeds 0..6
        // should not all collide).
        let distinct: std::collections::HashSet<_> = (0..6u64)
            .map(|s| {
                let a = VehicleAppearance::from_seed(s);
                (a.body.r, a.body.g, a.body.b)
            })
            .collect();
        assert!(distinct.len() >= 3);
    }

    #[test]
    fn render_is_deterministic() {
        let mut scene = Scene::empty(64, 48);
        scene
            .actors
            .push(actor(1, BoundingBox::new(10.0, 10.0, 30.0, 25.0).unwrap()));
        let r = Renderer::default();
        assert_eq!(r.render(&scene, 7), r.render(&scene, 7));
        assert_ne!(r.render(&scene, 7), r.render(&scene, 8));
    }

    #[test]
    fn vehicle_pixels_differ_from_background() {
        let mut scene = Scene::empty(64, 48);
        let red = SceneActor {
            gt: GroundTruthId(4), // palette index 4 = red
            class: ObjectClass::Car,
            bbox: BoundingBox::new(20.0, 20.0, 40.0, 36.0).unwrap(),
            appearance: VehicleAppearance::from_seed(4),
        };
        scene.actors.push(red);
        let f = Renderer::default().render(&scene, 1);
        // Center of the body band should be close to the body color.
        let p = f.pixel(30, 30);
        let body = red.appearance.body;
        assert!((i32::from(p.r) - i32::from(body.r)).abs() <= 8);
        // Background pixel stays near background.
        let bg = f.pixel(5, 5);
        assert!((i32::from(bg.r) - 70).abs() <= 10);
    }

    #[test]
    fn later_actor_occludes_earlier() {
        let mut scene = Scene::empty(64, 48);
        scene
            .actors
            .push(actor(0, BoundingBox::new(10.0, 10.0, 40.0, 40.0).unwrap())); // white
        scene
            .actors
            .push(actor(1, BoundingBox::new(20.0, 20.0, 50.0, 45.0).unwrap())); // black
        let f = Renderer::default().render(&scene, 3);
        // The overlap region belongs to actor 1 (black body).
        let p = f.pixel(30, 38);
        assert!(p.r < 60, "expected dark occluder, got {p:?}");
    }

    #[test]
    fn partially_offscreen_actor_is_clipped_not_panicking() {
        let mut scene = Scene::empty(32, 32);
        scene.actors.push(actor(
            2,
            BoundingBox::new(-10.0, -10.0, 10.0, 10.0).unwrap(),
        ));
        scene
            .actors
            .push(actor(3, BoundingBox::new(25.0, 25.0, 50.0, 50.0).unwrap()));
        let f = Renderer::default().render(&scene, 0);
        assert_eq!(f.width(), 32);
    }

    #[test]
    fn class_vehicle_filter() {
        assert!(ObjectClass::Car.is_vehicle());
        assert!(ObjectClass::Bus.is_vehicle());
        assert!(ObjectClass::Truck.is_vehicle());
        assert!(!ObjectClass::Person.is_vehicle());
        assert!(!ObjectClass::Bicycle.is_vehicle());
    }
}
