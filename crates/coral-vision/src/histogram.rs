//! Adaptive center-weighted color histograms and the Bhattacharyya
//! distance between them.
//!
//! The paper extracts "an adaptive histogram (i.e., signature) for the
//! vehicle, which represents the color and shape of the vehicle giving more
//! weightage for the pixels in the center of the bounding boxes" (§4.1.2,
//! following Tang et al.), and matches signatures across cameras with the
//! Bhattacharyya distance (§4.1.4).

use crate::bbox::BoundingBox;
use crate::frame::Frame;
use serde::{Deserialize, Serialize};

/// Histogram extraction configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramConfig {
    /// Bins per RGB channel; the histogram has `bins³` cells.
    pub bins_per_channel: usize,
    /// Width of the center-weighting Gaussian as a fraction of the box
    /// half-extent; smaller values concentrate the signature on the body
    /// of the vehicle.
    pub center_sigma_frac: f64,
}

impl Default for HistogramConfig {
    fn default() -> Self {
        Self {
            bins_per_channel: 8,
            center_sigma_frac: 0.5,
        }
    }
}

/// A reusable extraction arena: one flat bin buffer recycled across every
/// histogram a camera extracts, plus effectiveness counters. The per-frame
/// hot path ([`ColorHistogram::extract_into`]) touches no allocator as long
/// as consecutive extractions share a cell count — the common case, since a
/// camera's [`HistogramConfig`] is fixed for its lifetime.
#[derive(Debug, Clone, Default)]
pub struct HistogramScratch {
    bins: Vec<f64>,
    reuses: u64,
    allocs: u64,
}

impl HistogramScratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bins written by the last [`ColorHistogram::extract_into`].
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// `(reuse hits, allocations)` — how often the buffer was recycled
    /// versus (re)sized. The ratio is the arena's hit-rate.
    pub fn stats(&self) -> (u64, u64) {
        (self.reuses, self.allocs)
    }

    /// Zero-fills the buffer at `cells` length, recycling the existing
    /// allocation when the length already matches.
    fn reset(&mut self, cells: usize) {
        if self.bins.len() == cells {
            self.reuses += 1;
            self.bins.iter_mut().for_each(|v| *v = 0.0);
        } else {
            self.allocs += 1;
            self.bins.clear();
            self.bins.resize(cells, 0.0);
        }
    }
}

/// Flat Bhattacharyya-sum kernel: `Σ sqrt(p[i]·q[i])` accumulated strictly
/// in index order — bit-identical to the naive zip/fold — but walked in
/// fixed-width chunks over pre-trimmed equal-length slices, so the inner
/// loop carries no per-element bounds checks.
pub fn bhattacharyya_sum_flat(p: &[f64], q: &[f64]) -> f64 {
    const LANES: usize = 8;
    let n = p.len().min(q.len());
    let (p, q) = (&p[..n], &q[..n]);
    let mut acc = 0.0f64;
    let mut cp = p.chunks_exact(LANES);
    let mut cq = q.chunks_exact(LANES);
    for (a, b) in cp.by_ref().zip(cq.by_ref()) {
        let a: &[f64; LANES] = a.try_into().expect("chunk width");
        let b: &[f64; LANES] = b.try_into().expect("chunk width");
        for i in 0..LANES {
            acc += (a[i] * b[i]).sqrt();
        }
    }
    for (a, b) in cp.remainder().iter().zip(cq.remainder()) {
        acc += (a * b).sqrt();
    }
    acc
}

/// Reference Bhattacharyya sum (the pre-flattening iterator chain). Kept
/// as the oracle the property tests pin [`bhattacharyya_sum_flat`]
/// against.
#[doc(hidden)]
pub fn bhattacharyya_sum_naive(p: &[f64], q: &[f64]) -> f64 {
    p.iter().zip(q).map(|(a, b)| (a * b).sqrt()).sum()
}

/// A normalised color histogram (probability distribution over RGB bins).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColorHistogram {
    bins_per_channel: usize,
    bins: Vec<f64>,
}

impl ColorHistogram {
    /// Extracts the center-weighted histogram of `bbox` within `frame`.
    /// Pixels outside the frame are ignored; an empty region yields the
    /// uniform histogram.
    pub fn extract(frame: &Frame, bbox: &BoundingBox, config: &HistogramConfig) -> Self {
        let mut scratch = HistogramScratch::new();
        Self::extract_into(frame, bbox, config, &mut scratch);
        Self {
            bins_per_channel: config.bins_per_channel.max(1),
            bins: std::mem::take(&mut scratch.bins),
        }
    }

    /// Allocation-free extraction: identical numerics to
    /// [`ColorHistogram::extract`], written into the arena's recycled
    /// buffer instead of a fresh `Vec`. Read the result from
    /// [`HistogramScratch::bins`].
    pub fn extract_into(
        frame: &Frame,
        bbox: &BoundingBox,
        config: &HistogramConfig,
        scratch: &mut HistogramScratch,
    ) {
        let b = config.bins_per_channel.max(1);
        scratch.reset(b * b * b);
        let bins = &mut scratch.bins;
        let clamped = bbox.clamp_to(frame.width(), frame.height());
        let (x0, y0) = (clamped.x0.floor() as u32, clamped.y0.floor() as u32);
        let (x1, y1) = (
            (clamped.x1.ceil() as u32).min(frame.width()),
            (clamped.y1.ceil() as u32).min(frame.height()),
        );
        let c = bbox.centroid();
        let sx = (bbox.width() / 2.0 * config.center_sigma_frac).max(1.0);
        let sy = (bbox.height() / 2.0 * config.center_sigma_frac).max(1.0);
        let mut total = 0.0;
        for y in y0..y1 {
            for x in x0..x1 {
                let px = frame.pixel(x, y);
                let dx = (f64::from(x) + 0.5 - c.x) / sx;
                let dy = (f64::from(y) + 0.5 - c.y) / sy;
                let w = (-(dx * dx + dy * dy) / 2.0).exp();
                let idx = bin_index(px.r, px.g, px.b, b);
                bins[idx] += w;
                total += w;
            }
        }
        if total <= 0.0 {
            let uniform = 1.0 / bins.len() as f64;
            bins.iter_mut().for_each(|v| *v = uniform);
        } else {
            bins.iter_mut().for_each(|v| *v /= total);
        }
    }

    /// The uniform histogram (used as a neutral prior).
    pub fn uniform(bins_per_channel: usize) -> Self {
        let b = bins_per_channel.max(1);
        let n = b * b * b;
        Self {
            bins_per_channel: b,
            bins: vec![1.0 / n as f64; n],
        }
    }

    /// Reassembles a histogram from raw bin values (the storage snapshot
    /// restore path). Returns `None` unless `bins` has exactly
    /// `bins_per_channel³` entries, so a truncated snapshot line cannot
    /// produce a histogram that panics later in a Bhattacharyya compare.
    pub fn from_bins(bins_per_channel: usize, bins: Vec<f64>) -> Option<Self> {
        let b = bins_per_channel.max(1);
        if bins.len() != b * b * b {
            return None;
        }
        Some(Self {
            bins_per_channel: b,
            bins,
        })
    }

    /// Bins per channel.
    pub fn bins_per_channel(&self) -> usize {
        self.bins_per_channel
    }

    /// The normalised bin values.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Bhattacharyya coefficient with `other`, in `[0, 1]` (1 = identical).
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different bin counts.
    pub fn bhattacharyya_coefficient(&self, other: &ColorHistogram) -> f64 {
        assert_eq!(
            self.bins.len(),
            other.bins.len(),
            "histogram bin counts differ"
        );
        bhattacharyya_sum_flat(&self.bins, &other.bins).min(1.0)
    }

    /// Bhattacharyya distance `sqrt(1 - BC)`, in `[0, 1]` (0 = identical) —
    /// the re-identification metric of §4.1.4.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different bin counts.
    pub fn bhattacharyya_distance(&self, other: &ColorHistogram) -> f64 {
        (1.0 - self.bhattacharyya_coefficient(other))
            .max(0.0)
            .sqrt()
    }
}

/// Running mean of histograms across a vehicle's tracklet, producing the
/// final per-vehicle signature.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureAccumulator {
    sum: Option<Vec<f64>>,
    count: usize,
    bins_per_channel: usize,
}

impl SignatureAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            sum: None,
            count: 0,
            bins_per_channel: 0,
        }
    }

    /// Adds one frame's histogram.
    ///
    /// # Panics
    ///
    /// Panics if bin counts differ from previously added histograms.
    pub fn add(&mut self, h: &ColorHistogram) {
        self.add_bins(&h.bins, h.bins_per_channel);
    }

    /// Adds one frame's histogram from raw normalised bins — the
    /// allocation-free twin of [`SignatureAccumulator::add`], fed straight
    /// from a [`HistogramScratch`] buffer. Identical numerics: the running
    /// sum accumulates element-wise in index order either way.
    ///
    /// # Panics
    ///
    /// Panics if bin counts differ from previously added histograms.
    pub fn add_bins(&mut self, bins: &[f64], bins_per_channel: usize) {
        match &mut self.sum {
            None => {
                self.sum = Some(bins.to_vec());
                self.bins_per_channel = bins_per_channel;
            }
            Some(sum) => {
                assert_eq!(sum.len(), bins.len(), "histogram bin counts differ");
                for (s, v) in sum.iter_mut().zip(bins) {
                    *s += v;
                }
            }
        }
        self.count += 1;
    }

    /// Number of accumulated histograms.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The mean signature, or `None` if nothing was accumulated.
    pub fn signature(&self) -> Option<ColorHistogram> {
        let sum = self.sum.as_ref()?;
        let total: f64 = sum.iter().sum();
        let bins = if total > 0.0 {
            sum.iter().map(|v| v / total).collect()
        } else {
            vec![1.0 / sum.len() as f64; sum.len()]
        };
        Some(ColorHistogram {
            bins_per_channel: self.bins_per_channel,
            bins,
        })
    }
}

impl Default for SignatureAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

fn bin_index(r: u8, g: u8, b: u8, bins: usize) -> usize {
    let scale = |v: u8| (usize::from(v) * bins) / 256;
    (scale(r) * bins + scale(g)) * bins + scale(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Rgb;
    use crate::render::{
        GroundTruthId, ObjectClass, Renderer, Scene, SceneActor, VehicleAppearance,
    };

    fn render_vehicle(seed: u64, frame_seed: u64) -> (Frame, BoundingBox) {
        let bbox = BoundingBox::new(20.0, 20.0, 70.0, 52.0).unwrap();
        let scene = Scene {
            width: 96,
            height: 80,
            actors: vec![SceneActor {
                gt: GroundTruthId(seed),
                class: ObjectClass::Car,
                bbox,
                appearance: VehicleAppearance::from_seed(seed),
            }],
        };
        (Renderer::default().render(&scene, frame_seed), bbox)
    }

    #[test]
    fn histogram_is_normalised() {
        let (frame, bbox) = render_vehicle(4, 1);
        let h = ColorHistogram::extract(&frame, &bbox, &HistogramConfig::default());
        let sum: f64 = h.bins().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(h.bins().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn identical_region_distance_zero() {
        let (frame, bbox) = render_vehicle(4, 1);
        let h = ColorHistogram::extract(&frame, &bbox, &HistogramConfig::default());
        assert!(h.bhattacharyya_distance(&h) < 1e-6);
        assert!((h.bhattacharyya_coefficient(&h) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_vehicle_different_noise_is_close() {
        let (fa, bbox) = render_vehicle(4, 1);
        let (fb, _) = render_vehicle(4, 99);
        let cfg = HistogramConfig::default();
        let ha = ColorHistogram::extract(&fa, &bbox, &cfg);
        let hb = ColorHistogram::extract(&fb, &bbox, &cfg);
        assert!(
            ha.bhattacharyya_distance(&hb) < 0.25,
            "dist = {}",
            ha.bhattacharyya_distance(&hb)
        );
    }

    #[test]
    fn different_color_vehicles_are_far() {
        let (fa, bbox) = render_vehicle(4, 1); // red
        let (fb, _) = render_vehicle(5, 1); // blue
        let cfg = HistogramConfig::default();
        let ha = ColorHistogram::extract(&fa, &bbox, &cfg);
        let hb = ColorHistogram::extract(&fb, &bbox, &cfg);
        let same = ColorHistogram::extract(&fa, &bbox, &cfg);
        assert!(
            ha.bhattacharyya_distance(&hb) > 2.0 * ha.bhattacharyya_distance(&same) + 0.1,
            "different colors must be farther apart: diff {} same {}",
            ha.bhattacharyya_distance(&hb),
            ha.bhattacharyya_distance(&same)
        );
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let (fa, bbox) = render_vehicle(1, 1);
        let (fb, _) = render_vehicle(7, 2);
        let cfg = HistogramConfig::default();
        let ha = ColorHistogram::extract(&fa, &bbox, &cfg);
        let hb = ColorHistogram::extract(&fb, &bbox, &cfg);
        let d1 = ha.bhattacharyya_distance(&hb);
        let d2 = hb.bhattacharyya_distance(&ha);
        assert!((d1 - d2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn empty_region_is_uniform() {
        let frame = Frame::filled(16, 16, Rgb::new(100, 100, 100));
        // Box entirely outside the frame.
        let bbox = BoundingBox::new(100.0, 100.0, 120.0, 120.0).unwrap();
        let h = ColorHistogram::extract(&frame, &bbox, &HistogramConfig::default());
        let u = ColorHistogram::uniform(8);
        assert!(h.bhattacharyya_distance(&u) < 1e-9);
    }

    #[test]
    fn center_weighting_emphasises_center() {
        // Frame whose central region is red and border is blue: with strong
        // center weighting, the red bins dominate.
        let mut buf = crate::frame::FrameBuf::filled(32, 32, Rgb::new(0, 0, 255));
        for y in 12..20 {
            for x in 12..20 {
                buf.put(x, y, Rgb::new(255, 0, 0));
            }
        }
        let frame = buf.freeze();
        let bbox = BoundingBox::new(0.0, 0.0, 32.0, 32.0).unwrap();
        let tight = HistogramConfig {
            bins_per_channel: 4,
            center_sigma_frac: 0.2,
        };
        let loose = HistogramConfig {
            bins_per_channel: 4,
            center_sigma_frac: 5.0,
        };
        let ht = ColorHistogram::extract(&frame, &bbox, &tight);
        let hl = ColorHistogram::extract(&frame, &bbox, &loose);
        let red_bin = bin_index(255, 0, 0, 4);
        assert!(
            ht.bins()[red_bin] > 0.5,
            "tight sigma should be dominated by center: {}",
            ht.bins()[red_bin]
        );
        // Without center weighting, red covers only 64 of 1024 pixels.
        assert!(hl.bins()[red_bin] < 0.2);
        assert!(hl.bins()[red_bin] < ht.bins()[red_bin]);
    }

    #[test]
    fn accumulator_mean_signature() {
        let (fa, bbox) = render_vehicle(4, 1);
        let (fb, _) = render_vehicle(4, 2);
        let cfg = HistogramConfig::default();
        let ha = ColorHistogram::extract(&fa, &bbox, &cfg);
        let hb = ColorHistogram::extract(&fb, &bbox, &cfg);
        let mut acc = SignatureAccumulator::new();
        assert!(acc.signature().is_none());
        acc.add(&ha);
        acc.add(&hb);
        assert_eq!(acc.count(), 2);
        let sig = acc.signature().unwrap();
        let sum: f64 = sig.bins().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Mean signature is close to both constituents.
        assert!(sig.bhattacharyya_distance(&ha) < 0.2);
        assert!(sig.bhattacharyya_distance(&hb) < 0.2);
    }

    #[test]
    #[should_panic(expected = "bin counts differ")]
    fn mismatched_bins_panic() {
        let a = ColorHistogram::uniform(4);
        let b = ColorHistogram::uniform(8);
        a.bhattacharyya_distance(&b);
    }
}
