//! Pluggable vision substrate for Coral-Pie: detection, SORT tracking and
//! appearance signatures.
//!
//! The paper treats its computer-vision components as pluggable modules
//! (§2.1) and builds the prototype from off-the-shelf pieces: MobileNetSSD
//! detection on an EdgeTPU, the SORT tracker, adaptive center-weighted
//! color histograms and the Bhattacharyya distance (§4.1). This crate
//! reimplements each piece, substituting a synthetic renderer plus a
//! calibrated noise-model detector for the physical camera and TPU (see
//! DESIGN.md for the substitution argument):
//!
//! - [`render`] — rasterises ground-truth scenes into raw RGB [`Frame`]s.
//! - [`detect`] — the [`Detector`] trait, [`SyntheticSsdDetector`], and the
//!   paper's 3-step post-processing filter ([`PostProcessor`]).
//! - [`kalman`] / [`hungarian`] / [`sort`] — the SORT tracker stack.
//! - [`histogram`] — adaptive color histograms and Bhattacharyya distance.
//! - [`direction`] — tracklet motion-direction estimation.
//! - [`ident`] — the Vehicle Identification element that emits one
//!   detection event per vehicle passage.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bbox;
pub mod detect;
pub mod direction;
pub mod frame;
pub mod histogram;
pub mod hungarian;
pub mod ident;
pub mod interval;
pub mod kalman;
pub mod render;
pub mod sort;

pub use bbox::{BoundingBox, InvalidBoxError};
pub use detect::{Detection, Detector, DetectorNoise, PostProcessor, SyntheticSsdDetector};
pub use frame::{Frame, FrameBuf, FrameId, Rgb};
pub use histogram::{
    bhattacharyya_sum_flat, bhattacharyya_sum_naive, ColorHistogram, HistogramConfig,
    HistogramScratch, SignatureAccumulator,
};
pub use ident::{IdentConfig, IdentFrameResult, VehicleIdentification, VehicleObservation};
pub use interval::{DetectAndTrack, DetectAndTrackConfig};
pub use kalman::KalmanBoxFilter;
pub use render::{GroundTruthId, ObjectClass, Renderer, Scene, SceneActor, VehicleAppearance};
pub use sort::{ExpiredTrack, SortConfig, SortOutput, SortTracker, TrackId, TrackState};

// The hot per-frame kernels cross thread boundaries in the runtime's
// parallel camera stepper: each worker owns one camera's tracker state
// exclusively (`&mut`, no aliasing) while sharing read-only scene data.
// These bounds keep that sound at compile time — none of the kernels may
// grow non-`Send`/`Sync` interior state (`Rc`, `RefCell`, raw pointers).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KalmanBoxFilter>();
    assert_send_sync::<SortTracker>();
    assert_send_sync::<ColorHistogram>();
    assert_send_sync::<SignatureAccumulator>();
    assert_send_sync::<Frame>();
    assert_send_sync::<Scene>();
    assert_send_sync::<VehicleIdentification<SyntheticSsdDetector>>();
};
