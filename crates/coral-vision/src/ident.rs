//! The Vehicle Identification element: detection → tracking → feature
//! extraction → one detection event per vehicle.
//!
//! "The goal of the vehicle identification element is to recognize the
//! appearance of each vehicle within one camera and generate a unique
//! vehicle detection event for it" (paper §4.1.2). Per frame the element
//! renders the scene, runs the detector, filters boxes, feeds them to SORT,
//! and accumulates per-track centroids and histograms. When a track's ID
//! stops appearing for `max_age` frames the vehicle has left the FOV and a
//! single [`VehicleObservation`] is emitted.

use crate::bbox::BoundingBox;
use crate::detect::{Detector, PostProcessor};
use crate::frame::FrameId;
use crate::histogram::{ColorHistogram, HistogramConfig, HistogramScratch, SignatureAccumulator};
use crate::render::{GroundTruthId, Renderer, Scene};
use crate::sort::{SortConfig, SortTracker, TrackId};
use crate::{direction, Frame};
use coral_geo::{Heading, Point2};
use std::collections::HashMap;

/// The per-vehicle output of the identification element, from which the
/// communication layer builds the JSON detection event.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleObservation {
    /// Camera-local SORT track id.
    pub track: TrackId,
    /// First frame in which the vehicle was matched.
    pub first_frame: FrameId,
    /// Last frame in which the vehicle was matched.
    pub last_frame: FrameId,
    /// Number of frames the vehicle was matched in.
    pub frames_observed: u32,
    /// Estimated world-space bearing, degrees clockwise from north.
    pub bearing_deg: Option<f64>,
    /// Quantized compass heading of the motion.
    pub heading: Option<Heading>,
    /// Appearance signature (mean adaptive color histogram).
    pub signature: ColorHistogram,
    /// The vehicle's final bounding box.
    pub last_bbox: BoundingBox,
    /// Majority-vote ground-truth identity (evaluation only; `None` for
    /// clutter tracks that never overlapped a real vehicle).
    pub ground_truth: Option<GroundTruthId>,
}

/// Summary of one processed frame.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentFrameResult {
    /// Detections that survived post-processing this frame.
    pub detections_kept: usize,
    /// Tracks matched this frame (id + box), the per-frame annotations the
    /// storage client ships with the raw frame (paper §4.2.2).
    pub active: Vec<crate::sort::TrackState>,
    /// Vehicles that completed (left the FOV) this frame.
    pub completed: Vec<VehicleObservation>,
    /// Ground-truth vehicles the detector fired on this frame (a kept
    /// detection overlapped the actor at IoU ≥ `gt_iou_threshold`),
    /// ascending id. Evaluation only: this is the raw detection evidence
    /// the error-attribution layer uses to separate "never detected" from
    /// "detected but the tracker dropped it".
    pub detected_gt: Vec<GroundTruthId>,
}

impl IdentFrameResult {
    /// Number of tracks matched this frame.
    pub fn active_tracks(&self) -> usize {
        self.active.len()
    }
}

/// Identification-element configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentConfig {
    /// SORT tracker parameters (the paper uses `max_age = 3`).
    pub sort: SortConfig,
    /// Histogram extraction parameters.
    pub histogram: HistogramConfig,
    /// Renderer used to produce the raw frames signatures are read from.
    pub renderer: Renderer,
    /// Camera videoing angle, degrees clockwise from north.
    pub videoing_angle_deg: f64,
    /// Minimum IoU between a track box and a scene actor for ground-truth
    /// attribution (evaluation only).
    pub gt_iou_threshold: f64,
    /// Minimum net image-plane displacement, in pixels, between a track's
    /// first centroid and its farthest observed centroid for the track to
    /// emit a [`VehicleObservation`] when it completes. Stationary tracks
    /// — glare, debris, clutter phantoms that latch the tracker without
    /// ever moving — are discarded at finalisation instead of becoming
    /// passage events. Vehicles traverse the field of view, so any
    /// threshold well below the FOV diameter leaves them untouched.
    /// `0.0` (the default) disables the filter and reproduces the
    /// historical event stream bit-for-bit.
    pub min_net_displacement_px: f64,
    /// Number of trailing centroids used to estimate the bearing a track
    /// *exits* with. The MDCS inform is routed by this bearing, and for a
    /// vehicle that turns inside the field of view the whole-track
    /// estimate points diagonally — between the admitted road headings —
    /// so the nearest-heading fallback informs the wrong neighbour about
    /// half the time. A trailing window sees only the post-turn motion.
    /// `0` (the default) keeps the whole-track estimate and reproduces
    /// the historical event stream bit-for-bit.
    pub exit_bearing_window: usize,
    /// Maximum fraction of a track's bounding box that may be covered by
    /// another concurrent track for the frame to contribute to the
    /// appearance signature. Crossing and queued vehicles draw each
    /// other's pixels inside the box, and a signature averaged over those
    /// frames matches the *neighbour* downstream; sampling only clean
    /// frames keeps it discriminative. If a track never has a clean frame
    /// its all-frames signature is used as a fallback, so no observation
    /// is lost. `1.0` (the default) accumulates every frame and
    /// reproduces the historical event stream bit-for-bit.
    pub signature_max_overlap: f64,
}

impl Default for IdentConfig {
    fn default() -> Self {
        Self {
            sort: SortConfig::default(),
            histogram: HistogramConfig::default(),
            renderer: Renderer::default(),
            videoing_angle_deg: 0.0,
            gt_iou_threshold: 0.3,
            min_net_displacement_px: 0.0,
            exit_bearing_window: 0,
            signature_max_overlap: 1.0,
        }
    }
}

#[derive(Debug, Clone)]
struct Tracklet {
    centroids: Vec<Point2>,
    /// All-frames signature (the legacy accumulator, and the fallback
    /// when overlap gating leaves no clean frame).
    signature: SignatureAccumulator,
    /// Clean-frames-only signature (populated when
    /// [`IdentConfig::signature_max_overlap`] gating is enabled).
    clean_signature: SignatureAccumulator,
    first_frame: FrameId,
    last_frame: FrameId,
    last_bbox: BoundingBox,
    gt_votes: HashMap<GroundTruthId, u32>,
}

/// The Vehicle Identification element for one camera.
#[derive(Debug)]
pub struct VehicleIdentification<D> {
    detector: D,
    post: PostProcessor,
    sort: SortTracker,
    config: IdentConfig,
    tracklets: HashMap<TrackId, Tracklet>,
    render_seed: u64,
    /// Recycled histogram-extraction buffer: one allocation serves every
    /// per-frame signature this camera ever extracts.
    scratch: HistogramScratch,
}

impl<D: Detector> VehicleIdentification<D> {
    /// Creates the element with a pluggable detector and the camera's
    /// post-processing filter.
    pub fn new(detector: D, post: PostProcessor, config: IdentConfig, render_seed: u64) -> Self {
        Self {
            detector,
            post,
            sort: SortTracker::new(config.sort),
            config,
            tracklets: HashMap::new(),
            render_seed,
            scratch: HistogramScratch::new(),
        }
    }

    /// Number of vehicles currently being tracked.
    pub fn live_track_count(&self) -> usize {
        self.sort.live_track_count()
    }

    /// Histogram-arena effectiveness counters: `(reuse hits, allocations)`.
    pub fn scratch_stats(&self) -> (u64, u64) {
        self.scratch.stats()
    }

    /// Renders the raw frame for `scene` exactly as
    /// [`VehicleIdentification::process_scene`] would (same seed schedule),
    /// so callers that also persist raw frames see identical pixels.
    pub fn render(&self, frame_id: FrameId, scene: &Scene) -> Frame {
        self.config
            .renderer
            .render(scene, self.render_seed ^ frame_id.0)
    }

    /// Processes one frame: renders the scene, detects, filters, tracks and
    /// returns any completed vehicle observations.
    pub fn process_scene(&mut self, frame_id: FrameId, scene: &Scene) -> IdentFrameResult {
        let frame = self.render(frame_id, scene);
        self.process_rendered(frame_id, scene, &frame)
    }

    /// Same as [`VehicleIdentification::process_scene`] but with a
    /// pre-rendered frame (used when the pipeline stages render upstream).
    pub fn process_rendered(
        &mut self,
        frame_id: FrameId,
        scene: &Scene,
        frame: &Frame,
    ) -> IdentFrameResult {
        let raw = self.detector.detect(scene);
        let kept = self.post.filter(raw);
        let boxes: Vec<BoundingBox> = kept.iter().map(|d| d.bbox).collect();
        let out = self.sort.update(&boxes);

        // Detection-level ground-truth evidence (evaluation only): which
        // actors did the detector actually fire on this frame, before any
        // tracking? Attribution uses this to tell detect-misses from
        // track-losses.
        let mut detected_gt: Vec<GroundTruthId> = kept
            .iter()
            .filter_map(|d| {
                scene
                    .actors
                    .iter()
                    .map(|a| (a.gt, d.bbox.iou(&a.bbox)))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .filter(|&(_, iou)| iou >= self.config.gt_iou_threshold)
                    .map(|(gt, _)| gt)
            })
            .collect();
        detected_gt.sort_unstable();
        detected_gt.dedup();

        let overlap_gating = self.config.signature_max_overlap < 1.0;
        for (i, st) in out.active.iter().enumerate() {
            // Overlap gating: is this box covered by another concurrent
            // track beyond the clean-frame threshold? Crossing vehicles
            // draw their pixels inside each other's boxes, poisoning the
            // appearance signature.
            let contaminated = overlap_gating && {
                let own = st.bbox.area();
                own > 0.0
                    && out.active.iter().enumerate().any(|(j, other)| {
                        j != i
                            && st.bbox.intersection(&other.bbox).map_or(0.0, |b| b.area()) / own
                                > self.config.signature_max_overlap
                    })
            };
            let entry = self.tracklets.entry(st.id).or_insert_with(|| Tracklet {
                centroids: Vec::new(),
                signature: SignatureAccumulator::new(),
                clean_signature: SignatureAccumulator::new(),
                first_frame: frame_id,
                last_frame: frame_id,
                last_bbox: st.bbox,
                gt_votes: HashMap::new(),
            });
            entry.centroids.push(st.bbox.centroid());
            ColorHistogram::extract_into(
                frame,
                &st.bbox,
                &self.config.histogram,
                &mut self.scratch,
            );
            entry.signature.add_bins(
                self.scratch.bins(),
                self.config.histogram.bins_per_channel.max(1),
            );
            if overlap_gating && !contaminated {
                entry.clean_signature.add_bins(
                    self.scratch.bins(),
                    self.config.histogram.bins_per_channel.max(1),
                );
            }
            entry.last_frame = frame_id;
            entry.last_bbox = st.bbox;
            // Ground-truth attribution by IoU (evaluation only).
            let best = scene
                .actors
                .iter()
                .map(|a| (a.gt, st.bbox.iou(&a.bbox)))
                .max_by(|a, b| a.1.total_cmp(&b.1));
            if let Some((gt, iou)) = best {
                if iou >= self.config.gt_iou_threshold {
                    *entry.gt_votes.entry(gt).or_insert(0) += 1;
                }
            }
        }

        let completed = out
            .expired
            .iter()
            .filter_map(|ex| self.finalize(ex.id, ex.hits))
            .collect();

        IdentFrameResult {
            detections_kept: kept.len(),
            active: out.active,
            completed,
            detected_gt,
        }
    }

    /// Flushes all live tracks (end of stream), emitting their
    /// observations.
    pub fn flush(&mut self) -> Vec<VehicleObservation> {
        let expired = self.sort.flush();
        expired
            .iter()
            .filter_map(|ex| self.finalize(ex.id, ex.hits))
            .collect()
    }

    fn finalize(&mut self, id: TrackId, hits: u32) -> Option<VehicleObservation> {
        let t = self.tracklets.remove(&id)?;
        // Stationary-track rejection: a track that never strayed from its
        // first centroid is scene furniture (clutter phantom, glare), not
        // a vehicle passage. Max deviation from the first point is robust
        // to detector box jitter, unlike accumulated path length.
        if self.config.min_net_displacement_px > 0.0 {
            let moved = t.centroids.first().map_or(0.0, |p0| {
                t.centroids
                    .iter()
                    .map(|p| ((p.x - p0.x).powi(2) + (p.y - p0.y).powi(2)).sqrt())
                    .fold(0.0, f64::max)
            });
            if moved < self.config.min_net_displacement_px {
                return None;
            }
        }
        // Route informs by the bearing the vehicle *leaves* with: a
        // trailing window (when configured) sees only the post-turn
        // motion, where the whole tracklet of a turning vehicle would
        // average out to a diagonal between the admitted road headings.
        let w = self.config.exit_bearing_window;
        let exit_track = if w > 1 && t.centroids.len() > w {
            &t.centroids[t.centroids.len() - w..]
        } else {
            &t.centroids[..]
        };
        let bearing = direction::estimate_bearing_deg(exit_track, self.config.videoing_angle_deg);
        let ground_truth = t
            .gt_votes
            .iter()
            .max_by_key(|&(gt, votes)| (*votes, std::cmp::Reverse(gt.0)))
            .map(|(gt, _)| *gt);
        Some(VehicleObservation {
            track: id,
            first_frame: t.first_frame,
            last_frame: t.last_frame,
            frames_observed: hits,
            bearing_deg: bearing,
            heading: bearing.map(Heading::from_bearing_deg),
            signature: t
                .clean_signature
                .signature()
                .or_else(|| t.signature.signature())?,
            last_bbox: t.last_bbox,
            ground_truth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{DetectorNoise, SyntheticSsdDetector};
    use crate::render::{ObjectClass, SceneActor, VehicleAppearance};
    use coral_geo::Polygon;

    const W: u32 = 200;
    const H: u32 = 150;

    fn full_coi() -> PostProcessor {
        PostProcessor::new(Polygon::rect(0.0, 0.0, f64::from(W), f64::from(H)))
    }

    fn ident(noise: DetectorNoise) -> VehicleIdentification<SyntheticSsdDetector> {
        VehicleIdentification::new(
            SyntheticSsdDetector::new(noise, 11),
            full_coi(),
            IdentConfig::default(),
            1,
        )
    }

    fn moving_car(gt: u64, t: u32) -> SceneActor {
        SceneActor {
            gt: GroundTruthId(gt),
            class: ObjectClass::Car,
            bbox: BoundingBox::from_center(20.0 + 6.0 * f64::from(t), 75.0, 36.0, 22.0).unwrap(),
            appearance: VehicleAppearance::from_seed(gt),
        }
    }

    /// Drives a car across the FOV over `n` frames then `gap` empty frames.
    fn drive(
        ident: &mut VehicleIdentification<SyntheticSsdDetector>,
        gt: u64,
        n: u32,
    ) -> Vec<VehicleObservation> {
        let mut done = Vec::new();
        for t in 0..n {
            let scene = Scene {
                width: W,
                height: H,
                actors: vec![moving_car(gt, t)],
            };
            done.extend(ident.process_scene(FrameId(u64::from(t)), &scene).completed);
        }
        for t in n..n + 6 {
            let scene = Scene::empty(W, H);
            done.extend(ident.process_scene(FrameId(u64::from(t)), &scene).completed);
        }
        done
    }

    #[test]
    fn one_vehicle_one_event() {
        let mut ident = ident(DetectorNoise::perfect());
        let obs = drive(&mut ident, 4, 15);
        assert_eq!(obs.len(), 1, "exactly one detection event per vehicle");
        let o = &obs[0];
        assert_eq!(o.ground_truth, Some(GroundTruthId(4)));
        assert_eq!(o.frames_observed, 15);
        assert_eq!(o.heading, Some(Heading::East));
        assert_eq!(o.first_frame, FrameId(0));
        assert_eq!(o.last_frame, FrameId(14));
    }

    #[test]
    fn de_duplication_under_detector_misses() {
        // With max_age = 3 the paper tolerates sporadic false negatives:
        // a moderate miss rate must still yield a single event.
        let noise = DetectorNoise {
            miss_rate: 0.15,
            clutter_rate: 0.0,
            ..DetectorNoise::default()
        };
        let mut ident = ident(noise);
        let obs = drive(&mut ident, 4, 20);
        assert_eq!(obs.len(), 1, "max_age should absorb sporadic misses");
    }

    #[test]
    fn signature_matches_same_vehicle_across_cameras() {
        // Two identification elements (two cameras) observing the same
        // ground-truth vehicle: their emitted signatures are close; a
        // different-colored vehicle is farther.
        let mut cam1 = ident(DetectorNoise::perfect());
        let mut cam2 = VehicleIdentification::new(
            SyntheticSsdDetector::new(DetectorNoise::perfect(), 77),
            full_coi(),
            IdentConfig::default(),
            99,
        );
        let red_at_cam1 = drive(&mut cam1, 4, 12).remove(0);
        let red_at_cam2 = drive(&mut cam2, 4, 12).remove(0);
        let mut cam3 = ident(DetectorNoise::perfect());
        let blue_at_cam3 = drive(&mut cam3, 5, 12).remove(0);
        let same = red_at_cam1
            .signature
            .bhattacharyya_distance(&red_at_cam2.signature);
        let diff = red_at_cam1
            .signature
            .bhattacharyya_distance(&blue_at_cam3.signature);
        assert!(same < diff, "same-vehicle dist {same} vs diff {diff}");
        assert!(same < 0.3, "same-vehicle distance too large: {same}");
    }

    #[test]
    fn two_vehicles_two_events() {
        let mut id = ident(DetectorNoise::perfect());
        let mut done = Vec::new();
        for t in 0..14u32 {
            let mut actors = vec![moving_car(1, t)];
            // Second car on another row, moving the opposite way.
            actors.push(SceneActor {
                gt: GroundTruthId(2),
                class: ObjectClass::Car,
                bbox: BoundingBox::from_center(180.0 - 6.0 * f64::from(t), 120.0, 36.0, 22.0)
                    .unwrap(),
                appearance: VehicleAppearance::from_seed(2),
            });
            let scene = Scene {
                width: W,
                height: H,
                actors,
            };
            done.extend(id.process_scene(FrameId(u64::from(t)), &scene).completed);
        }
        for t in 14..20u32 {
            done.extend(
                id.process_scene(FrameId(u64::from(t)), &Scene::empty(W, H))
                    .completed,
            );
        }
        assert_eq!(done.len(), 2);
        let gts: std::collections::HashSet<_> =
            done.iter().filter_map(|o| o.ground_truth).collect();
        assert_eq!(gts.len(), 2);
        let headings: Vec<_> = done.iter().filter_map(|o| o.heading).collect();
        assert!(headings.contains(&Heading::East));
        assert!(headings.contains(&Heading::West));
    }

    #[test]
    fn flush_emits_live_tracks() {
        let mut id = ident(DetectorNoise::perfect());
        for t in 0..5u32 {
            let scene = Scene {
                width: W,
                height: H,
                actors: vec![moving_car(3, t)],
            };
            id.process_scene(FrameId(u64::from(t)), &scene);
        }
        let obs = id.flush();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].ground_truth, Some(GroundTruthId(3)));
        assert_eq!(id.live_track_count(), 0);
    }

    fn ident_with(config: IdentConfig) -> VehicleIdentification<SyntheticSsdDetector> {
        VehicleIdentification::new(
            SyntheticSsdDetector::new(DetectorNoise::perfect(), 11),
            full_coi(),
            config,
            1,
        )
    }

    /// Regression: a track that never moves (clutter phantom, glare) must
    /// be rejected at finalisation when the stationary filter is enabled —
    /// and must keep emitting (historical behaviour) when it is not.
    #[test]
    fn stationary_filter_rejects_phantoms_keeps_vehicles() {
        let parked = |gt: u64| SceneActor {
            gt: GroundTruthId(gt),
            class: ObjectClass::Car,
            bbox: BoundingBox::from_center(100.0, 75.0, 36.0, 22.0).unwrap(),
            appearance: VehicleAppearance::from_seed(gt),
        };
        let run_parked = |id: &mut VehicleIdentification<SyntheticSsdDetector>| {
            let mut done = Vec::new();
            for t in 0..15u32 {
                let scene = Scene {
                    width: W,
                    height: H,
                    actors: vec![parked(7)],
                };
                done.extend(id.process_scene(FrameId(u64::from(t)), &scene).completed);
            }
            for t in 15..21u32 {
                done.extend(
                    id.process_scene(FrameId(u64::from(t)), &Scene::empty(W, H))
                        .completed,
                );
            }
            done
        };

        // Default (filter off): the stationary track still becomes an event.
        let mut legacy = ident(DetectorNoise::perfect());
        assert_eq!(run_parked(&mut legacy).len(), 1);

        // Filter on: the phantom is dropped...
        let filtering = IdentConfig {
            min_net_displacement_px: 12.0,
            ..IdentConfig::default()
        };
        let mut id = ident_with(filtering.clone());
        assert!(
            run_parked(&mut id).is_empty(),
            "stationary track must not emit"
        );

        // ...while a genuinely moving vehicle still emits exactly one event.
        let mut id = ident_with(filtering);
        assert_eq!(drive(&mut id, 4, 15).len(), 1);
    }

    /// Regression: a vehicle that turns inside the FOV (east, then south)
    /// must be routed by its *exit* bearing when the trailing window is
    /// configured. The whole-track estimate averages the two legs into a
    /// diagonal, which is what misroutes MDCS informs on city grids.
    #[test]
    fn exit_bearing_window_reports_post_turn_heading() {
        let turning_car = |t: u32| {
            // 15 frames east (4 px/frame), then 15 frames south.
            let (x, y) = if t < 15 {
                (20.0 + 4.0 * f64::from(t), 75.0)
            } else {
                (76.0, 75.0 + 4.0 * f64::from(t - 14))
            };
            SceneActor {
                gt: GroundTruthId(9),
                class: ObjectClass::Car,
                bbox: BoundingBox::from_center(x, y, 36.0, 22.0).unwrap(),
                appearance: VehicleAppearance::from_seed(9),
            }
        };
        let run_turn = |id: &mut VehicleIdentification<SyntheticSsdDetector>| {
            let mut done = Vec::new();
            for t in 0..30u32 {
                let scene = Scene {
                    width: W,
                    height: H,
                    actors: vec![turning_car(t)],
                };
                done.extend(id.process_scene(FrameId(u64::from(t)), &scene).completed);
            }
            for t in 30..36u32 {
                done.extend(
                    id.process_scene(FrameId(u64::from(t)), &Scene::empty(W, H))
                        .completed,
                );
            }
            done
        };

        let mut legacy = ident(DetectorNoise::perfect());
        let whole = run_turn(&mut legacy).remove(0);
        assert_eq!(
            whole.heading,
            Some(Heading::SouthEast),
            "whole-track estimate averages the turn into a diagonal"
        );

        let mut windowed = ident_with(IdentConfig {
            exit_bearing_window: 12,
            ..IdentConfig::default()
        });
        let exit = run_turn(&mut windowed).remove(0);
        assert_eq!(
            exit.heading,
            Some(Heading::South),
            "trailing window must see only the post-turn leg"
        );
    }

    /// Regression: frames where another track covers the box beyond the
    /// overlap threshold must not contribute to the appearance signature —
    /// and a track with *no* clean frame falls back to the all-frames
    /// signature instead of losing its observation.
    #[test]
    fn signature_overlap_gating_keeps_signature_clean() {
        // Baseline: the red car (gt 4) crossing alone.
        let mut solo = ident(DetectorNoise::perfect());
        let baseline = drive(&mut solo, 4, 12).remove(0);

        // The same crossing with a blue occluder riding on top of the red
        // car's box for the middle frames (3..9); frames 0-2 and 9-11 are
        // clean. The occluder covers 12/22 ≈ 55% of the red box — above
        // the 0.25 threshold.
        let occluder = |t: u32| SceneActor {
            gt: GroundTruthId(5),
            class: ObjectClass::Car,
            bbox: BoundingBox::from_center(20.0 + 6.0 * f64::from(t), 85.0, 36.0, 22.0).unwrap(),
            appearance: VehicleAppearance::from_seed(5),
        };
        let run_occluded = |id: &mut VehicleIdentification<SyntheticSsdDetector>| {
            let mut done = Vec::new();
            for t in 0..12u32 {
                let mut actors = vec![moving_car(4, t)];
                if (3..9).contains(&t) {
                    actors.push(occluder(t));
                }
                let scene = Scene {
                    width: W,
                    height: H,
                    actors,
                };
                done.extend(id.process_scene(FrameId(u64::from(t)), &scene).completed);
            }
            for t in 12..20u32 {
                done.extend(
                    id.process_scene(FrameId(u64::from(t)), &Scene::empty(W, H))
                        .completed,
                );
            }
            done
        };

        let find = |obs: &[VehicleObservation], gt: u64| {
            obs.iter()
                .find(|o| o.ground_truth == Some(GroundTruthId(gt)))
                .cloned()
                .expect("observation present")
        };

        let mut legacy = ident(DetectorNoise::perfect());
        let ungated = run_occluded(&mut legacy);
        let mut gating = ident_with(IdentConfig {
            signature_max_overlap: 0.25,
            ..IdentConfig::default()
        });
        let gated = run_occluded(&mut gating);

        let d_gated = find(&gated, 4)
            .signature
            .bhattacharyya_distance(&baseline.signature);
        let d_ungated = find(&ungated, 4)
            .signature
            .bhattacharyya_distance(&baseline.signature);
        assert!(
            d_gated < d_ungated,
            "clean-frame signature must be closer to the solo baseline \
             (gated {d_gated:.4} vs ungated {d_ungated:.4})"
        );

        // The occluder never has a clean frame (it always rides on the red
        // car), so gating must fall back to its all-frames signature
        // rather than dropping the observation.
        find(&gated, 5);
    }

    #[test]
    fn empty_stream_emits_nothing() {
        let mut id = ident(DetectorNoise::default());
        for t in 0..10u32 {
            let r = id.process_scene(FrameId(u64::from(t)), &Scene::empty(W, H));
            assert_eq!(r.active_tracks(), 0);
        }
        assert!(id.flush().is_empty());
    }
}
