//! The Vehicle Identification element: detection → tracking → feature
//! extraction → one detection event per vehicle.
//!
//! "The goal of the vehicle identification element is to recognize the
//! appearance of each vehicle within one camera and generate a unique
//! vehicle detection event for it" (paper §4.1.2). Per frame the element
//! renders the scene, runs the detector, filters boxes, feeds them to SORT,
//! and accumulates per-track centroids and histograms. When a track's ID
//! stops appearing for `max_age` frames the vehicle has left the FOV and a
//! single [`VehicleObservation`] is emitted.

use crate::bbox::BoundingBox;
use crate::detect::{Detector, PostProcessor};
use crate::frame::FrameId;
use crate::histogram::{ColorHistogram, HistogramConfig, HistogramScratch, SignatureAccumulator};
use crate::render::{GroundTruthId, Renderer, Scene};
use crate::sort::{SortConfig, SortTracker, TrackId};
use crate::{direction, Frame};
use coral_geo::{Heading, Point2};
use std::collections::HashMap;

/// The per-vehicle output of the identification element, from which the
/// communication layer builds the JSON detection event.
#[derive(Debug, Clone, PartialEq)]
pub struct VehicleObservation {
    /// Camera-local SORT track id.
    pub track: TrackId,
    /// First frame in which the vehicle was matched.
    pub first_frame: FrameId,
    /// Last frame in which the vehicle was matched.
    pub last_frame: FrameId,
    /// Number of frames the vehicle was matched in.
    pub frames_observed: u32,
    /// Estimated world-space bearing, degrees clockwise from north.
    pub bearing_deg: Option<f64>,
    /// Quantized compass heading of the motion.
    pub heading: Option<Heading>,
    /// Appearance signature (mean adaptive color histogram).
    pub signature: ColorHistogram,
    /// The vehicle's final bounding box.
    pub last_bbox: BoundingBox,
    /// Majority-vote ground-truth identity (evaluation only; `None` for
    /// clutter tracks that never overlapped a real vehicle).
    pub ground_truth: Option<GroundTruthId>,
}

/// Summary of one processed frame.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentFrameResult {
    /// Detections that survived post-processing this frame.
    pub detections_kept: usize,
    /// Tracks matched this frame (id + box), the per-frame annotations the
    /// storage client ships with the raw frame (paper §4.2.2).
    pub active: Vec<crate::sort::TrackState>,
    /// Vehicles that completed (left the FOV) this frame.
    pub completed: Vec<VehicleObservation>,
    /// Ground-truth vehicles the detector fired on this frame (a kept
    /// detection overlapped the actor at IoU ≥ `gt_iou_threshold`),
    /// ascending id. Evaluation only: this is the raw detection evidence
    /// the error-attribution layer uses to separate "never detected" from
    /// "detected but the tracker dropped it".
    pub detected_gt: Vec<GroundTruthId>,
}

impl IdentFrameResult {
    /// Number of tracks matched this frame.
    pub fn active_tracks(&self) -> usize {
        self.active.len()
    }
}

/// Identification-element configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentConfig {
    /// SORT tracker parameters (the paper uses `max_age = 3`).
    pub sort: SortConfig,
    /// Histogram extraction parameters.
    pub histogram: HistogramConfig,
    /// Renderer used to produce the raw frames signatures are read from.
    pub renderer: Renderer,
    /// Camera videoing angle, degrees clockwise from north.
    pub videoing_angle_deg: f64,
    /// Minimum IoU between a track box and a scene actor for ground-truth
    /// attribution (evaluation only).
    pub gt_iou_threshold: f64,
}

impl Default for IdentConfig {
    fn default() -> Self {
        Self {
            sort: SortConfig::default(),
            histogram: HistogramConfig::default(),
            renderer: Renderer::default(),
            videoing_angle_deg: 0.0,
            gt_iou_threshold: 0.3,
        }
    }
}

#[derive(Debug, Clone)]
struct Tracklet {
    centroids: Vec<Point2>,
    signature: SignatureAccumulator,
    first_frame: FrameId,
    last_frame: FrameId,
    last_bbox: BoundingBox,
    gt_votes: HashMap<GroundTruthId, u32>,
}

/// The Vehicle Identification element for one camera.
#[derive(Debug)]
pub struct VehicleIdentification<D> {
    detector: D,
    post: PostProcessor,
    sort: SortTracker,
    config: IdentConfig,
    tracklets: HashMap<TrackId, Tracklet>,
    render_seed: u64,
    /// Recycled histogram-extraction buffer: one allocation serves every
    /// per-frame signature this camera ever extracts.
    scratch: HistogramScratch,
}

impl<D: Detector> VehicleIdentification<D> {
    /// Creates the element with a pluggable detector and the camera's
    /// post-processing filter.
    pub fn new(detector: D, post: PostProcessor, config: IdentConfig, render_seed: u64) -> Self {
        Self {
            detector,
            post,
            sort: SortTracker::new(config.sort),
            config,
            tracklets: HashMap::new(),
            render_seed,
            scratch: HistogramScratch::new(),
        }
    }

    /// Number of vehicles currently being tracked.
    pub fn live_track_count(&self) -> usize {
        self.sort.live_track_count()
    }

    /// Histogram-arena effectiveness counters: `(reuse hits, allocations)`.
    pub fn scratch_stats(&self) -> (u64, u64) {
        self.scratch.stats()
    }

    /// Renders the raw frame for `scene` exactly as
    /// [`VehicleIdentification::process_scene`] would (same seed schedule),
    /// so callers that also persist raw frames see identical pixels.
    pub fn render(&self, frame_id: FrameId, scene: &Scene) -> Frame {
        self.config
            .renderer
            .render(scene, self.render_seed ^ frame_id.0)
    }

    /// Processes one frame: renders the scene, detects, filters, tracks and
    /// returns any completed vehicle observations.
    pub fn process_scene(&mut self, frame_id: FrameId, scene: &Scene) -> IdentFrameResult {
        let frame = self.render(frame_id, scene);
        self.process_rendered(frame_id, scene, &frame)
    }

    /// Same as [`VehicleIdentification::process_scene`] but with a
    /// pre-rendered frame (used when the pipeline stages render upstream).
    pub fn process_rendered(
        &mut self,
        frame_id: FrameId,
        scene: &Scene,
        frame: &Frame,
    ) -> IdentFrameResult {
        let raw = self.detector.detect(scene);
        let kept = self.post.filter(raw);
        let boxes: Vec<BoundingBox> = kept.iter().map(|d| d.bbox).collect();
        let out = self.sort.update(&boxes);

        // Detection-level ground-truth evidence (evaluation only): which
        // actors did the detector actually fire on this frame, before any
        // tracking? Attribution uses this to tell detect-misses from
        // track-losses.
        let mut detected_gt: Vec<GroundTruthId> = kept
            .iter()
            .filter_map(|d| {
                scene
                    .actors
                    .iter()
                    .map(|a| (a.gt, d.bbox.iou(&a.bbox)))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .filter(|&(_, iou)| iou >= self.config.gt_iou_threshold)
                    .map(|(gt, _)| gt)
            })
            .collect();
        detected_gt.sort_unstable();
        detected_gt.dedup();

        for st in &out.active {
            let entry = self.tracklets.entry(st.id).or_insert_with(|| Tracklet {
                centroids: Vec::new(),
                signature: SignatureAccumulator::new(),
                first_frame: frame_id,
                last_frame: frame_id,
                last_bbox: st.bbox,
                gt_votes: HashMap::new(),
            });
            entry.centroids.push(st.bbox.centroid());
            ColorHistogram::extract_into(
                frame,
                &st.bbox,
                &self.config.histogram,
                &mut self.scratch,
            );
            entry.signature.add_bins(
                self.scratch.bins(),
                self.config.histogram.bins_per_channel.max(1),
            );
            entry.last_frame = frame_id;
            entry.last_bbox = st.bbox;
            // Ground-truth attribution by IoU (evaluation only).
            let best = scene
                .actors
                .iter()
                .map(|a| (a.gt, st.bbox.iou(&a.bbox)))
                .max_by(|a, b| a.1.total_cmp(&b.1));
            if let Some((gt, iou)) = best {
                if iou >= self.config.gt_iou_threshold {
                    *entry.gt_votes.entry(gt).or_insert(0) += 1;
                }
            }
        }

        let completed = out
            .expired
            .iter()
            .filter_map(|ex| self.finalize(ex.id, ex.hits))
            .collect();

        IdentFrameResult {
            detections_kept: kept.len(),
            active: out.active,
            completed,
            detected_gt,
        }
    }

    /// Flushes all live tracks (end of stream), emitting their
    /// observations.
    pub fn flush(&mut self) -> Vec<VehicleObservation> {
        let expired = self.sort.flush();
        expired
            .iter()
            .filter_map(|ex| self.finalize(ex.id, ex.hits))
            .collect()
    }

    fn finalize(&mut self, id: TrackId, hits: u32) -> Option<VehicleObservation> {
        let t = self.tracklets.remove(&id)?;
        let bearing = direction::estimate_bearing_deg(&t.centroids, self.config.videoing_angle_deg);
        let ground_truth = t
            .gt_votes
            .iter()
            .max_by_key(|&(gt, votes)| (*votes, std::cmp::Reverse(gt.0)))
            .map(|(gt, _)| *gt);
        Some(VehicleObservation {
            track: id,
            first_frame: t.first_frame,
            last_frame: t.last_frame,
            frames_observed: hits,
            bearing_deg: bearing,
            heading: bearing.map(Heading::from_bearing_deg),
            signature: t.signature.signature()?,
            last_bbox: t.last_bbox,
            ground_truth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{DetectorNoise, SyntheticSsdDetector};
    use crate::render::{ObjectClass, SceneActor, VehicleAppearance};
    use coral_geo::Polygon;

    const W: u32 = 200;
    const H: u32 = 150;

    fn full_coi() -> PostProcessor {
        PostProcessor::new(Polygon::rect(0.0, 0.0, f64::from(W), f64::from(H)))
    }

    fn ident(noise: DetectorNoise) -> VehicleIdentification<SyntheticSsdDetector> {
        VehicleIdentification::new(
            SyntheticSsdDetector::new(noise, 11),
            full_coi(),
            IdentConfig::default(),
            1,
        )
    }

    fn moving_car(gt: u64, t: u32) -> SceneActor {
        SceneActor {
            gt: GroundTruthId(gt),
            class: ObjectClass::Car,
            bbox: BoundingBox::from_center(20.0 + 6.0 * f64::from(t), 75.0, 36.0, 22.0).unwrap(),
            appearance: VehicleAppearance::from_seed(gt),
        }
    }

    /// Drives a car across the FOV over `n` frames then `gap` empty frames.
    fn drive(
        ident: &mut VehicleIdentification<SyntheticSsdDetector>,
        gt: u64,
        n: u32,
    ) -> Vec<VehicleObservation> {
        let mut done = Vec::new();
        for t in 0..n {
            let scene = Scene {
                width: W,
                height: H,
                actors: vec![moving_car(gt, t)],
            };
            done.extend(ident.process_scene(FrameId(u64::from(t)), &scene).completed);
        }
        for t in n..n + 6 {
            let scene = Scene::empty(W, H);
            done.extend(ident.process_scene(FrameId(u64::from(t)), &scene).completed);
        }
        done
    }

    #[test]
    fn one_vehicle_one_event() {
        let mut ident = ident(DetectorNoise::perfect());
        let obs = drive(&mut ident, 4, 15);
        assert_eq!(obs.len(), 1, "exactly one detection event per vehicle");
        let o = &obs[0];
        assert_eq!(o.ground_truth, Some(GroundTruthId(4)));
        assert_eq!(o.frames_observed, 15);
        assert_eq!(o.heading, Some(Heading::East));
        assert_eq!(o.first_frame, FrameId(0));
        assert_eq!(o.last_frame, FrameId(14));
    }

    #[test]
    fn de_duplication_under_detector_misses() {
        // With max_age = 3 the paper tolerates sporadic false negatives:
        // a moderate miss rate must still yield a single event.
        let noise = DetectorNoise {
            miss_rate: 0.15,
            clutter_rate: 0.0,
            ..DetectorNoise::default()
        };
        let mut ident = ident(noise);
        let obs = drive(&mut ident, 4, 20);
        assert_eq!(obs.len(), 1, "max_age should absorb sporadic misses");
    }

    #[test]
    fn signature_matches_same_vehicle_across_cameras() {
        // Two identification elements (two cameras) observing the same
        // ground-truth vehicle: their emitted signatures are close; a
        // different-colored vehicle is farther.
        let mut cam1 = ident(DetectorNoise::perfect());
        let mut cam2 = VehicleIdentification::new(
            SyntheticSsdDetector::new(DetectorNoise::perfect(), 77),
            full_coi(),
            IdentConfig::default(),
            99,
        );
        let red_at_cam1 = drive(&mut cam1, 4, 12).remove(0);
        let red_at_cam2 = drive(&mut cam2, 4, 12).remove(0);
        let mut cam3 = ident(DetectorNoise::perfect());
        let blue_at_cam3 = drive(&mut cam3, 5, 12).remove(0);
        let same = red_at_cam1
            .signature
            .bhattacharyya_distance(&red_at_cam2.signature);
        let diff = red_at_cam1
            .signature
            .bhattacharyya_distance(&blue_at_cam3.signature);
        assert!(same < diff, "same-vehicle dist {same} vs diff {diff}");
        assert!(same < 0.3, "same-vehicle distance too large: {same}");
    }

    #[test]
    fn two_vehicles_two_events() {
        let mut id = ident(DetectorNoise::perfect());
        let mut done = Vec::new();
        for t in 0..14u32 {
            let mut actors = vec![moving_car(1, t)];
            // Second car on another row, moving the opposite way.
            actors.push(SceneActor {
                gt: GroundTruthId(2),
                class: ObjectClass::Car,
                bbox: BoundingBox::from_center(180.0 - 6.0 * f64::from(t), 120.0, 36.0, 22.0)
                    .unwrap(),
                appearance: VehicleAppearance::from_seed(2),
            });
            let scene = Scene {
                width: W,
                height: H,
                actors,
            };
            done.extend(id.process_scene(FrameId(u64::from(t)), &scene).completed);
        }
        for t in 14..20u32 {
            done.extend(
                id.process_scene(FrameId(u64::from(t)), &Scene::empty(W, H))
                    .completed,
            );
        }
        assert_eq!(done.len(), 2);
        let gts: std::collections::HashSet<_> =
            done.iter().filter_map(|o| o.ground_truth).collect();
        assert_eq!(gts.len(), 2);
        let headings: Vec<_> = done.iter().filter_map(|o| o.heading).collect();
        assert!(headings.contains(&Heading::East));
        assert!(headings.contains(&Heading::West));
    }

    #[test]
    fn flush_emits_live_tracks() {
        let mut id = ident(DetectorNoise::perfect());
        for t in 0..5u32 {
            let scene = Scene {
                width: W,
                height: H,
                actors: vec![moving_car(3, t)],
            };
            id.process_scene(FrameId(u64::from(t)), &scene);
        }
        let obs = id.flush();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].ground_truth, Some(GroundTruthId(3)));
        assert_eq!(id.live_track_count(), 0);
    }

    #[test]
    fn empty_stream_emits_nothing() {
        let mut id = ident(DetectorNoise::default());
        for t in 0..10u32 {
            let r = id.process_scene(FrameId(u64::from(t)), &Scene::empty(W, H));
            assert_eq!(r.active_tracks(), 0);
        }
        assert!(id.flush().is_empty());
    }
}
