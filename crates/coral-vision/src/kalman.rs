//! Constant-velocity Kalman filter over bounding boxes — the motion model
//! of the SORT tracker (Bewley et al., ICIP 2016), which the paper feeds
//! with per-frame detections to de-duplicate a vehicle's appearances within
//! one camera (§4.1.2).
//!
//! The state is the 7-vector `[u, v, s, r, u̇, v̇, ṡ]` where `(u, v)` is the
//! box center, `s` its area and `r` its aspect ratio; the measurement is
//! `[u, v, s, r]`. All linear algebra is hand-rolled over fixed-size arrays
//! (the workspace carries no matrix dependency).

use crate::bbox::BoundingBox;

/// A small dense matrix with const dimensions.
type Mat<const R: usize, const C: usize> = [[f64; C]; R];

fn matmul<const R: usize, const K: usize, const C: usize>(
    a: &Mat<R, K>,
    b: &Mat<K, C>,
) -> Mat<R, C> {
    let mut out = [[0.0; C]; R];
    for i in 0..R {
        for k in 0..K {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..C {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

fn transpose<const R: usize, const C: usize>(a: &Mat<R, C>) -> Mat<C, R> {
    let mut out = [[0.0; R]; C];
    for i in 0..R {
        for j in 0..C {
            out[j][i] = a[i][j];
        }
    }
    out
}

fn add<const R: usize, const C: usize>(a: &Mat<R, C>, b: &Mat<R, C>) -> Mat<R, C> {
    let mut out = [[0.0; C]; R];
    for i in 0..R {
        for j in 0..C {
            out[i][j] = a[i][j] + b[i][j];
        }
    }
    out
}

/// Inverts a small matrix by Gauss–Jordan elimination with partial
/// pivoting. Returns `None` for singular matrices.
fn invert<const N: usize>(a: &Mat<N, N>) -> Option<Mat<N, N>> {
    let mut aug = [[0.0; N]; N];
    let mut inv = [[0.0; N]; N];
    for i in 0..N {
        aug[i] = a[i];
        inv[i][i] = 1.0;
    }
    for col in 0..N {
        // Partial pivot.
        let mut pivot = col;
        for row in col + 1..N {
            if aug[row][col].abs() > aug[pivot][col].abs() {
                pivot = row;
            }
        }
        if aug[pivot][col].abs() < 1e-12 {
            return None;
        }
        aug.swap(col, pivot);
        inv.swap(col, pivot);
        let p = aug[col][col];
        for j in 0..N {
            aug[col][j] /= p;
            inv[col][j] /= p;
        }
        for row in 0..N {
            if row != col {
                let f = aug[row][col];
                if f != 0.0 {
                    for j in 0..N {
                        aug[row][j] -= f * aug[col][j];
                        inv[row][j] -= f * inv[col][j];
                    }
                }
            }
        }
    }
    Some(inv)
}

/// Converts a bounding box to the SORT measurement `[u, v, s, r]`.
pub fn bbox_to_z(b: &BoundingBox) -> [f64; 4] {
    let w = b.width();
    let h = b.height();
    [
        b.x0 + w / 2.0,
        b.y0 + h / 2.0,
        w * h,
        if h > 0.0 { w / h } else { 0.0 },
    ]
}

/// Converts a SORT state `[u, v, s, r, ...]` back to a bounding box.
/// Degenerate states (non-positive area) collapse to a point box at the
/// center.
pub fn z_to_bbox(u: f64, v: f64, s: f64, r: f64) -> BoundingBox {
    if s <= 0.0 || r <= 0.0 {
        return BoundingBox::new(u, v, u, v).unwrap_or(BoundingBox {
            x0: 0.0,
            y0: 0.0,
            x1: 0.0,
            y1: 0.0,
        });
    }
    let w = (s * r).sqrt();
    let h = s / w;
    BoundingBox {
        x0: u - w / 2.0,
        y0: v - h / 2.0,
        x1: u + w / 2.0,
        y1: v + h / 2.0,
    }
}

/// The SORT Kalman filter for one tracked box.
#[derive(Debug, Clone)]
pub struct KalmanBoxFilter {
    /// State `[u, v, s, r, u̇, v̇, ṡ]`.
    x: [f64; 7],
    /// State covariance.
    p: Mat<7, 7>,
}

impl KalmanBoxFilter {
    /// Initializes the filter from the first detection of a track, with the
    /// standard SORT priors (high uncertainty on the unobserved velocities).
    pub fn new(initial: &BoundingBox) -> Self {
        let z = bbox_to_z(initial);
        let mut p = [[0.0; 7]; 7];
        for (i, v) in [10.0, 10.0, 10.0, 10.0, 1e4, 1e4, 1e4].iter().enumerate() {
            p[i][i] = *v;
        }
        Self {
            x: [z[0], z[1], z[2], z[3], 0.0, 0.0, 0.0],
            p,
        }
    }

    fn f() -> Mat<7, 7> {
        let mut f = [[0.0; 7]; 7];
        for (i, row) in f.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        f[0][4] = 1.0;
        f[1][5] = 1.0;
        f[2][6] = 1.0;
        f
    }

    fn h() -> Mat<4, 7> {
        let mut h = [[0.0; 7]; 4];
        for (i, row) in h.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        h
    }

    fn q() -> Mat<7, 7> {
        let mut q = [[0.0; 7]; 7];
        for (i, v) in [1.0, 1.0, 1.0, 1.0, 0.01, 0.01, 1e-4].iter().enumerate() {
            q[i][i] = *v;
        }
        q
    }

    fn r() -> Mat<4, 4> {
        let mut r = [[0.0; 4]; 4];
        for (i, v) in [1.0, 1.0, 10.0, 10.0].iter().enumerate() {
            r[i][i] = *v;
        }
        r
    }

    /// Advances the state one frame and returns the predicted box.
    pub fn predict(&mut self) -> BoundingBox {
        // Prevent the area from going negative through its velocity.
        if self.x[2] + self.x[6] <= 0.0 {
            self.x[6] = 0.0;
        }
        let f = Self::f();
        let x_col: Mat<7, 1> = [
            [self.x[0]],
            [self.x[1]],
            [self.x[2]],
            [self.x[3]],
            [self.x[4]],
            [self.x[5]],
            [self.x[6]],
        ];
        let nx = matmul(&f, &x_col);
        for (xi, row) in self.x.iter_mut().zip(&nx) {
            *xi = row[0];
        }
        self.p = add(&matmul(&matmul(&f, &self.p), &transpose(&f)), &Self::q());
        self.current_bbox()
    }

    /// Fuses a new measurement (a matched detection) into the state.
    pub fn update(&mut self, measured: &BoundingBox) {
        let z = bbox_to_z(measured);
        let h = Self::h();
        let hx = [self.x[0], self.x[1], self.x[2], self.x[3]];
        let y: Mat<4, 1> = [
            [z[0] - hx[0]],
            [z[1] - hx[1]],
            [z[2] - hx[2]],
            [z[3] - hx[3]],
        ];
        let ph_t = matmul(&self.p, &transpose(&h));
        let s = add(&matmul(&h, &ph_t), &Self::r());
        let Some(s_inv) = invert(&s) else {
            return; // numerically singular: skip the update
        };
        let k = matmul(&ph_t, &s_inv); // 7x4
        let ky = matmul(&k, &y); // 7x1
        for (xi, row) in self.x.iter_mut().zip(&ky) {
            *xi += row[0];
        }
        // P = (I - K H) P
        let kh = matmul(&k, &h);
        let mut i_kh = [[0.0; 7]; 7];
        for (i, row) in i_kh.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = if i == j { 1.0 } else { 0.0 } - kh[i][j];
            }
        }
        self.p = matmul(&i_kh, &self.p);
    }

    /// The box described by the current state estimate.
    pub fn current_bbox(&self) -> BoundingBox {
        z_to_bbox(self.x[0], self.x[1], self.x[2], self.x[3])
    }

    /// The estimated center velocity `(u̇, v̇)` in pixels per frame.
    pub fn velocity(&self) -> (f64, f64) {
        (self.x[4], self.x[5])
    }

    /// The state covariance `P` (row-major). A well-conditioned filter
    /// keeps `P` symmetric positive-semidefinite through any
    /// predict/update sequence — the invariant the property tests pin.
    pub fn covariance(&self) -> [[f64; 7]; 7] {
        self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(cx: f64, cy: f64) -> BoundingBox {
        BoundingBox::from_center(cx, cy, 40.0, 20.0).unwrap()
    }

    #[test]
    fn invert_identity() {
        let i: Mat<3, 3> = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
        assert_eq!(invert(&i), Some(i));
    }

    #[test]
    fn invert_known_matrix() {
        let a: Mat<2, 2> = [[4.0, 7.0], [2.0, 6.0]];
        let inv = invert(&a).unwrap();
        let prod = matmul(&a, &inv);
        for (i, row) in prod.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-10, "prod[{i}][{j}] = {v}");
            }
        }
    }

    #[test]
    fn invert_singular_is_none() {
        let a: Mat<2, 2> = [[1.0, 2.0], [2.0, 4.0]];
        assert!(invert(&a).is_none());
    }

    #[test]
    fn bbox_z_roundtrip() {
        let bb = BoundingBox::new(10.0, 20.0, 50.0, 40.0).unwrap();
        let z = bbox_to_z(&bb);
        let back = z_to_bbox(z[0], z[1], z[2], z[3]);
        assert!(bb.iou(&back) > 0.999);
    }

    #[test]
    fn stationary_box_stays_put() {
        let mut kf = KalmanBoxFilter::new(&b(100.0, 100.0));
        for _ in 0..10 {
            kf.predict();
            kf.update(&b(100.0, 100.0));
        }
        let est = kf.current_bbox();
        let c = est.centroid();
        assert!((c.x - 100.0).abs() < 1.0 && (c.y - 100.0).abs() < 1.0);
        let (vu, vv) = kf.velocity();
        assert!(vu.abs() < 0.5 && vv.abs() < 0.5);
    }

    #[test]
    fn constant_velocity_is_learned() {
        let mut kf = KalmanBoxFilter::new(&b(0.0, 50.0));
        for t in 1..=20 {
            kf.predict();
            kf.update(&b(5.0 * t as f64, 50.0));
        }
        let (vu, vv) = kf.velocity();
        assert!((vu - 5.0).abs() < 0.5, "vu = {vu}");
        assert!(vv.abs() < 0.5, "vv = {vv}");
        // Prediction without measurement continues the motion.
        let pred = kf.predict();
        let c = pred.centroid();
        assert!((c.x - 105.0).abs() < 2.0, "cx = {}", c.x);
    }

    #[test]
    fn prediction_tracks_through_missed_frames() {
        let mut kf = KalmanBoxFilter::new(&b(0.0, 0.0));
        for t in 1..=10 {
            kf.predict();
            kf.update(&b(4.0 * t as f64, 3.0 * t as f64));
        }
        // Miss three frames.
        let mut last = kf.current_bbox();
        for _ in 0..3 {
            last = kf.predict();
        }
        let c = last.centroid();
        assert!((c.x - 52.0).abs() < 3.0, "cx = {}", c.x);
        assert!((c.y - 39.0).abs() < 3.0, "cy = {}", c.y);
    }

    #[test]
    fn area_velocity_clamped_to_nonnegative_area() {
        let mut kf = KalmanBoxFilter::new(&b(10.0, 10.0));
        // Shrink the box rapidly to drive the area-velocity negative.
        for t in 1..=8 {
            kf.predict();
            let w = (40.0 - 4.5 * t as f64).max(1.0);
            let shrunk = BoundingBox::from_center(10.0, 10.0, w, w / 2.0).unwrap();
            kf.update(&shrunk);
        }
        for _ in 0..20 {
            let p = kf.predict();
            assert!(p.area() >= 0.0);
            assert!(p.x1 >= p.x0 && p.y1 >= p.y0);
        }
    }

    #[test]
    fn degenerate_state_gives_point_box() {
        let bb = z_to_bbox(5.0, 5.0, -1.0, 2.0);
        assert_eq!(bb.area(), 0.0);
    }
}
