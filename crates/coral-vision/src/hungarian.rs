//! Hungarian (Kuhn–Munkres) algorithm for minimum-cost assignment.
//!
//! SORT associates detections to predicted tracks by solving an assignment
//! problem over the negative IoU matrix; this module provides the O(n³)
//! solver used for that association.

/// Solves the rectangular min-cost assignment problem.
///
/// `cost[i][j]` is the cost of assigning row `i` to column `j`. Returns, for
/// each row, the assigned column (or `None` if rows outnumber columns and
/// the row is left unassigned). The total cost of the returned assignment is
/// minimal.
///
/// This is the standard O(n³) potentials ("Jonker–Volgenant style")
/// formulation of the Hungarian algorithm.
///
/// # Panics
///
/// Panics if the cost rows are ragged or contain non-finite values.
///
/// # Examples
///
/// ```
/// use coral_vision::hungarian::assign;
///
/// let cost = vec![
///     vec![4.0, 1.0, 3.0],
///     vec![2.0, 0.0, 5.0],
///     vec![3.0, 2.0, 2.0],
/// ];
/// let a = assign(&cost);
/// assert_eq!(a, vec![Some(1), Some(0), Some(2)]);
/// ```
pub fn assign(cost: &[Vec<f64>]) -> Vec<Option<usize>> {
    let n_rows = cost.len();
    if n_rows == 0 {
        return Vec::new();
    }
    let n_cols = cost[0].len();
    for row in cost {
        assert_eq!(row.len(), n_cols, "ragged cost matrix");
        assert!(row.iter().all(|v| v.is_finite()), "non-finite cost entries");
    }
    if n_cols == 0 {
        return vec![None; n_rows];
    }

    // If rows outnumber columns, transpose, solve, and invert the mapping —
    // the potentials formulation below requires n_rows <= n_cols.
    if n_rows > n_cols {
        let t: Vec<Vec<f64>> = (0..n_cols)
            .map(|j| (0..n_rows).map(|i| cost[i][j]).collect())
            .collect();
        let col_to_row = assign(&t);
        let mut out = vec![None; n_rows];
        for (col, row) in col_to_row.iter().enumerate() {
            if let Some(r) = row {
                out[*r] = Some(col);
            }
        }
        return out;
    }

    // 1-based potentials algorithm (u over rows, v over columns).
    let n = n_rows;
    let m = n_cols;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut way = vec![0usize; m + 1];
    // p[j] = row assigned to column j (0 = none).
    let mut p = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut out = vec![None; n];
    for j in 1..=m {
        if p[j] != 0 {
            out[p[j] - 1] = Some(j - 1);
        }
    }
    out
}

/// Total cost of an assignment produced by [`assign`].
pub fn total_cost(cost: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(i, j)| j.map(|j| cost[i][j]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimal assignment for validation (row-major permutation
    /// search). Transposes tall matrices first so that every row is
    /// assigned and the row subset choice is implicit in the permutation.
    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let m = cost[0].len();
        if n > m {
            let t: Vec<Vec<f64>> = (0..m)
                .map(|j| (0..n).map(|i| cost[i][j]).collect())
                .collect();
            return brute_force(&t);
        }
        let k = n.min(m);
        let mut best = f64::INFINITY;
        let cols: Vec<usize> = (0..m).collect();
        permute(&cols, k, &mut Vec::new(), &mut |perm| {
            let c: f64 = perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            if c < best {
                best = c;
            }
        });
        best
    }

    fn permute(pool: &[usize], k: usize, cur: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
        if cur.len() == k {
            f(cur);
            return;
        }
        for &c in pool {
            if !cur.contains(&c) {
                cur.push(c);
                permute(pool, k, cur, f);
                cur.pop();
            }
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(assign(&[]).is_empty());
        let no_cols: Vec<Vec<f64>> = vec![vec![], vec![]];
        assert_eq!(assign(&no_cols), vec![None, None]);
    }

    #[test]
    fn single_cell() {
        assert_eq!(assign(&[vec![3.0]]), vec![Some(0)]);
    }

    #[test]
    fn square_known_answer() {
        let cost = vec![
            vec![9.0, 2.0, 7.0, 8.0],
            vec![6.0, 4.0, 3.0, 7.0],
            vec![5.0, 8.0, 1.0, 8.0],
            vec![7.0, 6.0, 9.0, 4.0],
        ];
        let a = assign(&cost);
        assert_eq!(a, vec![Some(1), Some(0), Some(2), Some(3)]);
        assert!((total_cost(&cost, &a) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn wide_matrix_leaves_columns_unused() {
        let cost = vec![vec![1.0, 0.5, 9.0], vec![0.2, 7.0, 3.0]];
        let a = assign(&cost);
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn tall_matrix_leaves_rows_unassigned() {
        let cost = vec![vec![5.0], vec![1.0], vec![3.0]];
        let a = assign(&cost);
        assert_eq!(a, vec![None, Some(0), None]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..50 {
            let n = rng.gen_range(1..=5);
            let m = rng.gen_range(1..=5);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let a = assign(&cost);
            // All assigned columns distinct.
            let mut seen = std::collections::HashSet::new();
            for j in a.iter().flatten() {
                assert!(seen.insert(*j), "duplicate column in trial {trial}");
            }
            // Exactly min(n, m) assignments.
            assert_eq!(a.iter().flatten().count(), n.min(m));
            let got = total_cost(&cost, &a);
            let best = brute_force(&cost);
            assert!(
                (got - best).abs() < 1e-9,
                "trial {trial}: got {got}, optimal {best}, cost {cost:?}"
            );
        }
    }

    #[test]
    fn negative_costs_supported() {
        // SORT uses negative IoU as cost.
        let cost = vec![vec![-0.9, -0.1], vec![-0.2, -0.8]];
        let a = assign(&cost);
        assert_eq!(a, vec![Some(0), Some(1)]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_panics() {
        assign(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_panics() {
        assign(&[vec![f64::NAN]]);
    }
}
