//! Vehicle detection: detector trait, the synthetic SSD substitute, and the
//! paper's three-step post-processing filter.
//!
//! The paper runs MobileNetSSD-V2 (COCO) on an EdgeTPU for every frame and
//! then filters the raw boxes by (1) label ∈ {car, bus, truck}, (2)
//! confidence ≥ threshold (0.2 in the prototype), and (3) box centroid
//! inside the camera's Context-of-Interest polygon (§4.1.2). We reproduce
//! the detector's *interface and error characteristics* with
//! [`SyntheticSsdDetector`]: localisation jitter, per-object misses,
//! clutter (spurious boxes), occlusion-driven misses, and calibrated
//! confidence scores.

use crate::bbox::BoundingBox;
use crate::render::{ObjectClass, Scene};
use coral_geo::Polygon;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One raw detector output box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Detected bounding box.
    pub bbox: BoundingBox,
    /// Predicted class label.
    pub class: ObjectClass,
    /// Detector confidence in `[0, 1]`.
    pub confidence: f64,
}

/// A pluggable per-frame object detector.
///
/// The paper stresses that vision components are pluggable modules
/// (§2.1); any implementation of this trait can drive the identification
/// pipeline.
pub trait Detector {
    /// Produces raw detections for one frame described by `scene`.
    fn detect(&mut self, scene: &Scene) -> Vec<Detection>;
}

/// Noise model for [`SyntheticSsdDetector`], calibrated per camera.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorNoise {
    /// Probability of missing a visible object entirely (false negative).
    pub miss_rate: f64,
    /// Probability (twice per frame) of emitting a spurious clutter box.
    pub clutter_rate: f64,
    /// Standard deviation of box corner jitter, in pixels.
    pub jitter_px: f64,
    /// Mean of the confidence distribution for true objects.
    pub confidence_mean: f64,
    /// Spread of the confidence distribution.
    pub confidence_std: f64,
    /// Probability of mislabelling a vehicle as a non-vehicle class.
    pub misclass_rate: f64,
    /// Fraction of an object that must be unoccluded for it to be
    /// detectable; an actor overlapped by later-drawn actors beyond
    /// `1 - occlusion_tolerance` is missed.
    pub occlusion_tolerance: f64,
}

impl Default for DetectorNoise {
    fn default() -> Self {
        Self {
            miss_rate: 0.02,
            clutter_rate: 0.03,
            jitter_px: 1.5,
            confidence_mean: 0.75,
            confidence_std: 0.15,
            misclass_rate: 0.01,
            occlusion_tolerance: 0.45,
        }
    }
}

impl DetectorNoise {
    /// A perfect detector (no noise) — useful for isolating system-level
    /// effects from vision errors, as the paper does when measuring
    /// protocol redundancy (§5.3).
    pub fn perfect() -> Self {
        Self {
            miss_rate: 0.0,
            clutter_rate: 0.0,
            jitter_px: 0.0,
            confidence_mean: 0.95,
            confidence_std: 0.0,
            misclass_rate: 0.0,
            occlusion_tolerance: 0.0,
        }
    }
}

/// Synthetic stand-in for MobileNetSSD-V2 on an EdgeTPU.
///
/// Deterministic for a given seed; constant per-frame latency behaviour is
/// modelled separately in `coral-pipeline` (the paper measures 80–90 ms
/// per inference irrespective of vehicle count).
#[derive(Debug, Clone)]
pub struct SyntheticSsdDetector {
    noise: DetectorNoise,
    rng: StdRng,
}

impl SyntheticSsdDetector {
    /// Creates a detector with the given noise model and seed.
    pub fn new(noise: DetectorNoise, seed: u64) -> Self {
        Self {
            noise,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured noise model.
    pub fn noise(&self) -> &DetectorNoise {
        &self.noise
    }

    fn gaussian(&mut self) -> f64 {
        // Box-Muller transform.
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Detector for SyntheticSsdDetector {
    fn detect(&mut self, scene: &Scene) -> Vec<Detection> {
        let mut out = Vec::new();
        for (i, actor) in scene.actors.iter().enumerate() {
            // Occlusion: fraction of this actor covered by later-drawn actors.
            let mut occluded = 0.0f64;
            for later in &scene.actors[i + 1..] {
                if let Some(inter) = actor.bbox.intersection(&later.bbox) {
                    occluded += inter.area() / actor.bbox.area().max(1.0);
                }
            }
            if occluded.min(1.0) > 1.0 - self.noise.occlusion_tolerance
                && self.noise.occlusion_tolerance > 0.0
            {
                continue; // heavily occluded: false negative
            }
            if self.rng.gen::<f64>() < self.noise.miss_rate {
                continue; // random false negative
            }
            let j = self.noise.jitter_px;
            let bbox = BoundingBox::new(
                actor.bbox.x0 + self.gaussian() * j,
                actor.bbox.y0 + self.gaussian() * j,
                actor.bbox.x1 + self.gaussian() * j,
                actor.bbox.y1 + self.gaussian() * j,
            )
            .unwrap_or(actor.bbox)
            .clamp_to(scene.width, scene.height);
            if bbox.area() <= 1.0 {
                continue;
            }
            let class = if self.rng.gen::<f64>() < self.noise.misclass_rate {
                ObjectClass::Person
            } else {
                actor.class
            };
            let confidence = (self.noise.confidence_mean
                + self.gaussian() * self.noise.confidence_std)
                .clamp(0.01, 0.99);
            out.push(Detection {
                bbox,
                class,
                confidence,
            });
        }
        // Clutter: up to two spurious low-confidence boxes per frame.
        for _ in 0..2 {
            if self.rng.gen::<f64>() < self.noise.clutter_rate {
                let w = self.rng.gen_range(8.0..40.0);
                let h = self.rng.gen_range(8.0..30.0);
                let cx = self.rng.gen_range(0.0..f64::from(scene.width));
                let cy = self.rng.gen_range(0.0..f64::from(scene.height));
                if let Ok(bbox) = BoundingBox::from_center(cx, cy, w, h) {
                    let class = if self.rng.gen::<f64>() < 0.5 {
                        ObjectClass::Car
                    } else {
                        ObjectClass::Person
                    };
                    out.push(Detection {
                        bbox: bbox.clamp_to(scene.width, scene.height),
                        class,
                        confidence: self.rng.gen_range(0.05..0.5),
                    });
                }
            }
        }
        out
    }
}

/// The paper's three-step post-processing filter (§4.1.2).
#[derive(Debug, Clone)]
pub struct PostProcessor {
    /// Minimum confidence kept (the prototype uses 0.2).
    pub min_confidence: f64,
    /// Context of Interest: boxes whose centroid is outside are discarded.
    pub coi: Polygon,
}

impl PostProcessor {
    /// Creates a post-processor with the paper's default confidence
    /// threshold of 0.2 and the given CoI polygon.
    pub fn new(coi: Polygon) -> Self {
        Self {
            min_confidence: 0.2,
            coi,
        }
    }

    /// Applies the 3-step filter: vehicle label, confidence threshold, and
    /// centroid-in-CoI.
    pub fn filter(&self, detections: Vec<Detection>) -> Vec<Detection> {
        detections
            .into_iter()
            .filter(|d| d.class.is_vehicle())
            .filter(|d| d.confidence >= self.min_confidence)
            .filter(|d| self.coi.contains(d.bbox.centroid()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{GroundTruthId, SceneActor, VehicleAppearance};

    fn scene_with(actors: Vec<SceneActor>) -> Scene {
        Scene {
            width: 320,
            height: 256,
            actors,
        }
    }

    fn car(gt: u64, x: f64, y: f64) -> SceneActor {
        SceneActor {
            gt: GroundTruthId(gt),
            class: ObjectClass::Car,
            bbox: BoundingBox::from_center(x, y, 40.0, 24.0).unwrap(),
            appearance: VehicleAppearance::from_seed(gt),
        }
    }

    #[test]
    fn perfect_detector_detects_everything_exactly() {
        let scene = scene_with(vec![car(1, 60.0, 60.0), car(2, 200.0, 120.0)]);
        let mut det = SyntheticSsdDetector::new(DetectorNoise::perfect(), 1);
        let out = det.detect(&scene);
        assert_eq!(out.len(), 2);
        for (d, a) in out.iter().zip(&scene.actors) {
            assert!(d.bbox.iou(&a.bbox) > 0.99);
            assert_eq!(d.class, ObjectClass::Car);
            assert!(d.confidence > 0.9);
        }
    }

    #[test]
    fn miss_rate_one_detects_nothing() {
        let noise = DetectorNoise {
            miss_rate: 1.0,
            clutter_rate: 0.0,
            ..DetectorNoise::default()
        };
        let scene = scene_with(vec![car(1, 60.0, 60.0)]);
        let mut det = SyntheticSsdDetector::new(noise, 1);
        assert!(det.detect(&scene).is_empty());
    }

    #[test]
    fn clutter_rate_one_emits_spurious_boxes() {
        let noise = DetectorNoise {
            miss_rate: 0.0,
            clutter_rate: 1.0,
            ..DetectorNoise::default()
        };
        let scene = scene_with(vec![]);
        let mut det = SyntheticSsdDetector::new(noise, 1);
        let out = det.detect(&scene);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn occluded_actor_is_missed() {
        let front = SceneActor {
            gt: GroundTruthId(9),
            class: ObjectClass::Truck,
            bbox: BoundingBox::from_center(60.0, 60.0, 60.0, 40.0).unwrap(),
            appearance: VehicleAppearance::from_seed(9),
        };
        // Rear car almost fully covered by the truck drawn after it.
        let scene = scene_with(vec![car(1, 60.0, 60.0), front]);
        let mut det = SyntheticSsdDetector::new(
            DetectorNoise {
                occlusion_tolerance: 0.45,
                miss_rate: 0.0,
                clutter_rate: 0.0,
                jitter_px: 0.0,
                misclass_rate: 0.0,
                ..DetectorNoise::default()
            },
            3,
        );
        let out = det.detect(&scene);
        assert_eq!(out.len(), 1, "occluded car should be missed");
        assert_eq!(out[0].class, ObjectClass::Truck);
    }

    #[test]
    fn detection_is_deterministic_per_seed() {
        let scene = scene_with(vec![car(1, 60.0, 60.0), car(2, 150.0, 100.0)]);
        let a = SyntheticSsdDetector::new(DetectorNoise::default(), 5).detect(&scene);
        let b = SyntheticSsdDetector::new(DetectorNoise::default(), 5).detect(&scene);
        assert_eq!(a, b);
    }

    #[test]
    fn postprocess_filters_labels_confidence_and_coi() {
        let coi = Polygon::rect(50.0, 50.0, 270.0, 200.0);
        let pp = PostProcessor::new(coi);
        let inside = BoundingBox::from_center(100.0, 100.0, 20.0, 12.0).unwrap();
        let outside = BoundingBox::from_center(10.0, 10.0, 20.0, 12.0).unwrap();
        let dets = vec![
            Detection {
                bbox: inside,
                class: ObjectClass::Car,
                confidence: 0.8,
            },
            Detection {
                bbox: inside,
                class: ObjectClass::Person, // wrong label
                confidence: 0.9,
            },
            Detection {
                bbox: inside,
                class: ObjectClass::Bus,
                confidence: 0.1, // below threshold
            },
            Detection {
                bbox: outside, // outside CoI
                class: ObjectClass::Truck,
                confidence: 0.8,
            },
        ];
        let kept = pp.filter(dets);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].class, ObjectClass::Car);
    }

    #[test]
    fn postprocess_boundary_confidence_kept() {
        let pp = PostProcessor::new(Polygon::rect(0.0, 0.0, 320.0, 256.0));
        let d = Detection {
            bbox: BoundingBox::from_center(100.0, 100.0, 20.0, 12.0).unwrap(),
            class: ObjectClass::Car,
            confidence: 0.2,
        };
        assert_eq!(pp.filter(vec![d]).len(), 1);
    }
}
