//! Motion-direction estimation from a vehicle's tracklet.
//!
//! "The direction of motion of the vehicle is estimated by drawing a line
//! linking the centroids of bounding boxes in time order and adjusted by the
//! camera's native videoing angle" (paper §4.1.2). The image-space
//! displacement is converted into a compass heading so the communication
//! element can index the MDCS socket group.

use coral_geo::{Heading, Point2};

/// Minimum total centroid displacement (pixels) below which the direction is
/// considered unreliable.
pub const MIN_DISPLACEMENT_PX: f64 = 3.0;

/// Estimates the world-space bearing (degrees clockwise from north) of a
/// vehicle from its centroid tracklet, given the camera's videoing angle.
///
/// Image convention: `+x` right, `+y` down; a camera with videoing angle
/// `a` has image "up" (decreasing `y`) pointing along compass bearing `a`
/// (the direction the camera looks at).
///
/// Returns `None` for tracklets with fewer than two points or with total
/// displacement under [`MIN_DISPLACEMENT_PX`].
pub fn estimate_bearing_deg(centroids: &[Point2], videoing_angle_deg: f64) -> Option<f64> {
    if centroids.len() < 2 {
        return None;
    }
    // Least-squares average displacement: use the vector from the centroid
    // of the first half to the centroid of the second half; robust to
    // per-frame jitter, unlike last-minus-first.
    let mid = centroids.len() / 2;
    let mean = |pts: &[Point2]| {
        let n = pts.len() as f64;
        let (sx, sy) = pts
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        Point2::new(sx / n, sy / n)
    };
    let a = mean(&centroids[..mid.max(1)]);
    let b = mean(&centroids[mid.min(centroids.len() - 1)..]);
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    if (dx * dx + dy * dy).sqrt() < MIN_DISPLACEMENT_PX {
        return None;
    }
    // Image-frame bearing relative to "up": atan2(dx, -dy).
    let image_bearing = dx.atan2(-dy).to_degrees();
    Some((videoing_angle_deg + image_bearing).rem_euclid(360.0))
}

/// Estimates the compass [`Heading`] of a vehicle tracklet; see
/// [`estimate_bearing_deg`].
pub fn estimate_heading(centroids: &[Point2], videoing_angle_deg: f64) -> Option<Heading> {
    estimate_bearing_deg(centroids, videoing_angle_deg).map(Heading::from_bearing_deg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracklet(start: (f64, f64), step: (f64, f64), n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| Point2::new(start.0 + step.0 * i as f64, start.1 + step.1 * i as f64))
            .collect()
    }

    #[test]
    fn too_short_or_static_is_none() {
        assert_eq!(estimate_heading(&[], 0.0), None);
        assert_eq!(estimate_heading(&[Point2::new(1.0, 1.0)], 0.0), None);
        let static_pts = tracklet((50.0, 50.0), (0.0, 0.0), 10);
        assert_eq!(estimate_heading(&static_pts, 0.0), None);
    }

    #[test]
    fn north_facing_camera_cardinals() {
        // Camera looks north (angle 0): image up = north.
        let up = tracklet((50.0, 90.0), (0.0, -5.0), 10);
        assert_eq!(estimate_heading(&up, 0.0), Some(Heading::North));
        let right = tracklet((10.0, 50.0), (5.0, 0.0), 10);
        assert_eq!(estimate_heading(&right, 0.0), Some(Heading::East));
        let down = tracklet((50.0, 10.0), (0.0, 5.0), 10);
        assert_eq!(estimate_heading(&down, 0.0), Some(Heading::South));
        let left = tracklet((90.0, 50.0), (-5.0, 0.0), 10);
        assert_eq!(estimate_heading(&left, 0.0), Some(Heading::West));
    }

    #[test]
    fn videoing_angle_rotates_result() {
        // Camera looks east (angle 90): image up = east, image right = south.
        let right = tracklet((10.0, 50.0), (5.0, 0.0), 10);
        assert_eq!(estimate_heading(&right, 90.0), Some(Heading::South));
        let up = tracklet((50.0, 90.0), (0.0, -5.0), 10);
        assert_eq!(estimate_heading(&up, 90.0), Some(Heading::East));
        // Camera looks southwest (225).
        assert_eq!(estimate_heading(&up, 225.0), Some(Heading::SouthWest));
    }

    #[test]
    fn diagonals() {
        let ne = tracklet((10.0, 90.0), (5.0, -5.0), 10);
        assert_eq!(estimate_heading(&ne, 0.0), Some(Heading::NorthEast));
        let sw = tracklet((90.0, 10.0), (-5.0, 5.0), 10);
        assert_eq!(estimate_heading(&sw, 0.0), Some(Heading::SouthWest));
    }

    #[test]
    fn robust_to_jitter() {
        // Eastward motion with alternating vertical jitter.
        let pts: Vec<Point2> = (0..20)
            .map(|i| {
                Point2::new(
                    10.0 + 4.0 * i as f64,
                    50.0 + if i % 2 == 0 { 2.0 } else { -2.0 },
                )
            })
            .collect();
        assert_eq!(estimate_heading(&pts, 0.0), Some(Heading::East));
    }

    #[test]
    fn bearing_wraps_into_range() {
        let up = tracklet((50.0, 90.0), (0.0, -5.0), 10);
        let b = estimate_bearing_deg(&up, 350.0).unwrap();
        assert!((0.0..360.0).contains(&b));
        assert!((b - 350.0).abs() < 1.0);
    }
}
