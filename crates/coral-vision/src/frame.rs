//! Raw RGB frames.
//!
//! Coral-Pie deliberately keeps frames in raw (unencoded) form when moving
//! them between the compute resources of a camera, because JPEG/NumPy
//! serialisation blows the 100 ms sub-task budget on a Raspberry Pi
//! (paper §4.1.5). This module models exactly that raw representation.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Monotonic frame sequence number within one camera.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct FrameId(pub u64);

impl std::fmt::Display for FrameId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// An 8-bit RGB pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Creates a pixel.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Self { r, g, b }
    }
}

/// A raw RGB frame (row-major, 3 bytes per pixel).
///
/// The pixel buffer is a cheaply cloneable [`Bytes`]; a frame clone shares
/// the buffer, mirroring how the real system hands the same raw buffer
/// across pipeline stages without re-encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: u32,
    height: u32,
    data: Bytes,
}

impl Frame {
    /// Creates a frame filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn filled(width: u32, height: u32, fill: Rgb) -> Self {
        assert!(width > 0 && height > 0, "frame must be non-empty");
        let mut data = Vec::with_capacity((width * height * 3) as usize);
        for _ in 0..width * height {
            data.extend_from_slice(&[fill.r, fill.g, fill.b]);
        }
        Self {
            width,
            height,
            data: Bytes::from(data),
        }
    }

    /// Creates a frame from a raw buffer.
    ///
    /// # Errors
    ///
    /// Returns an error message if the buffer length is not
    /// `width * height * 3`.
    pub fn from_raw(width: u32, height: u32, data: Vec<u8>) -> Result<Self, FrameSizeError> {
        let expected = (width as usize) * (height as usize) * 3;
        if data.len() != expected || width == 0 || height == 0 {
            return Err(FrameSizeError {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data: Bytes::from(data),
        })
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The raw pixel buffer (row-major RGB).
    pub fn raw(&self) -> &[u8] {
        &self.data
    }

    /// Size of the raw buffer in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn pixel(&self, x: u32, y: u32) -> Rgb {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let idx = ((y * self.width + x) * 3) as usize;
        Rgb::new(self.data[idx], self.data[idx + 1], self.data[idx + 2])
    }
}

/// Mutable frame builder used by the renderer.
#[derive(Debug, Clone)]
pub struct FrameBuf {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl FrameBuf {
    /// Creates a buffer filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn filled(width: u32, height: u32, fill: Rgb) -> Self {
        assert!(width > 0 && height > 0, "frame must be non-empty");
        let mut data = Vec::with_capacity((width * height * 3) as usize);
        for _ in 0..width * height {
            data.extend_from_slice(&[fill.r, fill.g, fill.b]);
        }
        Self {
            width,
            height,
            data,
        }
    }

    /// Buffer width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Buffer height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Writes the pixel at `(x, y)`; out-of-bounds writes are ignored so the
    /// renderer can draw partially visible vehicles at frame edges.
    pub fn put(&mut self, x: i64, y: i64, c: Rgb) {
        if x < 0 || y < 0 || x >= i64::from(self.width) || y >= i64::from(self.height) {
            return;
        }
        let idx = ((y as u32 * self.width + x as u32) * 3) as usize;
        self.data[idx] = c.r;
        self.data[idx + 1] = c.g;
        self.data[idx + 2] = c.b;
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn get(&self, x: u32, y: u32) -> Rgb {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let idx = ((y * self.width + x) * 3) as usize;
        Rgb::new(self.data[idx], self.data[idx + 1], self.data[idx + 2])
    }

    /// Freezes the buffer into an immutable [`Frame`].
    pub fn freeze(self) -> Frame {
        Frame {
            width: self.width,
            height: self.height,
            data: Bytes::from(self.data),
        }
    }
}

/// Error for a pixel buffer whose length does not match its dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSizeError {
    expected: usize,
    actual: usize,
}

impl std::fmt::Display for FrameSizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame buffer length {} does not match expected {}",
            self.actual, self.expected
        )
    }
}

impl std::error::Error for FrameSizeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_frame() {
        let f = Frame::filled(4, 3, Rgb::new(10, 20, 30));
        assert_eq!(f.width(), 4);
        assert_eq!(f.height(), 3);
        assert_eq!(f.byte_len(), 36);
        assert_eq!(f.pixel(3, 2), Rgb::new(10, 20, 30));
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(Frame::from_raw(2, 2, vec![0; 12]).is_ok());
        let err = Frame::from_raw(2, 2, vec![0; 11]).unwrap_err();
        assert!(err.to_string().contains("11"));
    }

    #[test]
    fn clone_shares_buffer() {
        let f = Frame::filled(8, 8, Rgb::default());
        let g = f.clone();
        assert_eq!(f.raw().as_ptr(), g.raw().as_ptr());
    }

    #[test]
    fn framebuf_put_get_and_bounds() {
        let mut b = FrameBuf::filled(4, 4, Rgb::default());
        b.put(1, 2, Rgb::new(255, 0, 0));
        assert_eq!(b.get(1, 2), Rgb::new(255, 0, 0));
        // Out-of-bounds writes are silently dropped.
        b.put(-1, 0, Rgb::new(1, 1, 1));
        b.put(4, 0, Rgb::new(1, 1, 1));
        b.put(0, 100, Rgb::new(1, 1, 1));
        let f = b.freeze();
        assert_eq!(f.pixel(1, 2), Rgb::new(255, 0, 0));
        assert_eq!(f.pixel(0, 0), Rgb::default());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pixel_oob_panics() {
        Frame::filled(2, 2, Rgb::default()).pixel(2, 0);
    }
}
