//! Axis-aligned bounding boxes in image coordinates.

use coral_geo::Point2;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned bounding box in pixel coordinates.
///
/// Invariant: `x1 >= x0` and `y1 >= y0` (enforced by [`BoundingBox::new`]).
///
/// # Examples
///
/// ```
/// use coral_vision::BoundingBox;
///
/// let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0)?;
/// let b = BoundingBox::new(5.0, 5.0, 15.0, 15.0)?;
/// assert!((a.iou(&b) - 25.0 / 175.0).abs() < 1e-9);
/// # Ok::<(), coral_vision::InvalidBoxError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Left edge.
    pub x0: f64,
    /// Top edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Bottom edge.
    pub y1: f64,
}

/// Error for degenerate or non-finite box coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidBoxError;

impl fmt::Display for InvalidBoxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid bounding box: inverted or non-finite coordinates")
    }
}

impl std::error::Error for InvalidBoxError {}

impl BoundingBox {
    /// Creates a box from corner coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidBoxError`] if any coordinate is non-finite or the
    /// box is inverted.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Result<Self, InvalidBoxError> {
        if ![x0, y0, x1, y1].iter().all(|v| v.is_finite()) || x1 < x0 || y1 < y0 {
            return Err(InvalidBoxError);
        }
        Ok(Self { x0, y0, x1, y1 })
    }

    /// Creates a box from center, width and height.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidBoxError`] if width or height is negative or any
    /// input is non-finite.
    pub fn from_center(cx: f64, cy: f64, w: f64, h: f64) -> Result<Self, InvalidBoxError> {
        if w < 0.0 || h < 0.0 {
            return Err(InvalidBoxError);
        }
        Self::new(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0)
    }

    /// Box width.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Box height.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Box area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centroid of the box — the point the Context-of-Interest filter tests
    /// (paper §4.1.2).
    pub fn centroid(&self) -> Point2 {
        Point2::new((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Aspect ratio `width / height`, or 0 for zero-height boxes.
    pub fn aspect(&self) -> f64 {
        if self.height() == 0.0 {
            0.0
        } else {
            self.width() / self.height()
        }
    }

    /// Intersection box, if the boxes overlap.
    pub fn intersection(&self, other: &BoundingBox) -> Option<BoundingBox> {
        let x0 = self.x0.max(other.x0);
        let y0 = self.y0.max(other.y0);
        let x1 = self.x1.min(other.x1);
        let y1 = self.y1.min(other.y1);
        if x1 > x0 && y1 > y0 {
            Some(BoundingBox { x0, y0, x1, y1 })
        } else {
            None
        }
    }

    /// Intersection-over-union with `other`, in `[0, 1]`.
    pub fn iou(&self, other: &BoundingBox) -> f64 {
        let inter = self.intersection(other).map_or(0.0, |b| b.area());
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Clamps the box to an image of the given dimensions.
    pub fn clamp_to(&self, width: u32, height: u32) -> BoundingBox {
        let (w, h) = (f64::from(width), f64::from(height));
        BoundingBox {
            x0: self.x0.clamp(0.0, w),
            y0: self.y0.clamp(0.0, h),
            x1: self.x1.clamp(0.0, w),
            y1: self.y1.clamp(0.0, h),
        }
    }

    /// Translates the box by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> BoundingBox {
        BoundingBox {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }
}

impl fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.1},{:.1} - {:.1},{:.1}]",
            self.x0, self.y0, self.x1, self.y1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates() {
        assert!(BoundingBox::new(0.0, 0.0, 1.0, 1.0).is_ok());
        assert_eq!(BoundingBox::new(1.0, 0.0, 0.0, 1.0), Err(InvalidBoxError));
        assert_eq!(
            BoundingBox::new(0.0, f64::NAN, 1.0, 1.0),
            Err(InvalidBoxError)
        );
        // Zero-area boxes are allowed (degenerate but not inverted).
        assert!(BoundingBox::new(1.0, 1.0, 1.0, 1.0).is_ok());
    }

    #[test]
    fn from_center_roundtrip() {
        let b = BoundingBox::from_center(50.0, 40.0, 20.0, 10.0).unwrap();
        assert_eq!(b.centroid(), Point2::new(50.0, 40.0));
        assert!((b.width() - 20.0).abs() < 1e-12);
        assert!((b.height() - 10.0).abs() < 1e-12);
        assert!((b.aspect() - 2.0).abs() < 1e-12);
        assert!(BoundingBox::from_center(0.0, 0.0, -1.0, 1.0).is_err());
    }

    #[test]
    fn iou_cases() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0).unwrap();
        assert!((a.iou(&a) - 1.0).abs() < 1e-12);
        let disjoint = BoundingBox::new(20.0, 20.0, 30.0, 30.0).unwrap();
        assert_eq!(a.iou(&disjoint), 0.0);
        let touching = BoundingBox::new(10.0, 0.0, 20.0, 10.0).unwrap();
        assert_eq!(a.iou(&touching), 0.0);
        let half = BoundingBox::new(0.0, 0.0, 5.0, 10.0).unwrap();
        assert!((a.iou(&half) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn iou_symmetric() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 8.0).unwrap();
        let b = BoundingBox::new(3.0, 2.0, 14.0, 12.0).unwrap();
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-15);
    }

    #[test]
    fn clamp_and_translate() {
        let b = BoundingBox::new(-5.0, -5.0, 15.0, 15.0).unwrap();
        let c = b.clamp_to(10, 10);
        assert_eq!(c, BoundingBox::new(0.0, 0.0, 10.0, 10.0).unwrap());
        let t = b.translated(5.0, 5.0);
        assert_eq!(t, BoundingBox::new(0.0, 0.0, 20.0, 20.0).unwrap());
    }

    #[test]
    fn zero_area_iou_is_zero() {
        let p = BoundingBox::new(1.0, 1.0, 1.0, 1.0).unwrap();
        assert_eq!(p.iou(&p), 0.0);
    }
}
