//! Property tests for the appearance and tracking kernels the parallel
//! stepper fans across threads: Bhattacharyya distance symmetry/range and
//! Kalman covariance positive-semidefiniteness over random tracks.

use coral_vision::{
    bhattacharyya_sum_flat, bhattacharyya_sum_naive, BoundingBox, ColorHistogram, Frame,
    HistogramConfig, HistogramScratch, KalmanBoxFilter,
};
use proptest::prelude::*;

fn arb_histogram() -> impl Strategy<Value = ColorHistogram> {
    proptest::collection::vec(0u8..=255, 8 * 8 * 3).prop_map(|data| {
        let frame = Frame::from_raw(8, 8, data).unwrap();
        let bbox = BoundingBox::new(0.0, 0.0, 8.0, 8.0).unwrap();
        ColorHistogram::extract(&frame, &bbox, &HistogramConfig::default())
    })
}

/// One simulated observation step: box center/size plus whether the
/// detector saw the vehicle (misses leave the filter coasting).
type TrackStep = (f64, f64, f64, f64, bool);

fn arb_track() -> impl Strategy<Value = Vec<TrackStep>> {
    proptest::collection::vec(
        (
            30.0f64..610.0,
            30.0f64..450.0,
            8.0f64..120.0,
            6.0f64..90.0,
            any::<bool>(),
        ),
        1..200,
    )
}

/// Checks that `p` is symmetric, finite, and positive-semidefinite up to
/// numerical tolerance — by Cholesky-factoring `P + εI` with
/// `ε = 1e-9·(1 + tr P)`. Success proves every eigenvalue of `P` is
/// ≥ −ε, i.e. any negativity is pure floating-point round-off.
fn check_covariance_psd(p: &[[f64; 7]; 7]) -> Result<(), String> {
    let mut a = [[0.0f64; 7]; 7];
    for i in 0..7 {
        for j in 0..7 {
            if !p[i][j].is_finite() {
                return Err(format!("non-finite P[{i}][{j}] = {}", p[i][j]));
            }
            let scale = 1.0 + p[i][i].abs().max(p[j][j].abs());
            if (p[i][j] - p[j][i]).abs() > 1e-6 * scale {
                return Err(format!(
                    "asymmetry at ({i},{j}): {} vs {}",
                    p[i][j], p[j][i]
                ));
            }
            a[i][j] = 0.5 * (p[i][j] + p[j][i]);
        }
    }
    let trace: f64 = (0..7).map(|i| a[i][i]).sum();
    if trace < 0.0 {
        return Err(format!("negative trace {trace}"));
    }
    let eps = 1e-9 * (1.0 + trace);
    let mut l = [[0.0f64; 7]; 7];
    for i in 0..7 {
        for j in 0..=i {
            let mut s = a[i][j] + if i == j { eps } else { 0.0 };
            s -= l[i]
                .iter()
                .zip(&l[j])
                .take(j)
                .map(|(x, y)| x * y)
                .sum::<f64>();
            if i == j {
                if s <= 0.0 {
                    return Err(format!("not PSD: Cholesky pivot {s} at row {i}"));
                }
                l[i][i] = s.sqrt();
            } else {
                l[i][j] = s / l[j][j];
            }
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn bhattacharyya_symmetry_and_range(a in arb_histogram(), b in arb_histogram()) {
        let ab = a.bhattacharyya_distance(&b);
        let ba = b.bhattacharyya_distance(&a);
        prop_assert!((0.0..=1.0).contains(&ab), "distance {} out of [0,1]", ab);
        prop_assert!((ab - ba).abs() < 1e-12, "asymmetric: {} vs {}", ab, ba);
        prop_assert!(a.bhattacharyya_distance(&a) < 1e-6, "self-distance must vanish");
        let coef = a.bhattacharyya_coefficient(&b);
        prop_assert!((0.0..=1.0).contains(&coef), "coefficient {} out of [0,1]", coef);
        // Distance and coefficient are the same comparison on two scales.
        prop_assert!(
            (ab - (1.0 - coef).max(0.0).sqrt()).abs() < 1e-12,
            "d={} inconsistent with BC={}", ab, coef
        );
    }

    #[test]
    fn kalman_covariance_stays_psd(track in arb_track()) {
        let (cx0, cy0, w0, h0, _) = track[0];
        let mut filter =
            KalmanBoxFilter::new(&BoundingBox::from_center(cx0, cy0, w0, h0).unwrap());
        prop_assert!(check_covariance_psd(&filter.covariance()).is_ok());
        for (step, &(cx, cy, w, h, observed)) in track.iter().enumerate() {
            filter.predict();
            if observed {
                filter.update(&BoundingBox::from_center(cx, cy, w, h).unwrap());
            }
            if let Err(why) = check_covariance_psd(&filter.covariance()) {
                prop_assert!(false, "step {}: {}", step, why);
            }
            // The state estimate itself must stay finite alongside P.
            let bbox = filter.current_bbox();
            prop_assert!(bbox.area().is_finite());
        }
    }

    /// The unrolled 8-lane Bhattacharyya kernel agrees with the scalar
    /// reference fold on random densities of any length — including
    /// lengths that are not a multiple of the lane width, so the
    /// remainder loop is exercised. Both accumulate in index order, so
    /// the agreement is far tighter than the 1e-6 contract.
    #[test]
    fn flat_bhattacharyya_matches_naive(
        p in proptest::collection::vec(0.0f64..1.0, 1..200),
        q in proptest::collection::vec(0.0f64..1.0, 1..200),
    ) {
        let n = p.len().min(q.len());
        let flat = bhattacharyya_sum_flat(&p, &q);
        let naive = bhattacharyya_sum_naive(&p[..n], &q[..n]);
        prop_assert!(
            (flat - naive).abs() <= 1e-6 * (1.0 + naive.abs()),
            "flat={flat} naive={naive}"
        );
    }

    /// Extraction through a reused scratch arena is bit-identical to a
    /// fresh allocation, across consecutive frames and across a
    /// bins-per-channel change mid-sequence (which forces the arena to
    /// resize and re-zero).
    #[test]
    fn scratch_extraction_matches_fresh(
        frames in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 8 * 8 * 3),
            1..6,
        ),
        flip in any::<bool>(),
    ) {
        let bbox = BoundingBox::new(0.0, 0.0, 8.0, 8.0).unwrap();
        let mut scratch = HistogramScratch::new();
        for (i, data) in frames.iter().enumerate() {
            let frame = Frame::from_raw(8, 8, data.clone()).unwrap();
            // Alternate bin counts when `flip` is set: every switch
            // invalidates the arena length and must still reproduce the
            // freshly allocated result.
            let bins = if flip && i % 2 == 1 { 4 } else { 8 };
            let config = HistogramConfig { bins_per_channel: bins, ..HistogramConfig::default() };
            let fresh = ColorHistogram::extract(&frame, &bbox, &config);
            ColorHistogram::extract_into(&frame, &bbox, &config, &mut scratch);
            prop_assert_eq!(
                fresh.bins(), scratch.bins(),
                "frame {} diverged through the arena", i
            );
        }
        let (reuses, allocs) = scratch.stats();
        prop_assert_eq!(reuses + allocs, frames.len() as u64);
        if !flip {
            prop_assert!(allocs <= 1, "constant shape must allocate once (allocs={allocs})");
        }
    }
}
