//! Deterministic invariant tests for the hot vision kernels: Hungarian
//! optimality, Bhattacharyya symmetry/range, and Kalman covariance
//! positive-semidefiniteness over long tracks. These pin fixed seeds so
//! they run identically everywhere; the `proptest_*` suites explore the
//! same invariants over randomized inputs.

use coral_vision::hungarian::{assign, total_cost};
use coral_vision::{BoundingBox, ColorHistogram, Frame, HistogramConfig, KalmanBoxFilter};

/// Minimal deterministic PRNG (PCG-style LCG) so these tests need no
/// external randomness source.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}

/// Exhaustive optimal assignment cost (reference implementation).
fn brute_force(cost: &[Vec<f64>]) -> f64 {
    let n = cost.len();
    let m = cost[0].len();
    if n > m {
        let t: Vec<Vec<f64>> = (0..m)
            .map(|j| (0..n).map(|i| cost[i][j]).collect())
            .collect();
        return brute_force(&t);
    }
    let cols: Vec<usize> = (0..m).collect();
    let mut best = f64::INFINITY;
    permute(&cols, n, &mut Vec::new(), &mut |perm| {
        let c: f64 = perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        if c < best {
            best = c;
        }
    });
    best
}

fn permute(pool: &[usize], k: usize, cur: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
    if cur.len() == k {
        f(cur);
        return;
    }
    for &c in pool {
        if !cur.contains(&c) {
            cur.push(c);
            permute(pool, k, cur, f);
            cur.pop();
        }
    }
}

/// Checks that `p` is symmetric, finite, and positive-semidefinite up to
/// numerical tolerance — by Cholesky-factoring `P + εI` with
/// `ε = 1e-9·(1 + tr P)`. Success proves every eigenvalue of `P` is
/// ≥ −ε, i.e. any negativity is pure floating-point round-off.
fn check_covariance_psd(p: &[[f64; 7]; 7]) -> Result<(), String> {
    let mut a = [[0.0f64; 7]; 7];
    for i in 0..7 {
        for j in 0..7 {
            if !p[i][j].is_finite() {
                return Err(format!("non-finite P[{i}][{j}] = {}", p[i][j]));
            }
            let scale = 1.0 + p[i][i].abs().max(p[j][j].abs());
            if (p[i][j] - p[j][i]).abs() > 1e-6 * scale {
                return Err(format!(
                    "asymmetry at ({i},{j}): {} vs {}",
                    p[i][j], p[j][i]
                ));
            }
            a[i][j] = 0.5 * (p[i][j] + p[j][i]);
        }
    }
    let trace: f64 = (0..7).map(|i| a[i][i]).sum();
    if trace < 0.0 {
        return Err(format!("negative trace {trace}"));
    }
    let eps = 1e-9 * (1.0 + trace);
    let mut l = [[0.0f64; 7]; 7];
    for i in 0..7 {
        for j in 0..=i {
            let mut s = a[i][j] + if i == j { eps } else { 0.0 };
            s -= l[i]
                .iter()
                .zip(&l[j])
                .take(j)
                .map(|(x, y)| x * y)
                .sum::<f64>();
            if i == j {
                if s <= 0.0 {
                    return Err(format!("not PSD: Cholesky pivot {s} at row {i}"));
                }
                l[i][i] = s.sqrt();
            } else {
                l[i][j] = s / l[j][j];
            }
        }
    }
    Ok(())
}

#[test]
fn hungarian_matches_brute_force_on_seeded_matrices() {
    let mut rng = Lcg(0x5eed_cafe);
    for round in 0..200 {
        let n = rng.usize_in(1, 6);
        let m = rng.usize_in(1, 6);
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..m).map(|_| rng.range(0.0, 100.0)).collect())
            .collect();
        let a = assign(&cost);
        assert_eq!(a.len(), n, "round {round}: one slot per row");
        let assigned: Vec<usize> = a.iter().flatten().copied().collect();
        let mut dedup = assigned.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            assigned.len(),
            "round {round}: columns must be distinct"
        );
        assert_eq!(
            assigned.len(),
            n.min(m),
            "round {round}: matching must be maximum"
        );
        let got = total_cost(&cost, &a);
        let best = brute_force(&cost);
        assert!(
            (got - best).abs() < 1e-9,
            "round {round}: {n}x{m} solver cost {got} vs optimal {best}"
        );
    }
}

fn seeded_histogram(rng: &mut Lcg) -> ColorHistogram {
    let data: Vec<u8> = (0..8 * 8 * 3)
        .map(|_| (rng.next_u64() & 0xff) as u8)
        .collect();
    let frame = Frame::from_raw(8, 8, data).unwrap();
    let bbox = BoundingBox::new(0.0, 0.0, 8.0, 8.0).unwrap();
    ColorHistogram::extract(&frame, &bbox, &HistogramConfig::default())
}

#[test]
fn bhattacharyya_symmetry_and_range_on_seeded_histograms() {
    let mut rng = Lcg(0xb477_ac44);
    for round in 0..100 {
        let a = seeded_histogram(&mut rng);
        let b = seeded_histogram(&mut rng);
        let ab = a.bhattacharyya_distance(&b);
        let ba = b.bhattacharyya_distance(&a);
        assert!(
            (0.0..=1.0).contains(&ab),
            "round {round}: distance {ab} out of [0,1]"
        );
        assert!(
            (ab - ba).abs() < 1e-12,
            "round {round}: asymmetric {ab} vs {ba}"
        );
        assert!(
            a.bhattacharyya_distance(&a) < 1e-6,
            "round {round}: self-distance must vanish"
        );
        let coef = a.bhattacharyya_coefficient(&b);
        assert!(
            (0.0..=1.0).contains(&coef),
            "round {round}: coefficient {coef} out of [0,1]"
        );
        // Distance and coefficient are the same comparison on two scales.
        assert!(
            (ab - (1.0 - coef).max(0.0).sqrt()).abs() < 1e-12,
            "round {round}: d={ab} inconsistent with BC={coef}"
        );
    }
}

#[test]
fn bhattacharyya_uniform_extremes() {
    let u = ColorHistogram::uniform(8);
    assert!(u.bhattacharyya_distance(&u) < 1e-12);
    assert!((u.bhattacharyya_coefficient(&u) - 1.0).abs() < 1e-9);
}

#[test]
fn kalman_covariance_stays_psd_over_long_seeded_track() {
    let mut rng = Lcg(0x7ac_e1e7);
    let mut filter =
        KalmanBoxFilter::new(&BoundingBox::from_center(320.0, 240.0, 60.0, 40.0).unwrap());
    let (mut cx, mut cy) = (320.0f64, 240.0f64);
    for step in 0..500 {
        filter.predict();
        // Mostly-observed random walk with occasional long occlusions, the
        // regime where covariance inflation is largest.
        let occluded = rng.unit() < 0.2;
        if !occluded {
            cx = (cx + rng.range(-8.0, 8.0)).clamp(30.0, 610.0);
            cy = (cy + rng.range(-6.0, 6.0)).clamp(30.0, 450.0);
            let w = rng.range(20.0, 90.0);
            let h = rng.range(14.0, 70.0);
            filter.update(&BoundingBox::from_center(cx, cy, w, h).unwrap());
        }
        if let Err(why) = check_covariance_psd(&filter.covariance()) {
            panic!("step {step}: {why}");
        }
    }
}
