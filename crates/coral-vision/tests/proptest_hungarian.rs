//! Property test: the JV-style Hungarian solver is exactly optimal.
//!
//! On every random rectangular cost matrix up to 6×6, the solver's total
//! assignment cost must equal the exhaustively enumerated optimum, the
//! matching must be maximum (`min(n, m)` pairs), and no column may be
//! assigned twice. SORT's per-frame data association rides on this
//! solver, so a sub-optimal corner case would silently degrade tracking.

use coral_vision::hungarian::{assign, total_cost};
use proptest::prelude::*;

/// Exhaustive optimal assignment cost (reference implementation).
fn brute_force(cost: &[Vec<f64>]) -> f64 {
    let n = cost.len();
    let m = cost[0].len();
    if n > m {
        let t: Vec<Vec<f64>> = (0..m)
            .map(|j| (0..n).map(|i| cost[i][j]).collect())
            .collect();
        return brute_force(&t);
    }
    let cols: Vec<usize> = (0..m).collect();
    let mut best = f64::INFINITY;
    permute(&cols, n, &mut Vec::new(), &mut |perm| {
        let c: f64 = perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        if c < best {
            best = c;
        }
    });
    best
}

fn permute(pool: &[usize], k: usize, cur: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
    if cur.len() == k {
        f(cur);
        return;
    }
    for &c in pool {
        if !cur.contains(&c) {
            cur.push(c);
            permute(pool, k, cur, f);
            cur.pop();
        }
    }
}

fn arb_cost_matrix() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..=6, 1usize..=6).prop_flat_map(|(n, m)| {
        proptest::collection::vec(proptest::collection::vec(0.0f64..100.0, m), n)
    })
}

proptest! {
    #[test]
    fn assignment_is_optimal_and_well_formed(cost in arb_cost_matrix()) {
        let n = cost.len();
        let m = cost[0].len();
        let a = assign(&cost);
        prop_assert_eq!(a.len(), n, "one assignment slot per row");
        let assigned: Vec<usize> = a.iter().flatten().copied().collect();
        for &j in &assigned {
            prop_assert!(j < m, "column {} out of range", j);
        }
        let mut dedup = assigned.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), assigned.len(), "columns must be distinct");
        prop_assert_eq!(assigned.len(), n.min(m), "matching must be maximum");
        let got = total_cost(&cost, &a);
        let best = brute_force(&cost);
        prop_assert!(
            (got - best).abs() < 1e-9,
            "{}x{}: solver cost {} vs brute-force optimum {}",
            n, m, got, best
        );
    }

    #[test]
    fn row_permutation_preserves_optimal_cost(cost in arb_cost_matrix()) {
        // The optimum is a set property: reversing the row order must not
        // change the achievable total cost.
        let reversed: Vec<Vec<f64>> = cost.iter().rev().cloned().collect();
        let c0 = total_cost(&cost, &assign(&cost));
        let c1 = total_cost(&reversed, &assign(&reversed));
        prop_assert!((c0 - c1).abs() < 1e-9, "{} vs {}", c0, c1);
    }
}
