//! Property-based invariants for the vision substrate.

use coral_vision::{
    hungarian, kalman, BoundingBox, ColorHistogram, Frame, HistogramConfig, SortConfig, SortTracker,
};
use proptest::prelude::*;

fn arb_bbox() -> impl Strategy<Value = BoundingBox> {
    (0.0f64..500.0, 0.0f64..400.0, 1.0f64..80.0, 1.0f64..60.0)
        .prop_map(|(x, y, w, h)| BoundingBox::new(x, y, x + w, y + h).unwrap())
}

fn arb_histogram() -> impl Strategy<Value = ColorHistogram> {
    // Random pixel content in a small frame.
    proptest::collection::vec(0u8..=255, 8 * 8 * 3).prop_map(|data| {
        let frame = Frame::from_raw(8, 8, data).unwrap();
        let bbox = BoundingBox::new(0.0, 0.0, 8.0, 8.0).unwrap();
        ColorHistogram::extract(&frame, &bbox, &HistogramConfig::default())
    })
}

proptest! {
    #[test]
    fn iou_bounds_and_symmetry(a in arb_bbox(), b in arb_bbox()) {
        let ab = a.iou(&b);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - b.iou(&a)).abs() < 1e-12);
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_area_never_exceeds_either(a in arb_bbox(), b in arb_bbox()) {
        if let Some(inter) = a.intersection(&b) {
            prop_assert!(inter.area() <= a.area() + 1e-9);
            prop_assert!(inter.area() <= b.area() + 1e-9);
        }
    }

    #[test]
    fn bbox_z_roundtrip(b in arb_bbox()) {
        let z = kalman::bbox_to_z(&b);
        let back = kalman::z_to_bbox(z[0], z[1], z[2], z[3]);
        prop_assert!(b.iou(&back) > 0.999, "roundtrip degraded: {b} -> {back}");
    }

    #[test]
    fn histogram_is_a_distribution(h in arb_histogram()) {
        let sum: f64 = h.bins().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(h.bins().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn bhattacharyya_is_a_bounded_semimetric(a in arb_histogram(), b in arb_histogram()) {
        let d = a.bhattacharyya_distance(&b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - b.bhattacharyya_distance(&a)).abs() < 1e-12);
        prop_assert!(a.bhattacharyya_distance(&a) < 1e-6);
    }

    #[test]
    fn hungarian_assignment_is_valid_and_optimal(
        rows in 1usize..5, cols in 1usize..5, seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let cost: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.gen_range(-5.0..5.0)).collect())
            .collect();
        let assignment = hungarian::assign(&cost);
        // Validity: distinct columns, exactly min(rows, cols) assigned.
        let assigned: Vec<usize> = assignment.iter().flatten().copied().collect();
        let mut dedup = assigned.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), assigned.len());
        prop_assert_eq!(assigned.len(), rows.min(cols));
        // Optimality vs exhaustive search.
        let got = hungarian::total_cost(&cost, &assignment);
        let best = brute_force(&cost);
        prop_assert!((got - best).abs() < 1e-9, "got {got} best {best}");
    }

    #[test]
    fn sort_never_reports_more_tracks_than_detections(
        n_frames in 1usize..20, dets_per_frame in 0usize..6, seed in 0u64..200,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sort = SortTracker::new(SortConfig::default());
        for _ in 0..n_frames {
            let dets: Vec<BoundingBox> = (0..dets_per_frame)
                .map(|_| {
                    BoundingBox::from_center(
                        rng.gen_range(20.0..300.0),
                        rng.gen_range(20.0..200.0),
                        30.0,
                        20.0,
                    )
                    .unwrap()
                })
                .collect();
            let out = sort.update(&dets);
            prop_assert!(out.active.len() <= dets.len());
            // Active track ids are unique within a frame.
            let mut ids: Vec<_> = out.active.iter().map(|t| t.id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), out.active.len());
        }
    }

    #[test]
    fn sort_expiry_conserves_tracks(seed in 0u64..200) {
        // Every reported track eventually expires exactly once (via miss
        // aging or flush).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sort = SortTracker::new(SortConfig::default());
        let mut reported = std::collections::HashSet::new();
        let mut expired = Vec::new();
        for t in 0..30 {
            let dets: Vec<BoundingBox> = if t % 7 < 4 {
                (0..2)
                    .map(|k| {
                        BoundingBox::from_center(
                            50.0 + 100.0 * k as f64 + rng.gen_range(-2.0..2.0),
                            60.0,
                            30.0,
                            20.0,
                        )
                        .unwrap()
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let out = sort.update(&dets);
            for st in &out.active {
                reported.insert(st.id);
            }
            expired.extend(out.expired.iter().map(|e| e.id));
        }
        expired.extend(sort.flush().iter().map(|e| e.id));
        let expired_set: std::collections::HashSet<_> = expired.iter().copied().collect();
        prop_assert_eq!(expired_set.len(), expired.len(), "double expiry");
        prop_assert_eq!(expired_set, reported, "every reported track expires once");
    }
}

fn brute_force(cost: &[Vec<f64>]) -> f64 {
    let n = cost.len();
    let m = cost[0].len();
    if n > m {
        let t: Vec<Vec<f64>> = (0..m)
            .map(|j| (0..n).map(|i| cost[i][j]).collect())
            .collect();
        return brute_force(&t);
    }
    let cols: Vec<usize> = (0..m).collect();
    let mut best = f64::INFINITY;
    permute(&cols, n, &mut Vec::new(), &mut |perm| {
        let c: f64 = perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        if c < best {
            best = c;
        }
    });
    best
}

fn permute(pool: &[usize], k: usize, cur: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
    if cur.len() == k {
        f(cur);
        return;
    }
    for &c in pool {
        if !cur.contains(&c) {
            cur.push(c);
            permute(pool, k, cur, f);
            cur.pop();
        }
    }
}
