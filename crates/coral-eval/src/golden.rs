//! Golden-score regression gates.
//!
//! Accuracy is pinned, not just measured: each blessed scenario has a
//! golden JSON file under `crates/coral-eval/golden/` recording the
//! scores it achieved at bless time. [`check_golden`] re-renders the
//! current run and fails with a field-by-field diff when any gated score
//! drifts past tolerance — so a change that silently degrades tracking
//! accuracy fails the test suite instead of shipping.
//!
//! **Gated fields and tolerances** (see also `DESIGN.md` §6): the
//! ground-truth visit count must match exactly (same scenario + seed ⇒
//! identical simulated traffic), while `mota`, `idf1` and each
//! per-camera `f2` may drift by at most [`GoldenTolerance::score`]
//! (default ±0.02) to absorb benign refactors of the vision/infra layers
//! without letting real regressions through.
//!
//! Bless or re-bless by running the suite with `CORAL_EVAL_BLESS=1`.

use crate::replay::EvalReport;
use coral_obs::json::{self, JsonValue};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Permitted drift for gated scores.
#[derive(Debug, Clone, Copy)]
pub struct GoldenTolerance {
    /// Absolute tolerance on `mota`, `idf1` and per-camera `f2`.
    pub score: f64,
}

impl Default for GoldenTolerance {
    fn default() -> Self {
        Self { score: 0.02 }
    }
}

/// Renders the golden-file JSON for a report: flat, sorted keys, stable
/// float formatting — byte-identical across runs of the same build.
pub fn render_report(report: &EvalReport) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"scenario\": {},", json::quote(&report.scenario));
    let _ = writeln!(s, "  \"seed\": {},", report.seed);
    let _ = writeln!(s, "  \"gt_intervals\": {},", report.score.gt_intervals);
    let _ = writeln!(s, "  \"hyp_vertices\": {},", report.score.hyp_vertices);
    let _ = writeln!(s, "  \"matches\": {},", report.score.matches);
    let _ = writeln!(s, "  \"misses\": {},", report.score.misses);
    let _ = writeln!(
        s,
        "  \"false_positives\": {},",
        report.score.false_positives
    );
    let _ = writeln!(s, "  \"id_switches\": {},", report.score.id_switches);
    let _ = writeln!(s, "  \"fragmentations\": {},", report.score.fragmentations);
    let _ = writeln!(s, "  \"idtp\": {},", report.score.idtp);
    let _ = writeln!(s, "  \"mota\": {},", json::number(report.mota()));
    let _ = writeln!(s, "  \"idf1\": {},", json::number(report.idf1()));
    let _ = writeln!(
        s,
        "  \"attribution\": {{\"detect_miss\": {}, \"track_loss\": {}, \"handoff_miss\": {}, \"reid_mismatch\": {}, \"unattributed\": {}}},",
        report.attribution.detect_miss,
        report.attribution.track_loss,
        report.attribution.handoff_miss,
        report.attribution.reid_mismatch,
        report.attribution.unattributed,
    );
    s.push_str("  \"per_camera_f2\": {");
    for (i, (cam, f2)) in report.per_camera_f2.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{cam}\": {}", json::number(*f2));
    }
    s.push_str("}\n}\n");
    s
}

/// Where the golden file for `name` lives (inside the crate source tree,
/// so blessed scores are checked in and reviewed like code).
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(format!("{name}.json"))
}

fn get_f64(doc: &JsonValue, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("golden file is missing numeric field {key:?}"))
}

/// Compares `report` against already-parsed golden JSON. Returns every
/// violated gate (empty = pass).
pub fn diff_against_golden(
    report: &EvalReport,
    golden: &JsonValue,
    tol: GoldenTolerance,
) -> Vec<String> {
    let mut errors = Vec::new();
    let gate_exact = |key: &str, actual: f64, errors: &mut Vec<String>| match get_f64(golden, key) {
        Ok(expected) if (expected - actual).abs() > f64::EPSILON => errors.push(format!(
            "{key}: golden {expected}, got {actual} (exact gate)"
        )),
        Ok(_) => {}
        Err(e) => errors.push(e),
    };
    gate_exact(
        "gt_intervals",
        report.score.gt_intervals as f64,
        &mut errors,
    );
    gate_exact("seed", report.seed as f64, &mut errors);

    let gate_tol = |key: &str, actual: f64, errors: &mut Vec<String>| match get_f64(golden, key) {
        Ok(expected) if (expected - actual).abs() > tol.score => errors.push(format!(
            "{key}: golden {expected}, got {actual} (tolerance ±{})",
            tol.score
        )),
        Ok(_) => {}
        Err(e) => errors.push(e),
    };
    gate_tol("mota", report.mota(), &mut errors);
    gate_tol("idf1", report.idf1(), &mut errors);

    match golden.get("per_camera_f2").and_then(JsonValue::as_object) {
        Some(f2s) => {
            if f2s.len() != report.per_camera_f2.len() {
                errors.push(format!(
                    "per_camera_f2: golden has {} cameras, got {}",
                    f2s.len(),
                    report.per_camera_f2.len()
                ));
            }
            for (cam, f2) in &report.per_camera_f2 {
                match f2s.get(&cam.to_string()).and_then(JsonValue::as_f64) {
                    Some(expected) if (expected - f2).abs() > tol.score => errors.push(format!(
                        "per_camera_f2[{cam}]: golden {expected}, got {f2} (tolerance ±{})",
                        tol.score
                    )),
                    Some(_) => {}
                    None => errors.push(format!("golden file has no f2 for camera {cam}")),
                }
            }
        }
        None => errors.push("golden file is missing per_camera_f2".to_string()),
    }
    errors
}

/// The drift gate: compares `report` against its checked-in golden file.
///
/// With `CORAL_EVAL_BLESS=1` in the environment, (re)writes the golden
/// file instead and passes.
///
/// # Errors
///
/// Returns the violated gates, or instructions when the golden file is
/// missing/unreadable.
pub fn check_golden(report: &EvalReport, tol: GoldenTolerance) -> Result<(), Vec<String>> {
    let path = golden_path(&report.scenario);
    if std::env::var_os("CORAL_EVAL_BLESS").is_some_and(|v| v == "1") {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        return std::fs::write(&path, render_report(report))
            .map_err(|e| vec![format!("cannot bless {}: {e}", path.display())]);
    }
    let text = std::fs::read_to_string(&path).map_err(|e| {
        vec![format!(
            "no golden file at {} ({e}); run with CORAL_EVAL_BLESS=1 to create it",
            path.display()
        )]
    })?;
    let golden = json::parse(&text)
        .map_err(|e| vec![format!("golden file {} is invalid: {e:?}", path.display())])?;
    let errors = diff_against_golden(report, &golden, tol);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::AttributionSummary;
    use crate::score::TrackScore;

    fn report() -> EvalReport {
        EvalReport {
            scenario: "unit".to_string(),
            seed: 42,
            score: TrackScore {
                gt_intervals: 10,
                hyp_vertices: 10,
                matches: 9,
                misses: 1,
                false_positives: 1,
                id_switches: 0,
                fragmentations: 0,
                idtp: 9,
            },
            per_camera_f2: vec![(0, 1.0), (1, 0.9)],
            matches: Vec::new(),
            misses: Vec::new(),
            attribution: AttributionSummary {
                detect_miss: 1,
                ..AttributionSummary::default()
            },
        }
    }

    #[test]
    fn rendered_report_round_trips_through_the_offline_parser() {
        let r = report();
        let doc = json::parse(&render_report(&r)).expect("render emits valid JSON");
        assert_eq!(
            doc.get("scenario").and_then(JsonValue::as_str),
            Some("unit")
        );
        assert_eq!(
            doc.get("gt_intervals").and_then(JsonValue::as_u64),
            Some(10)
        );
        let f2 = doc
            .get("per_camera_f2")
            .and_then(JsonValue::as_object)
            .unwrap();
        assert_eq!(f2.get("1").and_then(JsonValue::as_f64), Some(0.9));
        // The gate passes against its own rendering.
        assert!(diff_against_golden(&r, &doc, GoldenTolerance::default()).is_empty());
    }

    #[test]
    fn drift_beyond_tolerance_is_reported_per_field() {
        let mut r = report();
        let golden = json::parse(&render_report(&r)).unwrap();
        // Degrade identity preservation well past the tolerance.
        r.score.idtp = 5;
        r.score.id_switches = 4;
        let errors = diff_against_golden(&r, &golden, GoldenTolerance::default());
        assert!(
            errors.iter().any(|e| e.starts_with("idf1:")),
            "idf1 drift must be caught: {errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.starts_with("mota:")),
            "mota drift must be caught: {errors:?}"
        );
        // Drift within tolerance passes.
        let mut r2 = report();
        r2.per_camera_f2[1].1 = 0.91;
        assert!(diff_against_golden(&r2, &golden, GoldenTolerance::default()).is_empty());
    }

    #[test]
    fn changed_ground_truth_fails_the_exact_gate() {
        let r = report();
        let golden = json::parse(&render_report(&r)).unwrap();
        let mut r2 = report();
        r2.score.gt_intervals = 11;
        let errors = diff_against_golden(&r2, &golden, GoldenTolerance::default());
        assert!(errors.iter().any(|e| e.starts_with("gt_intervals:")));
    }
}
