//! Hypothesis-track extraction from the trajectory graph.
//!
//! The trajectory graph stores one vertex per detection event and one
//! weighted edge per re-identification. MOT-style identity metrics need a
//! *partition* of those vertices into hypothesis tracks — "the system
//! believes these detections are the same vehicle". This module derives
//! that partition by **mutual-best-edge chaining**: vertex `a` links to
//! vertex `b` iff `b` is `a`'s lowest-weight successor *and* `a` is `b`'s
//! lowest-weight predecessor. Each vertex then has at most one chosen
//! successor and one chosen predecessor, so the chosen links decompose the
//! graph into disjoint chains — exactly the structure
//! `coral_storage::query::best_track` walks, but computed globally and
//! deterministically for every vertex at once.

use coral_net::VertexId;
use coral_storage::{TrajectoryGraph, VertexRecord};
use std::collections::BTreeMap;

/// One hypothesis track: a chain of detections the system believes belong
/// to a single vehicle.
#[derive(Debug, Clone)]
pub struct HypTrack {
    /// Dense track index (0-based, ordered by the chain head's first-seen
    /// time, ties by vertex id).
    pub id: usize,
    /// The chain's vertices, upstream to downstream.
    pub vertices: Vec<VertexRecord>,
}

impl HypTrack {
    /// The track's first-seen time (of its head vertex), milliseconds.
    pub fn starts_ms(&self) -> u64 {
        self.vertices.first().map_or(0, |v| v.first_seen_ms)
    }
}

/// Lowest-weight edge in `edges` keyed by `key`, ties broken by the
/// partner vertex id so the choice is deterministic.
fn best_by<K: Fn(&coral_storage::TrajectoryEdge) -> VertexId>(
    edges: &[coral_storage::TrajectoryEdge],
    key: K,
) -> Option<VertexId> {
    edges
        .iter()
        .min_by(|a, b| {
            a.weight
                .total_cmp(&b.weight)
                .then_with(|| key(a).0.cmp(&key(b).0))
        })
        .map(key)
}

/// Partitions every vertex of `g` into hypothesis tracks by mutual-best
/// -edge chaining. Vertices with no mutual-best link become singleton
/// tracks. Deterministic for a given graph: iteration follows insertion
/// order and every tie-break is by vertex id.
pub fn extract_tracks(g: &TrajectoryGraph) -> Vec<HypTrack> {
    // Chosen successor per vertex: b = best_out(a) and a = best_in(b).
    let mut next: BTreeMap<VertexId, VertexId> = BTreeMap::new();
    let mut has_prev: BTreeMap<VertexId, bool> = BTreeMap::new();
    for v in g.vertices() {
        if let Some(b) = best_by(g.out_edges(v.id), |e| e.to) {
            if best_by(g.in_edges(b), |e| e.from) == Some(v.id) {
                next.insert(v.id, b);
                has_prev.insert(b, true);
            }
        }
    }

    // Chain heads, ordered by (first_seen_ms, vertex id) for stable track
    // numbering.
    let mut heads: Vec<&VertexRecord> = g
        .vertices()
        .filter(|v| !has_prev.get(&v.id).copied().unwrap_or(false))
        .collect();
    heads.sort_by_key(|v| (v.first_seen_ms, v.id.0));

    let mut tracks = Vec::with_capacity(heads.len());
    for head in heads {
        let mut vertices = Vec::new();
        let mut cur = Some(head.id);
        while let Some(id) = cur {
            let rec = g.vertex(id).expect("chain vertex exists");
            vertices.push(rec.clone());
            cur = next.get(&id).copied();
        }
        tracks.push(HypTrack {
            id: tracks.len(),
            vertices,
        });
    }
    tracks
}

/// The track index of every vertex, for identity bookkeeping.
pub fn track_of_vertex(tracks: &[HypTrack]) -> BTreeMap<VertexId, usize> {
    let mut map = BTreeMap::new();
    for t in tracks {
        for v in &t.vertices {
            map.insert(v.id, t.id);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use coral_net::EventId;
    use coral_topology::CameraId;
    use coral_vision::{GroundTruthId, TrackId};

    fn graph_with(
        vertices: &[(u64, u32, u64, u64)], // (track, camera, first, last)
        edges: &[(usize, usize, f64)],
    ) -> TrajectoryGraph {
        let mut g = TrajectoryGraph::new();
        let mut ids = Vec::new();
        for &(ev, cam, first, last) in vertices {
            let event = EventId {
                camera: CameraId(cam),
                track: TrackId(ev),
            };
            ids.push(g.insert_event(event, first, last, None, Some(GroundTruthId(ev))));
        }
        for &(a, b, w) in edges {
            g.insert_edge(ids[a], ids[b], w).unwrap();
        }
        g
    }

    #[test]
    fn chains_follow_mutual_best_edges() {
        // 0 -> 1 -> 2 is a clean chain; 3 is an isolated vertex.
        let g = graph_with(
            &[(0, 0, 0, 10), (1, 1, 20, 30), (2, 2, 40, 50), (3, 0, 5, 15)],
            &[(0, 1, 0.1), (1, 2, 0.2)],
        );
        let tracks = extract_tracks(&g);
        assert_eq!(tracks.len(), 2);
        assert_eq!(tracks[0].vertices.len(), 3);
        assert_eq!(tracks[1].vertices.len(), 1);
        // Track numbering follows head first-seen time: vertex 0 (t=0)
        // before vertex 3 (t=5).
        assert_eq!(tracks[0].vertices[0].camera, CameraId(0));
        assert_eq!(tracks[0].starts_ms(), 0);
        assert_eq!(tracks[1].starts_ms(), 5);
    }

    #[test]
    fn contested_successor_goes_to_the_lower_weight_edge() {
        // Both 0 and 1 point at 2; vertex 2's best predecessor is 1
        // (weight 0.1 < 0.4), so the chain is 1 -> 2 and 0 stays single.
        let g = graph_with(
            &[(0, 0, 0, 10), (1, 0, 2, 12), (2, 1, 20, 30)],
            &[(0, 2, 0.4), (1, 2, 0.1)],
        );
        let tracks = extract_tracks(&g);
        assert_eq!(tracks.len(), 2);
        let by_len: Vec<usize> = tracks.iter().map(|t| t.vertices.len()).collect();
        assert_eq!(by_len, vec![1, 2]); // head order: v0 (t=0), then v1 (t=2)
        assert_eq!(tracks[1].vertices[1].camera, CameraId(1));
    }

    #[test]
    fn branching_vertex_keeps_only_its_best_out_edge() {
        // 0 branches to 1 and 2; best out-edge (0.1) wins, the other
        // vertex becomes its own track.
        let g = graph_with(
            &[(0, 0, 0, 10), (1, 1, 20, 30), (2, 2, 21, 31)],
            &[(0, 1, 0.1), (0, 2, 0.3)],
        );
        let tracks = extract_tracks(&g);
        assert_eq!(tracks.len(), 2);
        assert_eq!(tracks[0].vertices.len(), 2);
        assert_eq!(tracks[0].vertices[1].camera, CameraId(1));
        let map = track_of_vertex(&tracks);
        assert_eq!(map.len(), 3);
    }
}
