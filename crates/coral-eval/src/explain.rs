//! Operational explanation: *why did vehicle V's track break at camera C?*
//!
//! Scoring says what was lost and attribution says which pipeline stage
//! lost it; this module joins that verdict with the runtime's flight
//! recorder ([`Journal`]) and the per-vehicle causal trace ([`Tracer`]) so
//! one query answers the on-call question end to end: the miss, the stage,
//! and the operational events (kills, partitions, retransmission storms)
//! that surrounded it.

use crate::attribution::{AttributedMiss, MissKind, MissStage, HANDOFF_SLACK_MS};
use crate::replay::EvalReport;
use coral_core::obs::{camera_pid, subject_for, vehicle_tid};
use coral_obs::{Journal, JournalEvent, JournalKind, Tracer};
use coral_topology::CameraId;
use coral_vision::GroundTruthId;

/// How far before the first miss journal context is collected, ms. Kills
/// and partitions act with a lag (heartbeat timeouts, retry budgets), so
/// the cause typically precedes the observed break by tens of seconds.
pub const CONTEXT_BEFORE_MS: u64 = 120_000;

/// The joined answer to "why did vehicle V's track break at camera C".
#[derive(Debug, Clone)]
pub struct TrackBreakExplanation {
    /// The vehicle asked about.
    pub vehicle: GroundTruthId,
    /// The camera asked about.
    pub camera: CameraId,
    /// Misses involving this vehicle at this camera (event misses at the
    /// camera, and unlinked transitions into or out of it).
    pub misses: Vec<AttributedMiss>,
    /// Journal events about this camera inside the context window.
    pub journal: Vec<JournalEvent>,
    /// Causal-trace events recorded for this vehicle at this camera (how
    /// far through the pipeline the vehicle demonstrably got).
    pub trace_events: usize,
    /// Sim-time of the vehicle's last trace event at the camera, µs.
    pub last_trace_us: Option<u64>,
    /// Human-readable summary, one finding per line.
    pub narrative: String,
}

impl TrackBreakExplanation {
    /// Whether an unhealed camera outage overlaps the miss window — the
    /// strongest available attribution for a track break.
    pub fn outage_attributed(&self) -> bool {
        self.narrative.contains("camera outage")
    }
}

/// The sim-time (ms) a miss is anchored at.
fn miss_time_ms(miss: &AttributedMiss) -> u64 {
    match miss.kind {
        MissKind::Event { entered_ms, .. } => entered_ms,
        MissKind::Transition { at_ms, .. } => at_ms,
    }
}

fn describe_miss(miss: &AttributedMiss) -> String {
    let at = miss_time_ms(miss);
    match miss.kind {
        MissKind::Event {
            camera, vehicle, ..
        } => format!(
            "visit of vehicle {} at {} (t={:.1}s) lost: {}",
            vehicle.0,
            subject_for(camera),
            at as f64 / 1_000.0,
            miss.stage.label()
        ),
        MissKind::Transition {
            from, to, vehicle, ..
        } => format!(
            "transition {} -> {} of vehicle {} (t={:.1}s) unlinked: {}",
            subject_for(from),
            subject_for(to),
            vehicle.0,
            at as f64 / 1_000.0,
            miss.stage.label()
        ),
    }
}

/// Joins the evaluation's miss attribution with the flight recorder and
/// the causal trace for one `(vehicle, camera)` query.
///
/// The journal context keeps events whose subject is the camera (or whose
/// detail names it — link-layer events are journaled under the sending
/// endpoint) inside `[first_miss - CONTEXT_BEFORE_MS, last_miss +
/// HANDOFF_SLACK_MS]`; with no misses the whole journal is scanned.
pub fn explain_track_break(
    report: &EvalReport,
    journal: &Journal,
    tracer: &Tracer,
    vehicle: GroundTruthId,
    camera: CameraId,
) -> TrackBreakExplanation {
    let misses: Vec<AttributedMiss> = report
        .misses
        .iter()
        .filter(|m| match m.kind {
            MissKind::Event {
                camera: c,
                vehicle: v,
                ..
            } => v == vehicle && c == camera,
            MissKind::Transition {
                from,
                to,
                vehicle: v,
                ..
            } => v == vehicle && (from == camera || to == camera),
        })
        .copied()
        .collect();

    let window = if misses.is_empty() {
        (0, u64::MAX)
    } else {
        let first = misses.iter().map(miss_time_ms).min().unwrap_or(0);
        let last = misses.iter().map(miss_time_ms).max().unwrap_or(u64::MAX);
        (
            first.saturating_sub(CONTEXT_BEFORE_MS),
            last.saturating_add(HANDOFF_SLACK_MS),
        )
    };

    let subject = subject_for(camera);
    let mut context: Vec<JournalEvent> = Vec::new();
    journal.for_each(|e| {
        let at_ms = e.sim_us / 1_000;
        if at_ms < window.0 || at_ms > window.1 {
            return;
        }
        if e.subject == subject || e.detail.contains(&subject) {
            context.push(e.clone());
        }
    });

    let tid = vehicle_tid(Some(vehicle));
    let pid = camera_pid(camera);
    let mut trace_events = 0usize;
    let mut last_trace_us = None;
    tracer.for_each(|e| {
        if e.pid == pid && e.tid == tid {
            trace_events += 1;
            last_trace_us = Some(last_trace_us.map_or(e.ts_us, |t: u64| t.max(e.ts_us)));
        }
    });

    let mut lines = Vec::new();
    if misses.is_empty() {
        lines.push(format!(
            "no misses recorded for vehicle {} at {}",
            vehicle.0, subject
        ));
    }
    for miss in &misses {
        lines.push(describe_miss(miss));
        let at_ms = miss_time_ms(miss);
        // An unhealed outage overlapping the miss is the root cause for
        // any downstream stage verdict: a dead camera can neither detect
        // nor receive informs. Event misses are anchored at FOV *entry*,
        // so a kill that truncated the visit may land just after the
        // anchor — allow it the same slack the handoff race analysis uses.
        let kill = context
            .iter()
            .filter(|e| {
                e.kind == JournalKind::NodeKill
                    && e.sim_us / 1_000 <= at_ms.saturating_add(HANDOFF_SLACK_MS)
            })
            .max_by_key(|e| e.sim_us);
        if let Some(kill) = kill {
            let healed = context.iter().any(|e| {
                e.kind == JournalKind::NodeRestore
                    && e.sim_us > kill.sim_us
                    && e.sim_us / 1_000 <= at_ms
            });
            if !healed {
                lines.push(format!(
                    "  -> camera outage: {} killed at t={:.1}s with no restore before the miss",
                    subject,
                    kill.sim_us as f64 / 1_000_000.0
                ));
                continue;
            }
        }
        if miss.stage == MissStage::HandoffMiss {
            let trouble = context.iter().any(|e| {
                matches!(
                    e.kind,
                    JournalKind::DeliveryAbandoned
                        | JournalKind::BackoffEscalation
                        | JournalKind::PartitionOpen
                )
            });
            if trouble {
                lines.push(
                    "  -> link trouble: abandoned/escalated deliveries in the journal window"
                        .to_string(),
                );
            }
        }
    }
    match last_trace_us {
        Some(ts) if trace_events > 0 => lines.push(format!(
            "trace: {} events for the vehicle at {}, last at t={:.1}s",
            trace_events,
            subject,
            ts as f64 / 1_000_000.0
        )),
        _ => lines.push(format!("trace: no events for the vehicle at {subject}")),
    }

    TrackBreakExplanation {
        vehicle,
        camera,
        misses,
        journal: context,
        trace_events,
        last_trace_us,
        narrative: lines.join("\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::TrackScore;
    use crate::AttributionSummary;
    use coral_obs::Severity;

    fn report_with(misses: Vec<AttributedMiss>) -> EvalReport {
        EvalReport {
            scenario: "test".into(),
            seed: 1,
            score: TrackScore::default(),
            per_camera_f2: Vec::new(),
            matches: Vec::new(),
            attribution: AttributionSummary::from_misses(&misses),
            misses,
        }
    }

    #[test]
    fn outage_is_attributed_to_the_kill() {
        let journal = Journal::new();
        journal.record(
            JournalKind::NodeKill,
            Severity::Error,
            40_000_000,
            "cam2",
            "camera 2 killed (crash-stop)",
        );
        let report = report_with(vec![AttributedMiss {
            kind: MissKind::Event {
                camera: CameraId(2),
                vehicle: GroundTruthId(7),
                entered_ms: 45_000,
            },
            stage: MissStage::DetectMiss,
        }]);
        let ex = explain_track_break(
            &report,
            &journal,
            &Tracer::new(),
            GroundTruthId(7),
            CameraId(2),
        );
        assert_eq!(ex.misses.len(), 1);
        assert_eq!(ex.journal.len(), 1);
        assert!(ex.outage_attributed(), "narrative: {}", ex.narrative);
    }

    #[test]
    fn restore_before_the_miss_clears_the_outage_verdict() {
        let journal = Journal::new();
        journal.record(
            JournalKind::NodeKill,
            Severity::Error,
            40_000_000,
            "cam2",
            "killed",
        );
        journal.record(
            JournalKind::NodeRestore,
            Severity::Info,
            42_000_000,
            "cam2",
            "restored",
        );
        let report = report_with(vec![AttributedMiss {
            kind: MissKind::Event {
                camera: CameraId(2),
                vehicle: GroundTruthId(7),
                entered_ms: 45_000,
            },
            stage: MissStage::DetectMiss,
        }]);
        let ex = explain_track_break(
            &report,
            &journal,
            &Tracer::new(),
            GroundTruthId(7),
            CameraId(2),
        );
        assert!(!ex.outage_attributed(), "narrative: {}", ex.narrative);
    }

    #[test]
    fn unrelated_cameras_and_vehicles_are_filtered_out() {
        let journal = Journal::new();
        journal.record(
            JournalKind::NodeKill,
            Severity::Error,
            1_000_000,
            "cam9",
            "x",
        );
        let report = report_with(vec![AttributedMiss {
            kind: MissKind::Transition {
                from: CameraId(1),
                to: CameraId(2),
                vehicle: GroundTruthId(3),
                at_ms: 10_000,
            },
            stage: MissStage::HandoffMiss,
        }]);
        let ex = explain_track_break(
            &report,
            &journal,
            &Tracer::new(),
            GroundTruthId(3),
            CameraId(2),
        );
        assert_eq!(ex.misses.len(), 1, "transition into cam2 counts");
        assert!(ex.journal.is_empty(), "cam9 event is out of scope");
        let other = explain_track_break(
            &report,
            &journal,
            &Tracer::new(),
            GroundTruthId(3),
            CameraId(5),
        );
        assert!(other.misses.is_empty());
        assert!(other.narrative.contains("no misses"));
    }
}
