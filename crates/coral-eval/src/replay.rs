//! Scenario replay: build a deployment, drive traffic through it, and
//! evaluate the resulting trajectory graph against ground truth.
//!
//! A [`Scenario`] describes a reproducible experiment — a corridor
//! deployment, a staggered vehicle schedule, a seed and an optional fault
//! policy. [`Scenario::run`] replays it on the deterministic simulator;
//! [`evaluate`] scores the finished system into an [`EvalReport`]: MOT
//! metrics, per-camera event F2, and per-stage miss attribution.

use crate::attribution::{attribute, AttributedMiss, AttributionSummary};
use crate::score::{score_tracks, IntervalMatch, TrackScore};
use crate::tracks::extract_tracks;
use coral_core::{CameraSpec, CoralPieSystem, NodeConfig, SystemConfig};
use coral_geo::{generators, route, IntersectionId};
use coral_net::{FaultPlan, FaultPolicy, RetryPolicy};
use coral_sim::{FailureEvent, FailureKind, FailureSchedule, ScenarioSpec, SimDuration, SimTime};
use coral_topology::CameraId;
use coral_vision::{DetectorNoise, IdentConfig, ObjectClass};

/// A reproducible evaluation scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (keys golden files; keep it filename-safe).
    pub name: String,
    /// Number of corridor cameras (one per intersection).
    pub cameras: usize,
    /// Number of vehicles driven end to end.
    pub vehicles: usize,
    /// First spawn time, seconds.
    pub spawn_start_s: u64,
    /// Gap between consecutive spawns, seconds.
    pub spawn_gap_s: u64,
    /// Total run length, seconds.
    pub run_secs: u64,
    /// Full system configuration (seed, noise, faults, …).
    pub config: SystemConfig,
    /// Scheduled camera kills/restores applied before the run (empty by
    /// default).
    pub failures: FailureSchedule,
    /// City-scale hard-suite spec driving this scenario (`None` = legacy
    /// corridor replay). When set, `run` deploys the spec's grid with
    /// lights, open arrivals, incidents and scene effects instead of the
    /// corridor schedule.
    pub hard: Option<ScenarioSpec>,
    /// Scheduled whole-region partitions, `(region, down_s, up_s)` —
    /// meaningful only with a federated config (`with_regions`).
    pub region_outages: Vec<(u16, u64, u64)>,
}

impl Scenario {
    /// The standard evaluation scenario: an n-camera corridor (120 m
    /// blocks), `vehicles` cars driven end to end at 9 s spacing, perfect
    /// detector, no faults.
    pub fn corridor(cameras: usize, vehicles: usize, seed: u64) -> Self {
        let spawn_start_s = 2;
        let spawn_gap_s = 9;
        // Last spawn + one corridor traversal (≈15 s per 120 m block at
        // the default cruise speed, doubled for lights/margin) + flush.
        let run_secs = spawn_start_s + spawn_gap_s * vehicles as u64 + 30 * cameras as u64 + 20;
        Self {
            name: format!("corridor{cameras}"),
            cameras,
            vehicles,
            spawn_start_s,
            spawn_gap_s,
            run_secs,
            config: SystemConfig {
                node: NodeConfig {
                    detector_noise: DetectorNoise::perfect(),
                    ..NodeConfig::default()
                },
                seed,
                ..SystemConfig::default()
            },
            failures: FailureSchedule::default(),
            hard: None,
            region_outages: Vec::new(),
        }
    }

    /// A hard-suite scenario: deploys `spec`'s city grid (a camera per
    /// intersection), drives its surge/lookalike/incident/clutter regime
    /// with open Poisson arrivals, and keeps the default (imperfect)
    /// detector. These are the workloads that pull scores off the
    /// saturated ≈1.0 ceiling the corridor suite sits at.
    pub fn hard(spec: ScenarioSpec, seed: u64) -> Self {
        Self {
            name: spec.name.clone(),
            cameras: spec.cameras(),
            vehicles: 0,
            spawn_start_s: 0,
            spawn_gap_s: 0,
            run_secs: spec.run_secs,
            config: SystemConfig {
                node: NodeConfig {
                    // Like the corridor suite: a perfect detector, so the
                    // difficulty measured is the regime's (density, surge,
                    // lookalikes, incidents, clutter) — not detector noise,
                    // whose false positives swamp every other error term at
                    // city scale.
                    detector_noise: DetectorNoise::perfect(),
                    // Clutter phantoms latch the tracker at a fixed image
                    // position for a whole burst window; the stationary-
                    // track filter rejects them at finalisation so clutter
                    // stresses detection/association instead of charging
                    // one guaranteed false passage per phantom. Vehicles
                    // cross the FOV (dozens of pixels of net motion), so
                    // 12 px is far below any real passage's displacement.
                    // City grids add the turning-vehicle problem the
                    // corridor never has: route the inform by the exit
                    // bearing (trailing-window estimate), not the whole
                    // track's diagonal average.
                    ident: IdentConfig {
                        min_net_displacement_px: 12.0,
                        exit_bearing_window: 12,
                        signature_max_overlap: 0.25,
                        ..IdentConfig::default()
                    },
                    ..NodeConfig::default()
                },
                traffic: spec.traffic,
                scene_effects: spec.effects,
                seed,
                ..SystemConfig::default()
            },
            failures: FailureSchedule::default(),
            hard: Some(spec),
            region_outages: Vec::new(),
        }
    }

    /// Deploys the scenario across `regions` federated regions (contiguous
    /// camera stripes, one topology server and trajectory store each),
    /// renaming the scenario to match. `1` is the plain deployment.
    pub fn with_regions(mut self, regions: u16) -> Self {
        if regions > 1 {
            self.name = format!("{}-fed{}", self.name, regions);
        }
        self.config.federation.regions = regions;
        self
    }

    /// Schedules a whole-region partition: `region`'s topology server and
    /// edge store go unreachable at `down_s` and heal at `up_s`.
    pub fn with_region_outage(mut self, region: u16, down_s: u64, up_s: u64) -> Self {
        self.name = format!("{}-regionkill{}", self.name, region);
        self.region_outages.push((region, down_s, up_s));
        self
    }

    /// Schedules an outage: `camera` is killed at `down_s` and restored at
    /// `up_s`, renaming the scenario to match.
    pub fn with_outage(mut self, camera: CameraId, down_s: u64, up_s: u64) -> Self {
        self.name = format!("{}-kill{}", self.name, camera.0);
        self.failures.push(FailureEvent {
            at: SimTime::from_secs(down_s),
            camera,
            kind: FailureKind::Kill,
        });
        self.failures.push(FailureEvent {
            at: SimTime::from_secs(up_s),
            camera,
            kind: FailureKind::Restore,
        });
        self
    }

    /// Adds seeded link faults (drop/duplicate probabilities) with the
    /// PR-3 reliability layer turned on, renaming the scenario to match.
    pub fn with_faults(mut self, drop: f64, duplicate: f64) -> Self {
        self.name = format!("{}-drop{}", self.name, (drop * 100.0).round() as u64);
        self.config.faults = Some(FaultPlan::uniform(
            FaultPolicy {
                drop,
                duplicate,
                ..FaultPolicy::default()
            },
            self.config.seed ^ 0x5eed_fa17,
        ));
        self.config.reliability = Some(RetryPolicy::default());
        self
    }

    /// Replays the scenario: deploys the corridor, spawns the vehicle
    /// schedule, runs to completion and flushes in-flight tracks. Tracing
    /// is enabled so causal traces are available alongside telemetry.
    pub fn run(&self) -> CoralPieSystem {
        if let Some(spec) = &self.hard {
            return self.run_hard(spec);
        }
        let net = generators::corridor(self.cameras, 120.0, 12.0);
        let specs: Vec<CameraSpec> = (0..self.cameras)
            .map(|i| CameraSpec {
                id: CameraId(i as u32),
                site: IntersectionId(i as u32),
                videoing_angle_deg: 0.0,
            })
            .collect();
        let mut sys = CoralPieSystem::new(net.clone(), &specs, self.config.clone());
        sys.enable_tracing();
        if !self.failures.is_empty() {
            sys.set_failures(&self.failures);
        }
        for &(region, down_s, up_s) in &self.region_outages {
            sys.schedule_region_kill(SimTime::from_secs(down_s), region);
            sys.schedule_region_restore(SimTime::from_secs(up_s), region);
        }
        sys.run_until(SimTime::from_secs(self.spawn_start_s));
        let first = IntersectionId(0);
        let last = IntersectionId(self.cameras as u32 - 1);
        for k in 0..self.vehicles as u64 {
            let r = route::shortest_path(&net, first, last).expect("corridor is connected");
            sys.traffic_mut().spawn(
                SimTime::from_secs(self.spawn_start_s)
                    + SimDuration::from_secs(self.spawn_gap_s * k),
                r,
                Some(ObjectClass::Car),
            );
        }
        sys.run_until(SimTime::from_secs(self.run_secs));
        sys.finish();
        sys
    }

    /// Replays a hard-suite spec: grid deployment, checkerboard lights,
    /// open arrivals (surged when the spec says so), scheduled incidents.
    /// Tracing stays off — at city scale the flight recorder would
    /// dominate memory without changing any outcome.
    fn run_hard(&self, spec: &ScenarioSpec) -> CoralPieSystem {
        let net = spec.network();
        let specs: Vec<CameraSpec> = (0..spec.cameras())
            .map(|i| CameraSpec {
                id: CameraId(i as u32),
                site: IntersectionId(i as u32),
                videoing_angle_deg: 0.0,
            })
            .collect();
        let mut sys = CoralPieSystem::new(net, &specs, self.config.clone());
        for light in spec.lights() {
            sys.traffic_mut().add_light(light);
        }
        spec.apply_incidents(sys.traffic_mut());
        sys.set_arrivals(spec.arrivals(self.config.seed ^ ARRIVALS_SEED_MIX));
        if !self.failures.is_empty() {
            sys.set_failures(&self.failures);
        }
        for &(region, down_s, up_s) in &self.region_outages {
            sys.schedule_region_kill(SimTime::from_secs(down_s), region);
            sys.schedule_region_restore(SimTime::from_secs(up_s), region);
        }
        sys.run_until(SimTime::from_secs(self.run_secs));
        sys.finish();
        sys
    }
}

/// Seed-mixing constant decorrelating the arrival process from the other
/// per-seed RNG streams.
const ARRIVALS_SEED_MIX: u64 = 0xA881_0A15;

/// The complete evaluation of one run.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Scenario name.
    pub scenario: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Aggregate MOT counts.
    pub score: TrackScore,
    /// Per-camera event-detection F2 (camera id, score), ascending id.
    pub per_camera_f2: Vec<(u32, f64)>,
    /// Per-visit match table (evidence for the attribution below).
    pub matches: Vec<IntervalMatch>,
    /// Every miss with its stage attribution.
    pub misses: Vec<AttributedMiss>,
    /// Per-stage miss totals.
    pub attribution: AttributionSummary,
}

impl EvalReport {
    /// Multi-object tracking accuracy.
    pub fn mota(&self) -> f64 {
        self.score.mota()
    }

    /// Identity F1.
    pub fn idf1(&self) -> f64 {
        self.score.idf1()
    }
}

/// Scores a finished system run: extracts hypothesis tracks from the
/// trajectory graph, matches them to the ground-truth FOV log, and
/// attributes every miss to a pipeline stage.
pub fn evaluate(scenario: &str, seed: u64, sys: &CoralPieSystem) -> EvalReport {
    let gt = sys.ground_truth();
    // The deployment-wide trajectory view: the flat store single-region,
    // the owner-preferring union of every region store when federated.
    let (score, matches) = sys.with_trajectory_graph(|g| {
        let tracks = extract_tracks(g);
        score_tracks(gt, g, &tracks)
    });
    let misses = sys.with_trajectory_graph(|g| attribute(sys.telemetry(), g, &matches));
    let attribution = AttributionSummary::from_misses(&misses);
    let per_camera_f2 = sys
        .report()
        .detection
        .iter()
        .map(|(cam, acc)| (cam.0, acc.f2()))
        .collect();
    EvalReport {
        scenario: scenario.to_string(),
        seed,
        score,
        per_camera_f2,
        matches,
        misses,
        attribution,
    }
}

/// Convenience: replay `scenario` and evaluate the result.
pub fn replay_and_evaluate(scenario: &Scenario) -> EvalReport {
    let sys = scenario.run();
    evaluate(&scenario.name, scenario.config.seed, &sys)
}
