//! Ground-truth evaluation for the Coral-Pie reproduction: replay a
//! scenario, score the trajectory graph against what actually happened,
//! and say *which pipeline stage* lost every miss.
//!
//! The paper's accuracy story (§5, Table 2) compares system output to
//! manually labeled ground truth. The simulator gives us that ground
//! truth for free — [`coral_sim::GroundTruthLog`] records every
//! (camera, vehicle, interval) FOV stay — so this crate closes the loop:
//!
//! 1. [`Scenario`] / [`replay_and_evaluate`] — deterministic replay of a
//!    corridor deployment under any [`coral_core::SystemConfig`].
//! 2. [`tracks`] — hypothesis tracks out of the trajectory graph by
//!    mutual-best-edge chaining.
//! 3. [`score`] — MOT-style metrics at camera-visit granularity: MOTA,
//!    IDF1, identity switches, fragmentations, per-camera event F2.
//! 4. [`attribution`] — every miss classified as detect-miss /
//!    track-loss / handoff-miss / re-id-mismatch from the run's evidence
//!    trail (per-frame detections, inform arrivals, graph edges).
//! 5. [`golden`] — pinned golden scores per scenario with a drift gate,
//!    so accuracy regressions fail tests instead of shipping.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attribution;
pub mod explain;
pub mod golden;
pub mod replay;
pub mod score;
pub mod tracks;

pub use attribution::{attribute, AttributedMiss, AttributionSummary, MissKind, MissStage};
pub use explain::{explain_track_break, TrackBreakExplanation};
pub use golden::{check_golden, golden_path, render_report, GoldenTolerance};
pub use replay::{evaluate, replay_and_evaluate, EvalReport, Scenario};
pub use score::{score_tracks, IntervalMatch, TrackScore, MATCH_SLACK_MS};
pub use tracks::{extract_tracks, HypTrack};
