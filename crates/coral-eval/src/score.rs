//! MOT-style scoring of hypothesis tracks against ground-truth FOV
//! intervals.
//!
//! The unit of account is the **camera visit**: one ground-truth
//! [`FovInterval`] (vehicle `v` stayed in camera `c`'s FOV over
//! `[entered, exited]`) on the truth side, one trajectory-graph vertex
//! (a detection event with its `[first_seen, last_seen]` span) on the
//! hypothesis side. Per camera, intervals and vertices are matched 1-1 by
//! maximum temporal overlap (Hungarian assignment); identity metrics then
//! compare which *hypothesis track* each matched vertex belongs to:
//!
//! - **MOTA** `= 1 − (FN + FP + IDSW) / GT` — misses, false positives and
//!   identity switches, normalised by ground-truth visits.
//! - **IDF1** `= 2·IDTP / (2·IDTP + IDFP + IDFN)` — identity-preserving
//!   F1 under the optimal global vehicle↔track assignment.
//! - **IDSW** — consecutive matched visits of one vehicle landing in
//!   different hypothesis tracks.
//! - **FRAG** — a vehicle's visit sequence going matched → missed →
//!   matched (track coverage interrupted and re-acquired).

use crate::tracks::{track_of_vertex, HypTrack};
use coral_net::VertexId;
use coral_sim::{FovInterval, GroundTruthLog};
use coral_storage::TrajectoryGraph;
use coral_topology::CameraId;
use coral_vision::hungarian::assign;
use coral_vision::GroundTruthId;
use std::collections::BTreeMap;

/// Slack added around a ground-truth interval when matching it to a
/// vertex: the tracker confirms a track a few frames after FOV entry and
/// completes the event `max_age` frames after exit, so hypothesis spans
/// lag truth by a bounded amount.
pub const MATCH_SLACK_MS: u64 = 2_000;

/// One ground-truth visit and the hypothesis vertex (if any) it matched.
#[derive(Debug, Clone, Copy)]
pub struct IntervalMatch {
    /// The ground-truth visit.
    pub interval: FovInterval,
    /// The matched trajectory-graph vertex.
    pub vertex: Option<VertexId>,
    /// The hypothesis track the matched vertex belongs to.
    pub track: Option<usize>,
}

/// Aggregate MOT-style counts for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackScore {
    /// Ground-truth camera visits.
    pub gt_intervals: usize,
    /// Hypothesis vertices (detection events) in the trajectory graph.
    pub hyp_vertices: usize,
    /// Visits matched to a vertex (true positives).
    pub matches: usize,
    /// Visits with no matching vertex (false negatives).
    pub misses: usize,
    /// Vertices matching no visit (false positives).
    pub false_positives: usize,
    /// Consecutive matched visits of one vehicle in different hypothesis
    /// tracks.
    pub id_switches: usize,
    /// Matched → missed → matched interruptions per vehicle.
    pub fragmentations: usize,
    /// Identity true positives: matched visits credited to the optimal
    /// global vehicle↔track assignment.
    pub idtp: usize,
}

impl TrackScore {
    /// Multi-object tracking accuracy. `1.0` for an empty ground truth;
    /// can go negative when errors outnumber ground-truth visits.
    pub fn mota(&self) -> f64 {
        if self.gt_intervals == 0 {
            return 1.0;
        }
        1.0 - (self.misses + self.false_positives + self.id_switches) as f64
            / self.gt_intervals as f64
    }

    /// Identity F1 under the optimal vehicle↔track assignment. `1.0` when
    /// both sides are empty.
    pub fn idf1(&self) -> f64 {
        let idfp = self.hyp_vertices - self.idtp;
        let idfn = self.gt_intervals - self.idtp;
        let denom = 2 * self.idtp + idfp + idfn;
        if denom == 0 {
            return 1.0;
        }
        2.0 * self.idtp as f64 / denom as f64
    }
}

/// Temporal overlap in milliseconds between a slack-extended interval and
/// a vertex span, `None` when disjoint. Disambiguates by actual overlap,
/// so a vertex prefers the visit it really covers.
fn overlap_ms(interval: &FovInterval, first_ms: u64, last_ms: u64) -> Option<u64> {
    let start = interval.entered_ms.saturating_sub(MATCH_SLACK_MS);
    let end = interval
        .exited_ms
        .unwrap_or(u64::MAX)
        .saturating_add(MATCH_SLACK_MS);
    let lo = start.max(first_ms);
    let hi = end.min(last_ms);
    // +1 so touching spans still count as overlapping: a one-frame visit
    // has a zero-length span.
    (lo <= hi).then(|| hi - lo + 1)
}

/// Matches ground-truth visits to trajectory-graph vertices per camera
/// (1-1, maximum temporal overlap) and computes the aggregate
/// [`TrackScore`]. Also returns the per-visit match table the attribution
/// layer consumes.
pub fn score_tracks(
    gt: &GroundTruthLog,
    g: &TrajectoryGraph,
    tracks: &[HypTrack],
) -> (TrackScore, Vec<IntervalMatch>) {
    let vertex_track = track_of_vertex(tracks);

    // Group both sides by camera, deterministically ordered.
    let mut intervals_by_cam: BTreeMap<CameraId, Vec<FovInterval>> = BTreeMap::new();
    for &iv in gt.intervals() {
        intervals_by_cam.entry(iv.camera).or_default().push(iv);
    }
    for ivs in intervals_by_cam.values_mut() {
        ivs.sort_by_key(|iv| (iv.entered_ms, iv.vehicle));
    }
    let mut vertices_by_cam: BTreeMap<CameraId, Vec<(VertexId, u64, u64)>> = BTreeMap::new();
    for v in g.vertices() {
        vertices_by_cam
            .entry(v.camera)
            .or_default()
            .push((v.id, v.first_seen_ms, v.last_seen_ms));
    }
    for vs in vertices_by_cam.values_mut() {
        vs.sort_by_key(|&(id, first, _)| (first, id.0));
    }

    let mut matches: Vec<IntervalMatch> = Vec::new();
    let mut matched_vertices: usize = 0;
    for (cam, ivs) in &intervals_by_cam {
        let verts = vertices_by_cam.get(cam).map_or(&[][..], Vec::as_slice);
        // Max-overlap assignment as min-cost Hungarian: cost = ceiling −
        // overlap, with disjoint pairs pinned above the ceiling so they
        // are never preferred and can be filtered afterwards.
        let ceiling: f64 = 1.0
            + ivs
                .iter()
                .flat_map(|iv| {
                    verts
                        .iter()
                        .filter_map(|&(_, f, l)| overlap_ms(iv, f, l).map(|o| o as f64))
                })
                .fold(0.0, f64::max);
        let forbidden = 10.0 * ceiling;
        let cost: Vec<Vec<f64>> = ivs
            .iter()
            .map(|iv| {
                verts
                    .iter()
                    .map(|&(_, f, l)| match overlap_ms(iv, f, l) {
                        Some(o) => ceiling - o as f64,
                        None => forbidden,
                    })
                    .collect()
            })
            .collect();
        let assignment = if verts.is_empty() {
            vec![None; ivs.len()]
        } else {
            assign(&cost)
        };
        for (i, iv) in ivs.iter().enumerate() {
            let vertex = assignment[i]
                .filter(|&j| cost[i][j] < forbidden)
                .map(|j| verts[j].0);
            let track = vertex.and_then(|v| vertex_track.get(&v).copied());
            if vertex.is_some() {
                matched_vertices += 1;
            }
            matches.push(IntervalMatch {
                interval: *iv,
                vertex,
                track,
            });
        }
    }

    // Identity switches and fragmentations along each vehicle's
    // time-ordered visit sequence.
    let mut by_vehicle: BTreeMap<GroundTruthId, Vec<&IntervalMatch>> = BTreeMap::new();
    for m in &matches {
        by_vehicle.entry(m.interval.vehicle).or_default().push(m);
    }
    let mut id_switches = 0usize;
    let mut fragmentations = 0usize;
    for seq in by_vehicle.values_mut() {
        seq.sort_by_key(|m| (m.interval.entered_ms, m.interval.camera));
        let mut last_track: Option<usize> = None;
        let mut in_gap_after_match = false;
        for m in seq.iter() {
            match m.track {
                Some(t) => {
                    if let Some(prev) = last_track {
                        if prev != t {
                            id_switches += 1;
                        }
                    }
                    if in_gap_after_match {
                        fragmentations += 1;
                    }
                    last_track = Some(t);
                    in_gap_after_match = false;
                }
                None => {
                    if last_track.is_some() {
                        in_gap_after_match = true;
                    }
                }
            }
        }
    }

    // IDF1: optimal global vehicle ↔ hypothesis-track assignment over
    // matched-visit counts.
    let vehicles = gt.vehicles();
    let mut idtp = 0usize;
    if !vehicles.is_empty() && !tracks.is_empty() {
        let mut value: Vec<Vec<usize>> = vec![vec![0; tracks.len()]; vehicles.len()];
        let vindex: BTreeMap<GroundTruthId, usize> =
            vehicles.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for m in &matches {
            if let Some(t) = m.track {
                value[vindex[&m.interval.vehicle]][t] += 1;
            }
        }
        let maxval = value
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0) as f64;
        let cost: Vec<Vec<f64>> = value
            .iter()
            .map(|row| row.iter().map(|&v| maxval - v as f64).collect())
            .collect();
        for (i, j) in assign(&cost).iter().enumerate() {
            if let Some(j) = j {
                idtp += value[i][*j];
            }
        }
    }

    let gt_intervals = gt.intervals().len();
    let hyp_vertices = g.vertex_count();
    let score = TrackScore {
        gt_intervals,
        hyp_vertices,
        matches: matched_vertices,
        misses: gt_intervals - matched_vertices,
        false_positives: hyp_vertices - matched_vertices,
        id_switches,
        fragmentations,
        idtp,
    };
    (score, matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracks::extract_tracks;
    use coral_net::EventId;
    use coral_vision::TrackId;

    fn log(entries: &[(u32, u64, u64, u64)]) -> GroundTruthLog {
        let mut gt = GroundTruthLog::new();
        for &(cam, veh, t0, t1) in entries {
            gt.record_entry(CameraId(cam), GroundTruthId(veh), t0);
            gt.record_exit(CameraId(cam), GroundTruthId(veh), t1);
        }
        gt
    }

    fn graph(vertices: &[(u64, u32, u64, u64)], edges: &[(usize, usize, f64)]) -> TrajectoryGraph {
        let mut g = TrajectoryGraph::new();
        let mut ids = Vec::new();
        for &(track, cam, first, last) in vertices {
            let event = EventId {
                camera: CameraId(cam),
                track: TrackId(track),
            };
            ids.push(g.insert_event(event, first, last, None, None));
        }
        for &(a, b, w) in edges {
            g.insert_edge(ids[a], ids[b], w).unwrap();
        }
        g
    }

    #[test]
    fn perfect_run_scores_one() {
        // Vehicle 1 visits cameras 0 and 1; the graph reproduces both
        // visits and links them.
        let gt = log(&[(0, 1, 1_000, 5_000), (1, 1, 20_000, 24_000)]);
        let g = graph(
            &[(1, 0, 1_200, 5_100), (1, 1, 20_300, 24_200)],
            &[(0, 1, 0.1)],
        );
        let tracks = extract_tracks(&g);
        let (score, matches) = score_tracks(&gt, &g, &tracks);
        assert_eq!(score.matches, 2);
        assert_eq!(score.misses, 0);
        assert_eq!(score.false_positives, 0);
        assert_eq!(score.id_switches, 0);
        assert_eq!(score.idtp, 2);
        assert!((score.mota() - 1.0).abs() < 1e-12);
        assert!((score.idf1() - 1.0).abs() < 1e-12);
        assert!(matches.iter().all(|m| m.vertex.is_some()));
    }

    #[test]
    fn missing_edge_costs_an_identity_switch_but_not_a_miss() {
        let gt = log(&[(0, 1, 1_000, 5_000), (1, 1, 20_000, 24_000)]);
        // Both visits detected, but never linked: two singleton tracks.
        let g = graph(&[(1, 0, 1_200, 5_100), (1, 1, 20_300, 24_200)], &[]);
        let tracks = extract_tracks(&g);
        assert_eq!(tracks.len(), 2);
        let (score, _) = score_tracks(&gt, &g, &tracks);
        assert_eq!(score.misses, 0);
        assert_eq!(score.id_switches, 1);
        assert!((score.mota() - 0.5).abs() < 1e-12);
        // IDF1: best track covers one of two visits.
        assert_eq!(score.idtp, 1);
        assert!((score.idf1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missed_visit_and_clutter_vertex_count_against_mota() {
        let gt = log(&[
            (0, 1, 1_000, 5_000),
            (1, 1, 20_000, 24_000),
            (2, 1, 40_000, 44_000),
        ]);
        // Camera 1's visit never produced a vertex; camera 0 has an extra
        // clutter vertex far from any visit.
        let g = graph(
            &[
                (1, 0, 1_200, 5_100),
                (9, 0, 60_000, 61_000),
                (1, 2, 40_200, 44_100),
            ],
            &[(0, 2, 0.2)],
        );
        let tracks = extract_tracks(&g);
        let (score, matches) = score_tracks(&gt, &g, &tracks);
        assert_eq!(score.matches, 2);
        assert_eq!(score.misses, 1);
        assert_eq!(score.false_positives, 1);
        assert_eq!(score.id_switches, 0);
        // matched → missed → matched is one fragmentation.
        assert_eq!(score.fragmentations, 1);
        assert!((score.mota() - (1.0 - 2.0 / 3.0)).abs() < 1e-12);
        let missed: Vec<_> = matches.iter().filter(|m| m.vertex.is_none()).collect();
        assert_eq!(missed.len(), 1);
        assert_eq!(missed[0].interval.camera, CameraId(1));
    }

    #[test]
    fn revisits_to_one_camera_match_one_to_one() {
        // The same vehicle passes camera 0 twice; two vertices exist. Each
        // visit must consume a distinct vertex (duplicates cannot inflate
        // the match count past the visit count).
        let gt = log(&[(0, 1, 1_000, 5_000), (0, 1, 30_000, 34_000)]);
        let g = graph(&[(1, 0, 1_100, 5_050), (7, 0, 30_100, 34_050)], &[]);
        let tracks = extract_tracks(&g);
        let (score, matches) = score_tracks(&gt, &g, &tracks);
        assert_eq!(score.matches, 2);
        let mut verts: Vec<_> = matches.iter().filter_map(|m| m.vertex).collect();
        verts.dedup();
        assert_eq!(verts.len(), 2, "each visit must take a distinct vertex");
    }

    #[test]
    fn empty_run_scores_one() {
        let gt = GroundTruthLog::new();
        let g = TrajectoryGraph::new();
        let (score, matches) = score_tracks(&gt, &g, &extract_tracks(&g));
        assert!(matches.is_empty());
        assert!((score.mota() - 1.0).abs() < 1e-12);
        assert!((score.idf1() - 1.0).abs() < 1e-12);
    }
}
