//! Per-stage error attribution: *which pipeline stage lost each miss?*
//!
//! A Coral-Pie detection travels detect → track → event/store →
//! inform-send → transport → re-id. Scoring (see [`crate::score`]) tells
//! us *what* was lost — a camera visit with no vertex, a vehicle
//! transition with no edge; this module tells us *where*, by replaying
//! the run's evidence trail:
//!
//! - per-frame detector hits (`Telemetry::detections`) separate
//!   [`MissStage::DetectMiss`] (the detector never fired on the vehicle)
//!   from [`MissStage::TrackLoss`] (it fired, but SORT dropped the track
//!   before an event was emitted);
//! - inform arrivals (`Telemetry::informs`) separate
//!   [`MissStage::HandoffMiss`] (the upstream event never reached the
//!   downstream camera's candidate pool in time) from
//!   [`MissStage::ReidMismatch`] (it arrived, but Bhattacharyya matching
//!   failed to link it).

use crate::score::{IntervalMatch, MATCH_SLACK_MS};
use coral_core::Telemetry;
use coral_storage::TrajectoryGraph;
use coral_topology::CameraId;
use coral_vision::GroundTruthId;
use std::collections::BTreeMap;

/// Slack allowed for an inform to beat the downstream event's completion:
/// the event fires `max_age` frames after FOV exit, and the §5.3 inform
/// race analysis uses the same margin.
pub const HANDOFF_SLACK_MS: u64 = 5_000;

/// The pipeline stage a miss is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MissStage {
    /// The vehicle was in the FOV but the detector never fired on it.
    DetectMiss,
    /// The detector fired but SORT dropped the track before an event was
    /// emitted.
    TrackLoss,
    /// The upstream event was never delivered to the downstream camera in
    /// time to be matched.
    HandoffMiss,
    /// The inform arrived but re-identification failed to link it.
    ReidMismatch,
    /// No stage could be established from the evidence trail.
    Unattributed,
}

impl MissStage {
    /// Stable lowercase label (golden files, JSON reports).
    pub fn label(self) -> &'static str {
        match self {
            MissStage::DetectMiss => "detect_miss",
            MissStage::TrackLoss => "track_loss",
            MissStage::HandoffMiss => "handoff_miss",
            MissStage::ReidMismatch => "reid_mismatch",
            MissStage::Unattributed => "unattributed",
        }
    }
}

/// What was missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissKind {
    /// A camera visit produced no matching vertex.
    Event {
        /// The camera whose visit was lost.
        camera: CameraId,
        /// The vehicle.
        vehicle: GroundTruthId,
        /// Visit entry time, milliseconds.
        entered_ms: u64,
    },
    /// Two consecutive matched visits of one vehicle have no linking edge.
    Transition {
        /// Upstream camera.
        from: CameraId,
        /// Downstream camera.
        to: CameraId,
        /// The vehicle.
        vehicle: GroundTruthId,
        /// Entry time of the downstream visit, milliseconds.
        at_ms: u64,
    },
}

/// One miss with its stage attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttributedMiss {
    /// What was missed.
    pub kind: MissKind,
    /// The stage that lost it.
    pub stage: MissStage,
}

/// Per-stage totals over a run's misses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttributionSummary {
    /// Misses attributed to the detector.
    pub detect_miss: usize,
    /// Misses attributed to the tracker.
    pub track_loss: usize,
    /// Misses attributed to inform delivery.
    pub handoff_miss: usize,
    /// Misses attributed to re-identification.
    pub reid_mismatch: usize,
    /// Misses with no established stage.
    pub unattributed: usize,
}

impl AttributionSummary {
    /// Builds the summary from individual attributions.
    pub fn from_misses(misses: &[AttributedMiss]) -> Self {
        let mut s = Self::default();
        for m in misses {
            match m.stage {
                MissStage::DetectMiss => s.detect_miss += 1,
                MissStage::TrackLoss => s.track_loss += 1,
                MissStage::HandoffMiss => s.handoff_miss += 1,
                MissStage::ReidMismatch => s.reid_mismatch += 1,
                MissStage::Unattributed => s.unattributed += 1,
            }
        }
        s
    }

    /// Total misses.
    pub fn total(&self) -> usize {
        self.detect_miss
            + self.track_loss
            + self.handoff_miss
            + self.reid_mismatch
            + self.unattributed
    }

    /// Fraction of misses with no established stage (`0.0` when there are
    /// no misses).
    pub fn unattributed_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.unattributed as f64 / total as f64
        }
    }
}

/// Attributes every miss in `matches` (visits without a vertex, and
/// unlinked transitions between matched visits) to a pipeline stage.
pub fn attribute(
    telemetry: &Telemetry,
    g: &TrajectoryGraph,
    matches: &[IntervalMatch],
) -> Vec<AttributedMiss> {
    // Index the evidence trail.
    let mut detections: BTreeMap<(CameraId, GroundTruthId), Vec<u64>> = BTreeMap::new();
    for &(cam, veh, at) in &telemetry.detections {
        detections
            .entry((cam, veh))
            .or_default()
            .push(at.as_millis());
    }
    let mut informs: BTreeMap<(CameraId, CameraId, GroundTruthId), Vec<u64>> = BTreeMap::new();
    for inf in &telemetry.informs {
        if let Some(v) = inf.vehicle {
            informs
                .entry((inf.at, inf.from, v))
                .or_default()
                .push(inf.arrived.as_millis());
        }
    }

    let mut out = Vec::new();

    // Event misses: visits with no matched vertex.
    for m in matches.iter().filter(|m| m.vertex.is_none()) {
        let iv = m.interval;
        let lo = iv.entered_ms.saturating_sub(MATCH_SLACK_MS);
        let hi = iv
            .exited_ms
            .unwrap_or(u64::MAX)
            .saturating_add(HANDOFF_SLACK_MS);
        let detected = detections
            .get(&(iv.camera, iv.vehicle))
            .is_some_and(|ts| ts.iter().any(|&t| (lo..=hi).contains(&t)));
        out.push(AttributedMiss {
            kind: MissKind::Event {
                camera: iv.camera,
                vehicle: iv.vehicle,
                entered_ms: iv.entered_ms,
            },
            stage: if detected {
                MissStage::TrackLoss
            } else {
                MissStage::DetectMiss
            },
        });
    }

    // Transition misses: consecutive matched visits of one vehicle whose
    // vertices have no linking edge. (Transitions ending in a missed
    // visit are already attributed above, at the event level.)
    let mut by_vehicle: BTreeMap<GroundTruthId, Vec<&IntervalMatch>> = BTreeMap::new();
    for m in matches {
        by_vehicle.entry(m.interval.vehicle).or_default().push(m);
    }
    for (vehicle, mut seq) in by_vehicle {
        seq.sort_by_key(|m| (m.interval.entered_ms, m.interval.camera));
        for pair in seq.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let (Some(va), Some(vb)) = (a.vertex, b.vertex) else {
                continue;
            };
            if a.interval.camera == b.interval.camera {
                // A same-camera revisit is not a cross-camera handoff.
                continue;
            }
            if g.out_edges(va).iter().any(|e| e.to == vb) {
                continue;
            }
            // When does the downstream event close? The inform must have
            // arrived by then to be matchable.
            let deadline = g
                .vertex(vb)
                .map_or(u64::MAX, |r| r.last_seen_ms)
                .saturating_add(HANDOFF_SLACK_MS);
            let delivered = informs
                .get(&(b.interval.camera, a.interval.camera, vehicle))
                .is_some_and(|ts| ts.iter().any(|&t| t <= deadline));
            out.push(AttributedMiss {
                kind: MissKind::Transition {
                    from: a.interval.camera,
                    to: b.interval.camera,
                    vehicle,
                    at_ms: b.interval.entered_ms,
                },
                stage: if delivered {
                    MissStage::ReidMismatch
                } else {
                    MissStage::HandoffMiss
                },
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coral_core::{InformArrival, TelemetrySink};
    use coral_net::EventId;
    use coral_sim::{FovInterval, SimTime};
    use coral_vision::TrackId;

    fn iv(cam: u32, veh: u64, t0: u64, t1: u64) -> FovInterval {
        FovInterval {
            camera: CameraId(cam),
            vehicle: GroundTruthId(veh),
            entered_ms: t0,
            exited_ms: Some(t1),
        }
    }

    #[test]
    fn undetected_visit_is_a_detect_miss() {
        let telemetry = Telemetry::default();
        let g = TrajectoryGraph::new();
        let matches = [IntervalMatch {
            interval: iv(0, 1, 1_000, 5_000),
            vertex: None,
            track: None,
        }];
        let misses = attribute(&telemetry, &g, &matches);
        assert_eq!(misses.len(), 1);
        assert_eq!(misses[0].stage, MissStage::DetectMiss);
    }

    #[test]
    fn detected_but_unmatched_visit_is_a_track_loss() {
        let mut telemetry = Telemetry::default();
        telemetry.on_detection(CameraId(0), GroundTruthId(1), SimTime::from_millis(2_000));
        let g = TrajectoryGraph::new();
        let matches = [IntervalMatch {
            interval: iv(0, 1, 1_000, 5_000),
            vertex: None,
            track: None,
        }];
        let misses = attribute(&telemetry, &g, &matches);
        assert_eq!(misses[0].stage, MissStage::TrackLoss);
        // A detection far outside the visit is not evidence for it.
        let far = [IntervalMatch {
            interval: iv(0, 1, 60_000, 65_000),
            vertex: None,
            track: None,
        }];
        assert_eq!(
            attribute(&telemetry, &g, &far)[0].stage,
            MissStage::DetectMiss
        );
    }

    fn linked_pair_graph(linked: bool) -> (TrajectoryGraph, [IntervalMatch; 2]) {
        let mut g = TrajectoryGraph::new();
        let va = g.insert_event(
            EventId {
                camera: CameraId(0),
                track: TrackId(1),
            },
            1_000,
            5_000,
            None,
            Some(GroundTruthId(1)),
        );
        let vb = g.insert_event(
            EventId {
                camera: CameraId(1),
                track: TrackId(1),
            },
            20_000,
            24_000,
            None,
            Some(GroundTruthId(1)),
        );
        if linked {
            g.insert_edge(va, vb, 0.1).unwrap();
        }
        let matches = [
            IntervalMatch {
                interval: iv(0, 1, 1_000, 5_000),
                vertex: Some(va),
                track: Some(0),
            },
            IntervalMatch {
                interval: iv(1, 1, 20_000, 24_000),
                vertex: Some(vb),
                track: Some(if linked { 0 } else { 1 }),
            },
        ];
        (g, matches)
    }

    #[test]
    fn unlinked_transition_without_inform_is_a_handoff_miss() {
        let telemetry = Telemetry::default();
        let (g, matches) = linked_pair_graph(false);
        let misses = attribute(&telemetry, &g, &matches);
        assert_eq!(misses.len(), 1);
        assert_eq!(misses[0].stage, MissStage::HandoffMiss);
        assert!(matches!(
            misses[0].kind,
            MissKind::Transition {
                from: CameraId(0),
                to: CameraId(1),
                ..
            }
        ));
    }

    #[test]
    fn unlinked_transition_with_delivered_inform_is_a_reid_mismatch() {
        let mut telemetry = Telemetry::default();
        telemetry.informs.push(InformArrival {
            at: CameraId(1),
            from: CameraId(0),
            vehicle: Some(GroundTruthId(1)),
            arrived: SimTime::from_millis(6_000),
        });
        let (g, matches) = linked_pair_graph(false);
        let misses = attribute(&telemetry, &g, &matches);
        assert_eq!(misses[0].stage, MissStage::ReidMismatch);
        // An inform arriving after the downstream event closed cannot
        // have been matched: still a handoff miss.
        telemetry.informs[0].arrived = SimTime::from_millis(40_000);
        let misses = attribute(&telemetry, &g, &matches);
        assert_eq!(misses[0].stage, MissStage::HandoffMiss);
    }

    #[test]
    fn linked_transition_produces_no_miss() {
        let telemetry = Telemetry::default();
        let (g, matches) = linked_pair_graph(true);
        assert!(attribute(&telemetry, &g, &matches).is_empty());
    }

    #[test]
    fn summary_counts_and_unattributed_fraction() {
        let misses = [
            AttributedMiss {
                kind: MissKind::Event {
                    camera: CameraId(0),
                    vehicle: GroundTruthId(1),
                    entered_ms: 0,
                },
                stage: MissStage::DetectMiss,
            },
            AttributedMiss {
                kind: MissKind::Event {
                    camera: CameraId(1),
                    vehicle: GroundTruthId(1),
                    entered_ms: 0,
                },
                stage: MissStage::Unattributed,
            },
        ];
        let s = AttributionSummary::from_misses(&misses);
        assert_eq!(s.total(), 2);
        assert_eq!(s.detect_miss, 1);
        assert!((s.unattributed_fraction() - 0.5).abs() < 1e-12);
        assert!(
            (AttributionSummary::default().unattributed_fraction()).abs() < 1e-12,
            "no misses means nothing unattributed"
        );
    }
}
