//! Chaos-accuracy regression (satellite of the PR-3 reliability layer):
//! under the standard chaos configuration — 5% drop, 1% duplicate, with
//! at-least-once delivery on — end-to-end identity accuracy must stay
//! within a pinned tolerance of the fault-free baseline, and duplicate
//! deliveries must never inflate true-positive counts.

use coral_eval::{replay_and_evaluate, Scenario};
use std::collections::BTreeMap;

/// IDF1 may degrade at most this much under 5% drop + 1% duplicate: the
/// retry layer recovers dropped informs, so chaos should cost identity
/// continuity almost nothing on a five-camera corridor.
const CHAOS_IDF1_TOLERANCE: f64 = 0.10;

#[test]
fn chaos_keeps_idf1_near_the_fault_free_baseline() {
    let baseline = replay_and_evaluate(&Scenario::corridor(5, 5, 42));
    let chaos = replay_and_evaluate(&Scenario::corridor(5, 5, 42).with_faults(0.05, 0.01));

    assert!(
        chaos.idf1() >= baseline.idf1() - CHAOS_IDF1_TOLERANCE,
        "chaos degraded IDF1 past tolerance: fault-free {} vs chaos {} ({:?})",
        baseline.idf1(),
        chaos.idf1(),
        chaos.score,
    );
    assert!(
        chaos.mota() >= baseline.mota() - CHAOS_IDF1_TOLERANCE,
        "chaos degraded MOTA past tolerance: fault-free {} vs chaos {}",
        baseline.mota(),
        chaos.mota(),
    );
    // Whatever was lost must be attributed — and to the stages chaos can
    // actually break (transport / re-id), with ≤1% unattributed.
    assert!(
        chaos.attribution.unattributed_fraction() <= 0.01,
        "{:?}",
        chaos.attribution
    );
}

#[test]
fn duplicate_delivery_never_inflates_true_positives() {
    // Duplicates only (no drops): at-least-once redelivery plus a 10%
    // duplicate rate hammers the idempotent-ingest path.
    let scenario = Scenario::corridor(5, 5, 7).with_faults(0.0, 0.10);
    let sys = scenario.run();
    let report = coral_eval::evaluate(&scenario.name, 7, &sys);

    // 1-1 matching: matches can never exceed ground-truth visits, in
    // aggregate or per (camera, vehicle).
    assert!(report.score.matches <= report.score.gt_intervals);

    // The graph must hold at most one vertex per (camera, vehicle) visit:
    // duplicated informs/events must not mint extra vertices.
    let mut visits: BTreeMap<(u32, u64), usize> = BTreeMap::new();
    for iv in sys.ground_truth().intervals() {
        *visits.entry((iv.camera.0, iv.vehicle.0)).or_default() += 1;
    }
    sys.storage().with_graph(|g| {
        let mut vertices: BTreeMap<(u32, u64), usize> = BTreeMap::new();
        for v in g.vertices() {
            if let Some(gt) = v.ground_truth {
                *vertices.entry((v.camera.0, gt.0)).or_default() += 1;
            }
        }
        for (key, &n) in &vertices {
            let gt_visits = visits.get(key).copied().unwrap_or(0);
            assert!(
                n <= gt_visits,
                "duplicates minted vertices: {n} vertices for {gt_visits} visits of {key:?}"
            );
        }
    });

    // Per-camera event accuracy: TP per camera is capped by the camera's
    // ground-truth visit count.
    let mut visits_per_cam: BTreeMap<u32, u64> = BTreeMap::new();
    for iv in sys.ground_truth().intervals() {
        *visits_per_cam.entry(iv.camera.0).or_default() += 1;
    }
    for (cam, acc) in &sys.report().detection {
        assert!(
            acc.tp <= visits_per_cam.get(&cam.0).copied().unwrap_or(0),
            "camera {cam}: duplicate deliveries inflated TP ({acc:?})"
        );
    }
}
