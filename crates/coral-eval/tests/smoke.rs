//! Tier-1 accuracy smoke: the fault-free five-camera corridor must track
//! nearly perfectly, the golden drift gate must hold, and every miss must
//! carry a stage attribution.

use coral_eval::{check_golden, replay_and_evaluate, GoldenTolerance, Scenario};

#[test]
fn fault_free_corridor_five_scores_high_and_matches_golden() {
    let report = replay_and_evaluate(&Scenario::corridor(5, 5, 42));

    assert_eq!(report.score.gt_intervals, 25, "5 vehicles × 5 cameras");
    assert!(
        report.mota() >= 0.9,
        "MOTA collapsed: {:?} (mota {})",
        report.score,
        report.mota()
    );
    assert!(
        report.idf1() >= 0.9,
        "IDF1 collapsed: {:?} (idf1 {})",
        report.score,
        report.idf1()
    );
    for (cam, f2) in &report.per_camera_f2 {
        assert!(*f2 >= 0.9, "camera {cam} event F2 collapsed: {f2}");
    }
    // Every miss (if any) must carry a stage; ≤1% may stay unattributed.
    assert!(
        report.attribution.unattributed_fraction() <= 0.01,
        "too many unattributed misses: {:?}",
        report.attribution
    );

    if let Err(errors) = check_golden(&report, GoldenTolerance::default()) {
        panic!("golden drift gate failed:\n  {}", errors.join("\n  "));
    }
}

/// Full eval matrix, run explicitly by `ci.sh`: three corridor widths by
/// two seeds, all fault-free, all expected to track near-perfectly.
#[test]
#[ignore = "ci.sh runs the full matrix; the per-scenario smokes cover PRs"]
fn eval_matrix_three_scenarios_by_two_seeds() {
    for cameras in [3usize, 5, 7] {
        for seed in [42u64, 7] {
            let scenario = Scenario::corridor(cameras, 5, seed);
            let report = replay_and_evaluate(&scenario);
            assert_eq!(
                report.score.gt_intervals,
                5 * cameras,
                "{}/seed{seed}: 5 vehicles × {cameras} cameras",
                scenario.name
            );
            assert!(
                report.mota() >= 0.9,
                "{}/seed{seed}: MOTA collapsed: {:?} (mota {})",
                scenario.name,
                report.score,
                report.mota()
            );
            assert!(
                report.idf1() >= 0.9,
                "{}/seed{seed}: IDF1 collapsed: {:?} (idf1 {})",
                scenario.name,
                report.score,
                report.idf1()
            );
            assert!(
                report.attribution.unattributed_fraction() <= 0.01,
                "{}/seed{seed}: {:?}",
                scenario.name,
                report.attribution
            );
        }
    }
}

#[test]
fn fault_free_corridor_three_matches_golden() {
    let report = replay_and_evaluate(&Scenario::corridor(3, 4, 42));
    // Drift gate first: on a regression it reports every drifted field
    // (mota/idf1/per-camera F2 beyond ±0.02, counts exactly) rather than
    // stopping at the first collapsed aggregate.
    if let Err(errors) = check_golden(&report, GoldenTolerance::default()) {
        panic!("golden drift gate failed:\n  {}", errors.join("\n  "));
    }
    assert_eq!(report.score.gt_intervals, 12, "4 vehicles × 3 cameras");
    assert!(report.mota() >= 0.9, "{:?}", report.score);
    assert!(
        report.attribution.unattributed_fraction() <= 0.01,
        "{:?}",
        report.attribution
    );
}
