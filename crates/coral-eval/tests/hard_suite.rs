//! Hard-suite accuracy gates: city-scale adversarial scenarios that pull
//! tracking scores off the saturated ≈1.0 ceiling the corridor suite sits
//! at, so accuracy regressions (and improvements) become visible.
//!
//! The miniature `hard_smoke_3x3` runs in tier-1; the four full 10×10
//! scenarios are `#[ignore]`d and run under `--release` by `ci.sh`.
//! Golden files live next to the corridor ones and are (re)blessed with
//! `CORAL_EVAL_BLESS=1`.

use coral_eval::{check_golden, replay_and_evaluate, GoldenTolerance, Scenario};
use coral_sim::ScenarioSpec;

/// At least one headline score must sit inside the informative band:
/// clearly below saturation, clearly above collapse.
fn assert_unsaturated(name: &str, mota: f64, idf1: f64) {
    let informative = |s: f64| (0.7..0.995).contains(&s);
    assert!(
        informative(mota) || informative(idf1),
        "{name}: scores saturated or collapsed (mota {mota:.4}, idf1 {idf1:.4}); \
         the hard suite must keep at least one headline score in (0.7, 0.995)"
    );
}

fn run_and_gate(spec: ScenarioSpec, seed: u64) {
    let scenario = Scenario::hard(spec, seed);
    let report = replay_and_evaluate(&scenario);
    assert!(
        report.score.gt_intervals > 0,
        "{}: no ground-truth visits recorded",
        scenario.name
    );
    assert_unsaturated(&scenario.name, report.mota(), report.idf1());
    if let Err(errors) = check_golden(&report, GoldenTolerance::default()) {
        panic!(
            "{}: golden drift gate failed:\n  {}",
            scenario.name,
            errors.join("\n  ")
        );
    }
}

/// Tier-1 smoke: the miniature mixed regime (surge + an incident +
/// occlusion + clutter on a 3×3 grid) must run, score inside the
/// informative band, and match its golden file.
#[test]
fn hard_smoke_runs_unsaturated_and_matches_golden() {
    run_and_gate(ScenarioSpec::smoke(), 42);
}

#[test]
#[ignore = "city scale; ci.sh runs the hard suite under --release"]
fn hard_platoon_surge_matches_golden() {
    run_and_gate(ScenarioSpec::platoon_surge(), 42);
}

#[test]
#[ignore = "city scale; ci.sh runs the hard suite under --release"]
fn hard_lookalike_matches_golden() {
    run_and_gate(ScenarioSpec::lookalike_city(), 42);
}

#[test]
#[ignore = "city scale; ci.sh runs the hard suite under --release"]
fn hard_incident_reroute_matches_golden() {
    run_and_gate(ScenarioSpec::incident_reroute(), 42);
}

#[test]
#[ignore = "city scale; ci.sh runs the hard suite under --release"]
fn hard_clutter_storm_matches_golden() {
    run_and_gate(ScenarioSpec::clutter_storm(), 42);
}
