//! Score a hard-suite scenario and print its MOT breakdown — the tuning
//! tool behind every regime's difficulty calibration.
//!
//! ```sh
//! cargo run --release -p coral-eval --example hard_debug <scenario> [variants]
//! ```
//!
//! `<scenario>` is a spec name (`platoon_surge_10x10`, `lookalike_10x10`,
//! `incident_reroute_10x10`, `clutter_storm_10x10`, `hard_smoke_3x3`).
//! `[variants]` is a comma-separated list of overrides applied before the
//! run, for ablating one knob at a time:
//!
//! - `clean` (no scene effects), `no_clutter`, `no_occl`, `occl:<frac>`,
//!   `clut:<period>:<frac>:<boxes>` — scene-effect knobs
//! - `first_order`, `one_lane` — traffic-model ablations
//! - `half_rate`, `rate:<mult>`, `no_lights`, `lights:<secs>` — density
//! - `no_classes`, `classes:<n>` — lookalike pressure
//! - `perfect` (noise-free detector), `broadcast` (flood instead of
//!   MDCS), `samecam` (allow same-camera re-id), `transit:<ms>`,
//!   `bhatt:<f>` — pipeline knobs
//!
//! Prints the `TrackScore` counts, MOTA/IDF1, vehicles spawned,
//! incident-driven re-routes, and the per-stage miss attribution.
use coral_eval::Scenario;
use coral_sim::{CarFollowModel, ScenarioSpec};
use coral_vision::DetectorNoise;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "hard_smoke_3x3".into());
    let variants = std::env::args().nth(2).unwrap_or_default();
    let mut spec = ScenarioSpec::by_name(&name).expect("known scenario");
    let mut perfect = false;
    let mut transit_ms: Option<u64> = None;
    let mut bhatt: Option<f64> = None;
    let mut broadcast = false;
    let mut samecam = false;
    for variant in variants.split(',') {
        match variant {
            "clean" => spec.effects = None,
            "first_order" => {
                spec.traffic.model = CarFollowModel::FirstOrder;
                spec.traffic.lanes_per_edge = 1;
                spec.traffic.mobil = None;
            }
            "one_lane" => {
                spec.traffic.lanes_per_edge = 1;
                spec.traffic.mobil = None;
            }
            "half_rate" => {
                spec.rate_per_s /= 2.0;
                if let Some(s) = &mut spec.surge {
                    s.peak_rate_per_s /= 2.0;
                }
            }
            "no_lights" => spec.light_period_s = 0,
            "no_clutter" => {
                if let Some(e) = &mut spec.effects {
                    e.clutter = None;
                }
            }
            "no_occl" => {
                if let Some(e) = &mut spec.effects {
                    e.min_visible_frac = 0.0;
                }
            }
            "no_classes" => spec.traffic.appearance_classes = 0,
            "perfect" => perfect = true,
            "broadcast" => broadcast = true,
            "samecam" => samecam = true,
            v => {
                if let Some(f) = v.strip_prefix("rate:").and_then(|f| f.parse::<f64>().ok()) {
                    spec.rate_per_s *= f;
                    if let Some(s) = &mut spec.surge {
                        s.peak_rate_per_s *= f;
                    }
                } else if let Some(n) = v.strip_prefix("classes:").and_then(|n| n.parse().ok()) {
                    spec.traffic.appearance_classes = n;
                } else if let Some(f) = v.strip_prefix("occl:").and_then(|f| f.parse().ok()) {
                    if let Some(e) = &mut spec.effects {
                        e.min_visible_frac = f;
                    }
                } else if let Some(rest) = v.strip_prefix("clut:") {
                    let p: Vec<f64> = rest.split(':').filter_map(|x| x.parse().ok()).collect();
                    if let (Some(e), [period, frac, boxes]) = (&mut spec.effects, p.as_slice()) {
                        e.clutter = Some(coral_sim::ClutterBurst {
                            period_s: *period,
                            burst_fraction: *frac,
                            boxes: *boxes as u32,
                        });
                    }
                } else if let Some(p) = v.strip_prefix("lights:").and_then(|p| p.parse().ok()) {
                    spec.light_period_s = p;
                } else if let Some(s) = v.strip_prefix("transit:").and_then(|s| s.parse().ok()) {
                    transit_ms = Some(s);
                } else if let Some(b) = v.strip_prefix("bhatt:").and_then(|b| b.parse().ok()) {
                    bhatt = Some(b);
                }
            }
        }
    }
    let mut scenario = Scenario::hard(spec, 42);
    if perfect {
        scenario.config.node.detector_noise = DetectorNoise::perfect();
    }
    if let Some(ms) = transit_ms {
        scenario.config.node.reid.max_transit_ms = Some(ms);
    }
    if let Some(b) = bhatt {
        scenario.config.node.reid.bhatt_threshold = b;
    }
    if broadcast {
        scenario.config.broadcast = true;
    }
    if samecam {
        scenario.config.node.reid.allow_same_camera = true;
    }
    let sys = scenario.run();
    let r = coral_eval::evaluate(&scenario.name, scenario.config.seed, &sys);
    println!(
        "{name}/{variants}: spawned {} reroutes {}",
        sys.traffic().spawned_total(),
        sys.traffic().reroutes()
    );
    println!("{:?}", r.score);
    println!("mota {:.4} idf1 {:.4}", r.mota(), r.idf1());
    println!("attribution: {:?}", r.attribution);
}
