//! Workspace-wide observability for the Coral-Pie reproduction.
//!
//! Every evaluation in the paper (§5: inform latency, recovery time,
//! per-stage timings) is a *measurement over a distributed pipeline*, so
//! this crate provides the shared instrumentation substrate the rest of
//! the workspace threads through:
//!
//! - [`Registry`] — named [`Counter`]s, [`Gauge`]s and log-scale
//!   [`Histogram`]s cheap enough for per-frame hot paths, with snapshot
//!   export to JSON ([`Registry::snapshot_json`]) and the Prometheus text
//!   format ([`Registry::render_prometheus`]).
//! - [`Tracer`] — structured spans/events stamped with both sim-time and
//!   wall-time, exported as Chrome `trace_event` JSON
//!   ([`Tracer::export_chrome`]) for chrome://tracing / Perfetto. The
//!   per-vehicle causal traces in `coral-core` map cameras to trace
//!   processes and vehicles to trace threads, so one timeline row shows
//!   one vehicle flowing detect → track → feature-extract → inform →
//!   transport hop → re-id → store across cameras.
//! - [`Journal`] — the flight recorder: a bounded ring-buffer of
//!   structured operational events (kills, restores, retransmits,
//!   partitions, SLO misses) with deterministic JSONL export.
//! - [`health`] — the SLO engine: declarative [`health::Rule`]s evaluated
//!   over registry snapshots, producing per-subject OK / DEGRADED /
//!   CRITICAL [`health::HealthReport`]s and journaling transitions.
//! - [`ops`] — a dependency-free `std::net` HTTP endpoint serving
//!   `/metrics`, `/healthz` and `/journal?last=N` for live deployments.
//! - [`json`] — the minimal JSON writer/parser the exporters are built
//!   on, so the crate stays dependency-free and the exports stay
//!   byte-deterministic.
//!
//! The crate deliberately knows nothing about cameras, vehicles or
//! simulation types: identities are plain strings and `u64`s, and the
//! domain crates adapt their ids at the instrumentation sites.

#![warn(missing_docs)]

pub mod health;
pub mod journal;
pub mod json;
pub mod ops;
pub mod registry;
pub mod trace;

pub use health::{HealthEngine, HealthReport, Rule, RuleInput, Thresholds, Verdict};
pub use journal::{Journal, JournalEvent, JournalKind, Severity};
pub use ops::{OpsServer, OpsState};
pub use registry::{
    bucket_bound_us, Counter, Gauge, Histogram, HistogramData, LocalHistogram, MetricKey, Registry,
    RegistrySample, SampleValue, HISTOGRAM_BUCKETS,
};
pub use trace::{ArgValue, TraceEvent, Tracer};

/// The bundle of observability handles one deployment shares: a metrics
/// registry, a trace recorder, and a flight-recorder journal. Cloning
/// shares all three.
#[derive(Debug, Clone)]
pub struct Observability {
    /// The shared metrics registry.
    pub registry: Registry,
    /// The shared trace recorder (disabled until enabled).
    pub tracer: Tracer,
    /// The shared flight recorder.
    pub journal: Journal,
}

impl Default for Observability {
    fn default() -> Self {
        Self::new()
    }
}

impl Observability {
    /// Creates a fresh bundle with tracing disabled. The tracer's and
    /// journal's drop counters are mirrored into the registry as
    /// `trace_events_dropped_total` / `journal_events_dropped_total`.
    pub fn new() -> Self {
        let registry = Registry::new();
        let tracer = Tracer::new();
        let journal = Journal::new();
        tracer.set_drop_counter(registry.counter("trace_events_dropped_total", &[]));
        journal.set_drop_counter(registry.counter("journal_events_dropped_total", &[]));
        registry.describe(
            "trace_events_dropped_total",
            "Trace events rejected because the tracer buffer was full",
        );
        registry.describe(
            "journal_events_dropped_total",
            "Journal events evicted by flight-recorder ring wrap",
        );
        Self {
            registry,
            tracer,
            journal,
        }
    }

    /// Enables (or disables) trace recording.
    pub fn set_tracing(&self, on: bool) {
        self.tracer.set_enabled(on);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_shares_state_across_clones() {
        let obs = Observability::new();
        let other = obs.clone();
        other.registry.counter("x", &[]).inc();
        assert_eq!(obs.registry.counter_value("x", &[]), Some(1));
        obs.set_tracing(true);
        assert!(other.tracer.is_enabled());
    }
}
