//! Workspace-wide observability for the Coral-Pie reproduction.
//!
//! Every evaluation in the paper (§5: inform latency, recovery time,
//! per-stage timings) is a *measurement over a distributed pipeline*, so
//! this crate provides the shared instrumentation substrate the rest of
//! the workspace threads through:
//!
//! - [`Registry`] — named [`Counter`]s, [`Gauge`]s and log-scale
//!   [`Histogram`]s cheap enough for per-frame hot paths, with snapshot
//!   export to JSON ([`Registry::snapshot_json`]) and the Prometheus text
//!   format ([`Registry::render_prometheus`]).
//! - [`Tracer`] — structured spans/events stamped with both sim-time and
//!   wall-time, exported as Chrome `trace_event` JSON
//!   ([`Tracer::export_chrome`]) for chrome://tracing / Perfetto. The
//!   per-vehicle causal traces in `coral-core` map cameras to trace
//!   processes and vehicles to trace threads, so one timeline row shows
//!   one vehicle flowing detect → track → feature-extract → inform →
//!   transport hop → re-id → store across cameras.
//! - [`json`] — the minimal JSON writer/parser both exporters are built
//!   on, so the crate stays dependency-free and the exports stay
//!   byte-deterministic.
//!
//! The crate deliberately knows nothing about cameras, vehicles or
//! simulation types: identities are plain strings and `u64`s, and the
//! domain crates adapt their ids at the instrumentation sites.

#![warn(missing_docs)]

pub mod json;
pub mod registry;
pub mod trace;

pub use registry::{
    bucket_bound_us, Counter, Gauge, Histogram, LocalHistogram, MetricKey, Registry,
    HISTOGRAM_BUCKETS,
};
pub use trace::{ArgValue, TraceEvent, Tracer};

/// The bundle of observability handles one deployment shares: a metrics
/// registry plus a trace recorder. Cloning shares both.
#[derive(Debug, Clone, Default)]
pub struct Observability {
    /// The shared metrics registry.
    pub registry: Registry,
    /// The shared trace recorder (disabled until enabled).
    pub tracer: Tracer,
}

impl Observability {
    /// Creates a fresh bundle with tracing disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables (or disables) trace recording.
    pub fn set_tracing(&self, on: bool) {
        self.tracer.set_enabled(on);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_shares_state_across_clones() {
        let obs = Observability::new();
        let other = obs.clone();
        other.registry.counter("x", &[]).inc();
        assert_eq!(obs.registry.counter_value("x", &[]), Some(1));
        obs.set_tracing(true);
        assert!(other.tracer.is_enabled());
    }
}
