//! The health/SLO engine: declarative rules evaluated over registry
//! snapshots, producing per-subject verdicts.
//!
//! A [`Rule`] names a metric family, how to reduce each series of that
//! family to a number ([`RuleInput`]), and the [`Thresholds`] that map the
//! number to a [`Verdict`]. The [`HealthEngine`] evaluates all rules
//! against a [`crate::Registry::collect`] snapshot (keeping the previous
//! snapshot so rate/quantile rules see a *window*, not the whole run),
//! groups findings by subject (a label value, e.g. `camera="3"`), and
//! emits a [`HealthReport`]. Verdict transitions are journaled as
//! [`JournalKind::HealthChange`] events so the flight recorder shows
//! *when* a node went critical alongside *why* (the fault events around
//! it).
//!
//! The engine is purely observational: it reads atomics and never touches
//! simulation state, so running it (or not) cannot change a DES run.

use crate::journal::{Journal, JournalEvent, JournalKind, Severity};
use crate::json::{number, quote};
use crate::registry::{MetricKey, Registry, RegistrySample, SampleValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A subject's health state, worst-wins ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Verdict {
    /// All rules within thresholds.
    Ok,
    /// At least one rule past its degraded threshold.
    Degraded,
    /// At least one rule past its critical threshold.
    Critical,
}

impl Verdict {
    /// Stable lowercase name used in JSON exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Degraded => "degraded",
            Verdict::Critical => "critical",
        }
    }
}

/// Degraded/critical cutoffs; a value `>= degraded` is DEGRADED, `>=
/// critical` is CRITICAL (rules are phrased so that bigger is worse).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Value at or above which the subject is degraded.
    pub degraded: f64,
    /// Value at or above which the subject is critical.
    pub critical: f64,
}

impl Thresholds {
    /// Builds a threshold pair.
    pub fn new(degraded: f64, critical: f64) -> Self {
        Self { degraded, critical }
    }

    fn judge(&self, value: f64) -> Verdict {
        if value >= self.critical {
            Verdict::Critical
        } else if value >= self.degraded {
            Verdict::Degraded
        } else {
            Verdict::Ok
        }
    }
}

/// How a rule reduces a metric series to the judged number.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleInput {
    /// The gauge's current value.
    GaugeValue,
    /// `now_ms - gauge` (a "last seen at" gauge), clamped at zero.
    GaugeStalenessMs,
    /// Counter increase per second since the previous evaluation.
    /// Produces nothing on the first evaluation.
    RatePerSec,
    /// The q-quantile (bucket upper bound, µs) of the histogram's
    /// observations since the previous evaluation. Windows with no new
    /// observations produce nothing.
    QuantileUs(f64),
    /// Max/mean imbalance across all series of the family, computed over
    /// windowed deltas (counter or histogram-sum). One global finding;
    /// needs at least two series.
    Imbalance,
    /// `delta(self) / (delta(self) + delta(complement))` over the window:
    /// the fraction of the total the named counter accounts for. One
    /// global finding; empty windows produce nothing.
    Fraction {
        /// The counter family forming the other half of the total.
        complement: String,
    },
}

/// One declarative SLO rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Rule name, e.g. `heartbeat-staleness`.
    pub name: String,
    /// Metric family the rule reads.
    pub metric: String,
    /// Label whose value names the subject (e.g. `camera`, `endpoint`);
    /// `None` groups the finding under the rule name itself.
    pub subject_label: Option<String>,
    /// The reduction from series to judged number.
    pub input: RuleInput,
    /// The verdict cutoffs.
    pub thresholds: Thresholds,
}

impl Rule {
    /// Builds a rule.
    pub fn new(
        name: &str,
        metric: &str,
        subject_label: Option<&str>,
        input: RuleInput,
        thresholds: Thresholds,
    ) -> Self {
        Self {
            name: name.to_string(),
            metric: metric.to_string(),
            subject_label: subject_label.map(str::to_string),
            input,
            thresholds,
        }
    }
}

/// One rule's judgement of one subject.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: String,
    /// The subject it judged.
    pub subject: String,
    /// The reduced value that was compared against the thresholds.
    pub value: f64,
    /// The per-rule verdict.
    pub verdict: Verdict,
}

/// All findings for one subject; `verdict` is the worst of them.
#[derive(Debug, Clone)]
pub struct SubjectHealth {
    /// Subject name (label value or rule name).
    pub subject: String,
    /// Worst verdict across this subject's findings.
    pub verdict: Verdict,
    /// The individual rule findings.
    pub findings: Vec<Finding>,
}

/// The engine's output for one evaluation instant.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Evaluation time (the caller's clock, milliseconds).
    pub at_ms: u64,
    /// Worst verdict across all subjects ([`Verdict::Ok`] when quiet).
    pub overall: Verdict,
    /// Per-subject health, sorted by subject name.
    pub subjects: Vec<SubjectHealth>,
    /// Journal events recorded since the previous evaluation — the
    /// operational context that triggered (or accompanied) the verdicts.
    pub events: Vec<JournalEvent>,
}

impl HealthReport {
    /// The verdict for `subject`, if any rule judged it this round.
    pub fn verdict_for(&self, subject: &str) -> Option<Verdict> {
        self.subjects
            .iter()
            .find(|s| s.subject == subject)
            .map(|s| s.verdict)
    }

    /// Serializes the report as a deterministic JSON document (wall-clock
    /// stamps on the attached journal events are omitted).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"at_ms\": {}, \"overall\": \"{}\", \"subjects\": [",
            self.at_ms,
            self.overall.as_str()
        );
        for (i, s) in self.subjects.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"subject\": {}, \"verdict\": \"{}\", \"findings\": [",
                quote(&s.subject),
                s.verdict.as_str()
            );
            for (j, f) in s.findings.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"rule\": {}, \"value\": {}, \"verdict\": \"{}\"}}",
                    quote(&f.rule),
                    number(f.value),
                    f.verdict.as_str()
                );
            }
            out.push_str("]}");
        }
        out.push_str("], \"events\": [");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&ev.to_json_line(false));
        }
        out.push_str("]}\n");
        out
    }
}

/// The stateful rule evaluator. Not `Clone`: share it behind a mutex.
#[derive(Debug)]
pub struct HealthEngine {
    rules: Vec<Rule>,
    prev: Option<PrevSnapshot>,
    verdicts: BTreeMap<String, Verdict>,
    next_journal_seq: u64,
    latest: Option<HealthReport>,
}

#[derive(Debug)]
struct PrevSnapshot {
    at_ms: u64,
    samples: BTreeMap<MetricKey, SampleValue>,
}

impl HealthEngine {
    /// Builds an engine over `rules`.
    pub fn new(rules: Vec<Rule>) -> Self {
        Self {
            rules,
            prev: None,
            verdicts: BTreeMap::new(),
            next_journal_seq: 0,
            latest: None,
        }
    }

    /// The installed rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The most recent report, if the engine has evaluated at least once.
    pub fn latest(&self) -> Option<&HealthReport> {
        self.latest.as_ref()
    }

    /// Evaluates every rule against the registry's current state at
    /// `now_ms`, attaches the journal events recorded since the previous
    /// evaluation, and journals verdict transitions.
    pub fn evaluate(
        &mut self,
        registry: &Registry,
        journal: Option<&Journal>,
        now_ms: u64,
    ) -> HealthReport {
        let samples = registry.collect();
        let dt_s = self
            .prev
            .as_ref()
            .map(|p| (now_ms.saturating_sub(p.at_ms)) as f64 / 1e3);

        let mut findings: Vec<Finding> = Vec::new();
        for rule in &self.rules {
            evaluate_rule(
                rule,
                &samples,
                self.prev.as_ref(),
                dt_s,
                now_ms,
                &mut findings,
            );
        }

        // Group by subject, worst verdict wins.
        let mut by_subject: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
        for f in findings {
            by_subject.entry(f.subject.clone()).or_default().push(f);
        }
        let subjects: Vec<SubjectHealth> = by_subject
            .into_iter()
            .map(|(subject, findings)| {
                let verdict = findings
                    .iter()
                    .map(|f| f.verdict)
                    .max()
                    .unwrap_or(Verdict::Ok);
                SubjectHealth {
                    subject,
                    verdict,
                    findings,
                }
            })
            .collect();
        let overall = subjects
            .iter()
            .map(|s| s.verdict)
            .max()
            .unwrap_or(Verdict::Ok);

        // Attach the journal window that led up to this evaluation.
        let events = match journal {
            Some(j) => {
                let evs = j.since(self.next_journal_seq);
                self.next_journal_seq = j.recorded_total();
                evs
            }
            None => Vec::new(),
        };

        // Journal verdict transitions (including subjects that went
        // quiet: no findings this round means OK).
        let mut new_verdicts: BTreeMap<String, Verdict> = BTreeMap::new();
        for s in &subjects {
            new_verdicts.insert(s.subject.clone(), s.verdict);
        }
        if let Some(j) = journal {
            for (subject, &verdict) in &new_verdicts {
                let old = self.verdicts.get(subject).copied().unwrap_or(Verdict::Ok);
                if verdict != old {
                    journal_transition(j, now_ms, subject, old, verdict, &subjects);
                }
            }
            for (subject, &old) in &self.verdicts {
                if old != Verdict::Ok && !new_verdicts.contains_key(subject) {
                    journal_transition(j, now_ms, subject, old, Verdict::Ok, &subjects);
                }
            }
        }
        // Forget OK subjects so the map stays bounded.
        self.verdicts = new_verdicts
            .into_iter()
            .filter(|(_, v)| *v != Verdict::Ok)
            .collect();

        self.prev = Some(PrevSnapshot {
            at_ms: now_ms,
            samples: samples.into_iter().map(|s| (s.key, s.value)).collect(),
        });

        let report = HealthReport {
            at_ms: now_ms,
            overall,
            subjects,
            events,
        };
        self.latest = Some(report.clone());
        report
    }
}

fn journal_transition(
    journal: &Journal,
    now_ms: u64,
    subject: &str,
    old: Verdict,
    new: Verdict,
    subjects: &[SubjectHealth],
) {
    let severity = match new {
        Verdict::Ok => Severity::Info,
        Verdict::Degraded => Severity::Warn,
        Verdict::Critical => Severity::Error,
    };
    let mut detail = format!("{} -> {}", old.as_str(), new.as_str());
    if let Some(s) = subjects.iter().find(|s| s.subject == subject) {
        for f in s.findings.iter().filter(|f| f.verdict == new) {
            let _ = write!(detail, "; {}={}", f.rule, number(f.value));
        }
    }
    journal.record(
        JournalKind::HealthChange,
        severity,
        now_ms * 1_000,
        subject,
        &detail,
    );
}

fn evaluate_rule(
    rule: &Rule,
    samples: &[RegistrySample],
    prev: Option<&PrevSnapshot>,
    dt_s: Option<f64>,
    now_ms: u64,
    out: &mut Vec<Finding>,
) {
    let family: Vec<&RegistrySample> = samples
        .iter()
        .filter(|s| s.key.name == rule.metric)
        .collect();
    if family.is_empty() {
        return;
    }
    let subject_of = |key: &MetricKey| -> String {
        match &rule.subject_label {
            Some(label) => key
                .label(label)
                .map(str::to_string)
                .unwrap_or_else(|| rule.name.clone()),
            None => rule.name.clone(),
        }
    };
    let prev_value =
        |key: &MetricKey| -> Option<&SampleValue> { prev.and_then(|p| p.samples.get(key)) };
    let mut push = |subject: String, value: f64| {
        out.push(Finding {
            rule: rule.name.clone(),
            subject,
            value,
            verdict: rule.thresholds.judge(value),
        });
    };

    match &rule.input {
        RuleInput::GaugeValue => {
            for s in &family {
                if let SampleValue::Gauge(v) = s.value {
                    push(subject_of(&s.key), v as f64);
                }
            }
        }
        RuleInput::GaugeStalenessMs => {
            for s in &family {
                if let SampleValue::Gauge(v) = s.value {
                    let staleness = (now_ms as i64).saturating_sub(v).max(0);
                    push(subject_of(&s.key), staleness as f64);
                }
            }
        }
        RuleInput::RatePerSec => {
            let Some(dt) = dt_s.filter(|d| *d > 0.0) else {
                return;
            };
            for s in &family {
                if let SampleValue::Counter(v) = s.value {
                    let before = match prev_value(&s.key) {
                        Some(SampleValue::Counter(b)) => *b,
                        _ => 0,
                    };
                    push(subject_of(&s.key), v.saturating_sub(before) as f64 / dt);
                }
            }
        }
        RuleInput::QuantileUs(q) => {
            for s in &family {
                if let SampleValue::Histogram(h) = &s.value {
                    let window = match prev_value(&s.key) {
                        Some(SampleValue::Histogram(b)) => h.delta(b),
                        _ => (**h).clone(),
                    };
                    if window.count == 0 {
                        continue;
                    }
                    let v = window.quantile_bound_us(*q);
                    let v = if v == u64::MAX {
                        // Overflow bucket: judge as one past the last bound.
                        crate::registry::bucket_bound_us(crate::registry::HISTOGRAM_BUCKETS) as f64
                    } else {
                        v as f64
                    };
                    push(subject_of(&s.key), v);
                }
            }
        }
        RuleInput::Imbalance => {
            let mut loads: Vec<f64> = Vec::with_capacity(family.len());
            for s in &family {
                let load = match (&s.value, prev_value(&s.key)) {
                    (SampleValue::Counter(v), Some(SampleValue::Counter(b))) => {
                        v.saturating_sub(*b) as f64
                    }
                    (SampleValue::Counter(v), _) => *v as f64,
                    (SampleValue::Histogram(h), Some(SampleValue::Histogram(b))) => {
                        h.sum_us.saturating_sub(b.sum_us) as f64
                    }
                    (SampleValue::Histogram(h), _) => h.sum_us as f64,
                    (SampleValue::Gauge(v), _) => *v as f64,
                };
                loads.push(load);
            }
            if loads.len() < 2 {
                return;
            }
            let mean = loads.iter().sum::<f64>() / loads.len() as f64;
            if mean <= 0.0 {
                return;
            }
            let max = loads.iter().copied().fold(f64::MIN, f64::max);
            push(rule.name.clone(), max / mean);
        }
        RuleInput::Fraction { complement } => {
            let delta_sum = |name: &str| -> u64 {
                samples
                    .iter()
                    .filter(|s| s.key.name == name)
                    .map(|s| match (&s.value, prev_value(&s.key)) {
                        (SampleValue::Counter(v), Some(SampleValue::Counter(b))) => {
                            v.saturating_sub(*b)
                        }
                        (SampleValue::Counter(v), _) => *v,
                        _ => 0,
                    })
                    .sum()
            };
            let own = delta_sum(&rule.metric);
            let other = delta_sum(complement);
            let total = own + other;
            if total == 0 {
                return;
            }
            push(rule.name.clone(), own as f64 / total as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn engine_one(rule: Rule) -> HealthEngine {
        HealthEngine::new(vec![rule])
    }

    #[test]
    fn staleness_rule_flags_silent_subject() {
        let reg = Registry::new();
        reg.gauge("last_seen_ms", &[("camera", "0")]).set(9_000);
        reg.gauge("last_seen_ms", &[("camera", "1")]).set(1_000);
        let mut eng = engine_one(Rule::new(
            "heartbeat-staleness",
            "last_seen_ms",
            Some("camera"),
            RuleInput::GaugeStalenessMs,
            Thresholds::new(2_000.0, 4_000.0),
        ));
        let report = eng.evaluate(&reg, None, 10_000);
        assert_eq!(report.verdict_for("0"), Some(Verdict::Ok));
        assert_eq!(report.verdict_for("1"), Some(Verdict::Critical));
        assert_eq!(report.overall, Verdict::Critical);
    }

    #[test]
    fn rate_rule_needs_a_window() {
        let reg = Registry::new();
        let c = reg.counter("retries_total", &[("endpoint", "cam1")]);
        let mut eng = engine_one(Rule::new(
            "retransmit-rate",
            "retries_total",
            Some("endpoint"),
            RuleInput::RatePerSec,
            Thresholds::new(0.5, 50.0),
        ));
        // First evaluation: no baseline, no findings.
        let r0 = eng.evaluate(&reg, None, 1_000);
        assert!(r0.subjects.is_empty());
        assert_eq!(r0.overall, Verdict::Ok);
        // 10 retries over 2 s -> 5/s -> degraded.
        c.add(10);
        let r1 = eng.evaluate(&reg, None, 3_000);
        assert_eq!(r1.verdict_for("cam1"), Some(Verdict::Degraded));
        // Quiet window -> back to OK.
        let r2 = eng.evaluate(&reg, None, 5_000);
        assert_eq!(r2.verdict_for("cam1"), Some(Verdict::Ok));
    }

    #[test]
    fn quantile_rule_windows_histogram() {
        let reg = Registry::new();
        let h = reg.histogram("lat_us", &[]);
        for _ in 0..100 {
            h.observe_us(1_000);
        }
        let mut eng = engine_one(Rule::new(
            "latency-p99",
            "lat_us",
            None,
            RuleInput::QuantileUs(0.99),
            Thresholds::new(2_500_000.0, 5_000_000.0),
        ));
        let r0 = eng.evaluate(&reg, None, 1_000);
        assert_eq!(r0.verdict_for("latency-p99"), Some(Verdict::Ok));
        // A burst of 8 s observations dominates the next window's p99.
        for _ in 0..100 {
            h.observe_us(8_000_000);
        }
        let r1 = eng.evaluate(&reg, None, 2_000);
        assert_eq!(r1.verdict_for("latency-p99"), Some(Verdict::Critical));
    }

    #[test]
    fn transitions_are_journaled() {
        let reg = Registry::new();
        let g = reg.gauge("last_seen_ms", &[("camera", "2")]);
        g.set(1_000);
        let journal = Journal::new();
        let mut eng = engine_one(Rule::new(
            "heartbeat-staleness",
            "last_seen_ms",
            Some("camera"),
            RuleInput::GaugeStalenessMs,
            Thresholds::new(2_000.0, 4_000.0),
        ));
        eng.evaluate(&reg, Some(&journal), 1_500); // ok
        eng.evaluate(&reg, Some(&journal), 6_000); // critical
        g.set(7_000);
        eng.evaluate(&reg, Some(&journal), 7_000); // back to ok
        let kinds: Vec<(JournalKind, String)> = journal
            .recent(100)
            .into_iter()
            .map(|e| (e.kind, e.detail))
            .collect();
        assert_eq!(kinds.len(), 2);
        assert_eq!(kinds[0].0, JournalKind::HealthChange);
        assert!(kinds[0].1.starts_with("ok -> critical"), "{}", kinds[0].1);
        assert!(kinds[1].1.starts_with("critical -> ok"), "{}", kinds[1].1);
        // The healthy report carries the transition events recorded since
        // the previous evaluation.
        let latest = eng.latest().unwrap();
        assert_eq!(latest.events.len(), 1);
        assert_eq!(latest.events[0].kind, JournalKind::HealthChange);
    }

    #[test]
    fn imbalance_and_fraction_rules() {
        let reg = Registry::new();
        reg.counter("busy_us", &[("worker", "0")]).add(100);
        reg.counter("busy_us", &[("worker", "1")]).add(100);
        reg.counter("stepped_total", &[]).add(90);
        reg.counter("skipped_total", &[]).add(10);
        let mut eng = HealthEngine::new(vec![
            Rule::new(
                "worker-imbalance",
                "busy_us",
                None,
                RuleInput::Imbalance,
                Thresholds::new(1.5, 1.9),
            ),
            Rule::new(
                "sparse-active-fraction",
                "stepped_total",
                None,
                RuleInput::Fraction {
                    complement: "skipped_total".to_string(),
                },
                Thresholds::new(0.8, 0.95),
            ),
        ]);
        let r0 = eng.evaluate(&reg, None, 1_000);
        assert_eq!(r0.verdict_for("worker-imbalance"), Some(Verdict::Ok));
        assert_eq!(
            r0.verdict_for("sparse-active-fraction"),
            Some(Verdict::Degraded)
        );
        // Skew the next window hard onto worker 0.
        reg.counter("busy_us", &[("worker", "0")]).add(10_000);
        reg.counter("skipped_total", &[]).add(1_000);
        let r1 = eng.evaluate(&reg, None, 2_000);
        assert_eq!(r1.verdict_for("worker-imbalance"), Some(Verdict::Critical));
        assert_eq!(r1.verdict_for("sparse-active-fraction"), Some(Verdict::Ok));
    }

    #[test]
    fn report_json_is_deterministic_and_parses() {
        let reg = Registry::new();
        reg.gauge("last_seen_ms", &[("camera", "0")]).set(0);
        let mut eng = engine_one(Rule::new(
            "heartbeat-staleness",
            "last_seen_ms",
            Some("camera"),
            RuleInput::GaugeStalenessMs,
            Thresholds::new(2_000.0, 4_000.0),
        ));
        let report = eng.evaluate(&reg, None, 10_000);
        let json = report.to_json();
        assert_eq!(json, report.to_json());
        let doc = parse(&json).unwrap();
        assert_eq!(doc.get("overall").unwrap().as_str(), Some("critical"));
        let subjects = doc.get("subjects").unwrap().as_array().unwrap();
        assert_eq!(subjects[0].get("subject").unwrap().as_str(), Some("0"));
        let findings = subjects[0].get("findings").unwrap().as_array().unwrap();
        assert_eq!(
            findings[0].get("rule").unwrap().as_str(),
            Some("heartbeat-staleness")
        );
        assert_eq!(findings[0].get("value").unwrap().as_f64(), Some(10_000.0));
    }
}
