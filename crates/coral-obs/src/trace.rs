//! Structured trace layer with Chrome `trace_event` export.
//!
//! Events are stamped with both clocks: `ts` carries **simulation time**
//! (microseconds, the coordinate chrome://tracing / Perfetto lays out on
//! its timeline) and every event additionally records `wall_us`
//! (microseconds of host wall-clock since the tracer was created) in its
//! `args`. Per-vehicle causal traces use the Chrome process/thread axes:
//! the caller maps each camera (and the storage server) to a `pid` and
//! each vehicle to a `tid`, so one row in the viewer reads as one vehicle
//! moving through one camera's pipeline.
//!
//! The tracer is disabled by default; [`Tracer::is_enabled`] is a single
//! relaxed atomic load so instrumented hot paths cost nothing when tracing
//! is off.

use crate::json::{number, quote};
use crate::registry::Counter;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default cap on buffered trace events (≈1M); beyond it new events are
/// dropped and counted rather than growing without bound on city-scale
/// runs.
pub const DEFAULT_TRACE_CAPACITY: usize = 1_000_000;

/// A value attached to a trace event's `args` object.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One recorded trace event (Chrome `trace_event` shape).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (the label shown on the timeline slice).
    pub name: String,
    /// Category, e.g. `vehicle` or `runtime`.
    pub cat: String,
    /// Phase: `X` complete, `i` instant, `M` metadata.
    pub ph: char,
    /// Simulation timestamp in microseconds.
    pub ts_us: u64,
    /// Duration in simulation microseconds (complete events only).
    pub dur_us: Option<u64>,
    /// Process id (camera / server axis).
    pub pid: u64,
    /// Thread id (vehicle axis for causal traces).
    pub tid: u64,
    /// Extra key/value payload; always includes `wall_us`.
    pub args: Vec<(String, ArgValue)>,
}

struct TracerState {
    events: Vec<TraceEvent>,
    process_names: BTreeMap<u64, String>,
    thread_names: BTreeMap<(u64, u64), String>,
}

struct TracerShared {
    enabled: AtomicBool,
    epoch: Instant,
    capacity: AtomicUsize,
    dropped: AtomicU64,
    drop_counter: Mutex<Option<Counter>>,
    state: Mutex<TracerState>,
}

/// A shared, clonable trace recorder.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerShared>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("events", &self.len())
            .finish()
    }
}

impl Tracer {
    /// Creates a tracer, **disabled** until [`Tracer::set_enabled`].
    pub fn new() -> Self {
        Self {
            inner: Arc::new(TracerShared {
                enabled: AtomicBool::new(false),
                epoch: Instant::now(),
                capacity: AtomicUsize::new(DEFAULT_TRACE_CAPACITY),
                dropped: AtomicU64::new(0),
                drop_counter: Mutex::new(None),
                state: Mutex::new(TracerState {
                    events: Vec::new(),
                    process_names: BTreeMap::new(),
                    thread_names: BTreeMap::new(),
                }),
            }),
        }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Caps the event buffer at `cap` events (default
    /// [`DEFAULT_TRACE_CAPACITY`]); events beyond the cap are dropped and
    /// counted in [`Tracer::dropped_total`].
    pub fn set_capacity(&self, cap: usize) {
        self.inner.capacity.store(cap, Ordering::Relaxed);
    }

    /// Mirrors drops into a registry counter (conventionally
    /// `trace_events_dropped_total`) in addition to the local total.
    pub fn set_drop_counter(&self, counter: Counter) {
        *self.inner.drop_counter.lock().expect("tracer poisoned") = Some(counter);
    }

    /// Events rejected because the buffer was at capacity.
    pub fn dropped_total(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Whether events are currently recorded (one relaxed atomic load).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Number of recorded events (metadata rows excluded).
    pub fn len(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("tracer poisoned")
            .events
            .len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wall-clock microseconds since the tracer was created.
    pub fn wall_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Names a Chrome-trace process row (camera or server).
    pub fn process_name(&self, pid: u64, name: &str) {
        if !self.is_enabled() {
            return;
        }
        let mut g = self.inner.state.lock().expect("tracer poisoned");
        g.process_names.insert(pid, name.to_string());
    }

    /// Names a Chrome-trace thread row (a vehicle within a camera).
    pub fn thread_name(&self, pid: u64, tid: u64, name: &str) {
        if !self.is_enabled() {
            return;
        }
        let mut g = self.inner.state.lock().expect("tracer poisoned");
        g.thread_names
            .entry((pid, tid))
            .or_insert_with(|| name.to_string());
    }

    /// Records a complete (`ph:"X"`) span at sim time `ts_us` lasting
    /// `dur_us` sim microseconds.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
        args: &[(&str, ArgValue)],
    ) {
        self.record('X', name, cat, pid, tid, ts_us, Some(dur_us), args);
    }

    /// Records an instant (`ph:"i"`) event at sim time `ts_us`.
    pub fn instant(
        &self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: u64,
        args: &[(&str, ArgValue)],
    ) {
        self.record('i', name, cat, pid, tid, ts_us, None, args);
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        ph: char,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: u64,
        dur_us: Option<u64>,
        args: &[(&str, ArgValue)],
    ) {
        if !self.is_enabled() {
            return;
        }
        let wall = self.wall_us();
        let mut all_args: Vec<(String, ArgValue)> = Vec::with_capacity(args.len() + 1);
        all_args.push(("wall_us".to_string(), ArgValue::U64(wall)));
        for (k, v) in args {
            all_args.push(((*k).to_string(), v.clone()));
        }
        let ev = TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph,
            ts_us,
            dur_us,
            pid,
            tid,
            args: all_args,
        };
        let cap = self.inner.capacity.load(Ordering::Relaxed);
        {
            let mut g = self.inner.state.lock().expect("tracer poisoned");
            if g.events.len() < cap {
                g.events.push(ev);
                return;
            }
        }
        self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self
            .inner
            .drop_counter
            .lock()
            .expect("tracer poisoned")
            .as_ref()
        {
            c.inc();
        }
    }

    /// Runs `f` over every recorded event, in recording order.
    pub fn for_each(&self, mut f: impl FnMut(&TraceEvent)) {
        let g = self.inner.state.lock().expect("tracer poisoned");
        for ev in &g.events {
            f(ev);
        }
    }

    /// Exports everything as a Chrome `trace_event` JSON array, sorted by
    /// `ts` (stable on ties), with `M` metadata rows naming processes and
    /// threads first.
    pub fn export_chrome(&self) -> String {
        let g = self.inner.state.lock().expect("tracer poisoned");
        let mut out = String::from("[");
        let mut first = true;
        for (pid, name) in &g.process_names {
            push_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"args\": {{\"name\": {}}}}}",
                quote(name)
            );
        }
        for ((pid, tid), name) in &g.thread_names {
            push_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"name\": {}}}}}",
                quote(name)
            );
        }
        let mut order: Vec<usize> = (0..g.events.len()).collect();
        order.sort_by_key(|&i| (g.events[i].ts_us, i));
        for i in order {
            let ev = &g.events[i];
            push_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\": {}, \"cat\": {}, \"ph\": \"{}\", \"ts\": {}, ",
                quote(&ev.name),
                quote(&ev.cat),
                ev.ph,
                ev.ts_us
            );
            if let Some(dur) = ev.dur_us {
                let _ = write!(out, "\"dur\": {dur}, ");
            }
            let _ = write!(
                out,
                "\"pid\": {}, \"tid\": {}, \"args\": {{",
                ev.pid, ev.tid
            );
            for (j, (k, v)) in ev.args.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&quote(k));
                out.push_str(": ");
                match v {
                    ArgValue::U64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    ArgValue::F64(x) => out.push_str(&number(*x)),
                    ArgValue::Str(s) => out.push_str(&quote(s)),
                }
            }
            out.push_str("}}");
        }
        out.push_str("]\n");
        out
    }
}

fn push_sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push_str(",\n ");
    } else {
        out.push('\n');
    }
    *first = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.complete("Detect", "vehicle", 1, 7, 100, 10, &[]);
        t.instant("Inform", "vehicle", 1, 7, 110, &[]);
        assert!(t.is_empty());
        assert_eq!(t.export_chrome().trim(), "[]");
    }

    #[test]
    fn export_is_valid_chrome_json() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.process_name(1, "camera-0");
        t.thread_name(1, 7, "vehicle-7");
        t.complete(
            "Detect",
            "vehicle",
            1,
            7,
            200,
            50,
            &[("camera", ArgValue::U64(0))],
        );
        t.instant(
            "InformSend",
            "vehicle",
            1,
            7,
            120,
            &[("to", "cam-1".into())],
        );

        let json = t.export_chrome();
        let doc = parse(&json).unwrap();
        let events = doc.as_array().unwrap();
        assert_eq!(events.len(), 4); // 2 metadata + 2 events

        // Metadata first.
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            events[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("camera-0")
        );
        // Non-metadata events are sorted by ts: instant (120) before complete (200).
        assert_eq!(events[2].get("name").unwrap().as_str(), Some("InformSend"));
        assert_eq!(events[2].get("ts").unwrap().as_u64(), Some(120));
        let detect = &events[3];
        assert_eq!(detect.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(detect.get("dur").unwrap().as_u64(), Some(50));
        assert_eq!(detect.get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(detect.get("tid").unwrap().as_u64(), Some(7));
        // Both clocks present.
        assert!(detect
            .get("args")
            .unwrap()
            .get("wall_us")
            .unwrap()
            .as_u64()
            .is_some());
        assert_eq!(
            detect.get("args").unwrap().get("camera").unwrap().as_u64(),
            Some(0)
        );
    }

    #[test]
    fn capacity_bounds_buffer_and_counts_drops() {
        let t = Tracer::new();
        t.set_enabled(true);
        t.set_capacity(3);
        let dropped = Counter::default();
        t.set_drop_counter(dropped.clone());
        for i in 0..10u64 {
            t.instant("E", "c", 1, 1, i, &[]);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped_total(), 7);
        assert_eq!(dropped.get(), 7);
        // The first three events survived, not the last three.
        let mut seen = Vec::new();
        t.for_each(|ev| seen.push(ev.ts_us));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn shared_across_threads() {
        let t = Tracer::new();
        t.set_enabled(true);
        let mut handles = Vec::new();
        for pid in 0..4u64 {
            let tt = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    tt.complete("S", "c", pid, i, i, 1, &[]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 400);
        assert!(parse(&t.export_chrome()).is_ok());
    }
}
