//! The metrics registry: named counters, gauges, and log-scale histograms.
//!
//! Handles are cheap `Arc`-backed atomics so hot paths (per-frame pipeline
//! stages, per-envelope transport sends) pay one atomic op per update and
//! never touch the registry lock after creation. Snapshots export to a
//! deterministic JSON document and to the Prometheus text exposition
//! format; metric/label ordering is `BTreeMap`-stable so exports diff
//! cleanly across runs.

use crate::json::{number, quote};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of finite histogram buckets; bucket `i` has upper bound
/// `2^i` µs, so the range spans 1 µs .. ~17.9 min before overflow.
pub const HISTOGRAM_BUCKETS: usize = 31;

/// A metric identity: name plus sorted `key=value` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Metric name, e.g. `pipeline_stage_latency_us`.
    pub name: String,
    /// Label pairs, kept sorted by key for deterministic export.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    fn prometheus_suffix(&self, extra: Option<(&str, &str)>) -> String {
        let mut pairs: Vec<(&str, &str)> = self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        if let Some(e) = extra {
            pairs.push(e);
        }
        if pairs.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"");
            prometheus_escape_into(&mut out, v);
            out.push('"');
        }
        out.push('}');
        out
    }

    /// Returns the value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Escapes a Prometheus label value: exactly backslash, double quote and
/// newline per the text exposition format (unlike JSON, tab and other
/// control characters pass through verbatim).
fn prometheus_escape_into(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

/// Escapes `# HELP` text: backslash and newline only (quotes are legal
/// there, per the exposition format).
fn prometheus_escape_help_into(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that can move in both directions.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-scale histogram of microsecond values.
///
/// Bucket `i` (0-based) covers values `<= 2^i` µs; values above the last
/// finite bound land in the overflow bucket. All updates are relaxed
/// atomics, safe to share across camera threads.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum_us: AtomicU64,
}

/// Index of the finite bucket for `value_us`, or `HISTOGRAM_BUCKETS` for
/// overflow.
#[inline]
fn bucket_index(value_us: u64) -> usize {
    // Bucket i holds values <= 2^i, so index = ceil(log2(v)) clamped.
    if value_us <= 1 {
        return 0;
    }
    let idx = 64 - (value_us - 1).leading_zeros() as usize;
    idx.min(HISTOGRAM_BUCKETS)
}

/// Upper bound of finite bucket `i`, in microseconds.
#[inline]
pub fn bucket_bound_us(i: usize) -> u64 {
    1u64 << i
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                overflow: AtomicU64::new(0),
                count: AtomicU64::new(0),
                sum_us: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// Records one observation in microseconds.
    #[inline]
    pub fn observe_us(&self, value_us: u64) {
        let idx = bucket_index(value_us);
        if idx < HISTOGRAM_BUCKETS {
            self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum_us.fetch_add(value_us, Ordering::Relaxed);
    }

    /// Records a wall-clock duration.
    #[inline]
    pub fn observe(&self, d: std::time::Duration) {
        self.observe_us(d.as_micros() as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.inner.sum_us.load(Ordering::Relaxed)
    }

    /// Folds a [`LocalHistogram`] batch into this histogram.
    pub fn merge_local(&self, local: &LocalHistogram) {
        for (i, &c) in local.buckets.iter().enumerate() {
            if c > 0 {
                self.inner.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        if local.overflow > 0 {
            self.inner
                .overflow
                .fetch_add(local.overflow, Ordering::Relaxed);
        }
        if local.count > 0 {
            self.inner.count.fetch_add(local.count, Ordering::Relaxed);
            self.inner.sum_us.fetch_add(local.sum_us, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> HistogramData {
        HistogramData {
            buckets: std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed)),
            overflow: self.inner.overflow.load(Ordering::Relaxed),
            count: self.count(),
            sum_us: self.sum_us(),
        }
    }
}

/// A thread-local (non-atomic) histogram for single-owner hot loops;
/// merge into a shared [`Histogram`] with [`Histogram::merge_local`].
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    overflow: u64,
    count: u64,
    sum_us: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            overflow: 0,
            count: 0,
            sum_us: 0,
        }
    }
}

impl LocalHistogram {
    /// Creates an empty local histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation in microseconds.
    #[inline]
    pub fn observe_us(&mut self, value_us: u64) {
        let idx = bucket_index(value_us);
        if idx < HISTOGRAM_BUCKETS {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum_us += value_us;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Approximate quantile in microseconds from the bucket boundaries
    /// (upper bound of the bucket holding the q-th sample).
    pub fn quantile_bound_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_bound_us(i);
            }
        }
        u64::MAX
    }
}

/// A point-in-time copy of one histogram's state, as captured by
/// [`Registry::collect`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramData {
    /// Per-bucket counts; bucket `i` covers values `<= 2^i` µs.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Observations above the last finite bound.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, in microseconds.
    pub sum_us: u64,
}

impl HistogramData {
    /// Pointwise `self - earlier`, saturating at zero: the observations
    /// recorded between two snapshots. Used for windowed quantiles.
    pub fn delta(&self, earlier: &HistogramData) -> HistogramData {
        HistogramData {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            overflow: self.overflow.saturating_sub(earlier.overflow),
            count: self.count.saturating_sub(earlier.count),
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
        }
    }

    /// Approximate quantile in microseconds (upper bound of the bucket
    /// holding the q-th sample; `u64::MAX` if it landed in overflow).
    pub fn quantile_bound_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_bound_us(i);
            }
        }
        u64::MAX
    }
}

/// The value of one metric series inside a [`RegistrySample`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's full bucket state (boxed: the bucket array dwarfs
    /// the scalar variants).
    Histogram(Box<HistogramData>),
}

/// One metric series captured by [`Registry::collect`].
#[derive(Debug, Clone)]
pub struct RegistrySample {
    /// The series identity (name + sorted labels).
    pub key: MetricKey,
    /// The captured value.
    pub value: SampleValue,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, Counter>,
    gauges: BTreeMap<MetricKey, Gauge>,
    histograms: BTreeMap<MetricKey, Histogram>,
    help: BTreeMap<String, String>,
}

/// The shared metrics registry.
///
/// Cloning shares the underlying store. Handle creation takes a lock;
/// updates on the returned handles do not.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock().expect("registry poisoned");
        f.debug_struct("Registry")
            .field("counters", &g.counters.len())
            .field("gauges", &g.gauges.len())
            .field("histograms", &g.histograms.len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating if needed) the counter for `name`/`labels`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        self.inner
            .lock()
            .expect("registry poisoned")
            .counters
            .entry(key)
            .or_default()
            .clone()
    }

    /// Returns (creating if needed) the gauge for `name`/`labels`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        self.inner
            .lock()
            .expect("registry poisoned")
            .gauges
            .entry(key)
            .or_default()
            .clone()
    }

    /// Returns (creating if needed) the histogram for `name`/`labels`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        self.inner
            .lock()
            .expect("registry poisoned")
            .histograms
            .entry(key)
            .or_default()
            .clone()
    }

    /// Registers human-readable help text for a metric family; rendered
    /// as a `# HELP` line by [`Registry::render_prometheus`].
    pub fn describe(&self, name: &str, help: &str) {
        self.inner
            .lock()
            .expect("registry poisoned")
            .help
            .insert(name.to_string(), help.to_string());
    }

    /// Captures every series as a structured sample, in deterministic
    /// (counters, gauges, histograms; BTreeMap key) order. This is the
    /// read path the health engine evaluates rules over.
    pub fn collect(&self) -> Vec<RegistrySample> {
        let g = self.inner.lock().expect("registry poisoned");
        let mut out = Vec::with_capacity(g.counters.len() + g.gauges.len() + g.histograms.len());
        for (key, c) in &g.counters {
            out.push(RegistrySample {
                key: key.clone(),
                value: SampleValue::Counter(c.get()),
            });
        }
        for (key, gauge) in &g.gauges {
            out.push(RegistrySample {
                key: key.clone(),
                value: SampleValue::Gauge(gauge.get()),
            });
        }
        for (key, h) in &g.histograms {
            out.push(RegistrySample {
                key: key.clone(),
                value: SampleValue::Histogram(Box::new(h.snapshot())),
            });
        }
        out
    }

    /// Reads a counter's current value, if it exists.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        self.inner
            .lock()
            .expect("registry poisoned")
            .counters
            .get(&key)
            .map(Counter::get)
    }

    /// Serializes the whole registry to a deterministic JSON document:
    /// `{"counters": [...], "gauges": [...], "histograms": [...]}`.
    pub fn snapshot_json(&self) -> String {
        let g = self.inner.lock().expect("registry poisoned");
        let mut out = String::from("{\n  \"counters\": [");
        let mut first = true;
        for (key, c) in &g.counters {
            push_entry_head(&mut out, &mut first, key);
            let _ = write!(out, "\"value\": {}}}", c.get());
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        first = true;
        for (key, gauge) in &g.gauges {
            push_entry_head(&mut out, &mut first, key);
            let _ = write!(out, "\"value\": {}}}", gauge.get());
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        first = true;
        for (key, h) in &g.histograms {
            let s = h.snapshot();
            push_entry_head(&mut out, &mut first, key);
            let _ = write!(out, "\"count\": {}, \"sum_us\": {}, ", s.count, s.sum_us);
            out.push_str("\"buckets\": [");
            // Trailing zero buckets are elided; `le` bounds are implicit
            // powers of two so only non-empty prefixes are stored.
            let last = s.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
            for (i, &c) in s.buckets[..last].iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "], \"overflow\": {}}}", s.overflow);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the registry in Prometheus text exposition format.
    ///
    /// Histograms follow the standard convention: cumulative
    /// `<name>_bucket{le="..."}` series with bounds in **seconds**, a
    /// `+Inf` bucket, `<name>_sum` (seconds) and `<name>_count`.
    pub fn render_prometheus(&self) -> String {
        let g = self.inner.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut last_name = String::new();
        for (key, c) in &g.counters {
            if key.name != last_name {
                write_family_header(&mut out, &key.name, "counter", &g.help);
                last_name.clone_from(&key.name);
            }
            let _ = writeln!(
                out,
                "{}{} {}",
                key.name,
                key.prometheus_suffix(None),
                c.get()
            );
        }
        last_name.clear();
        for (key, gauge) in &g.gauges {
            if key.name != last_name {
                write_family_header(&mut out, &key.name, "gauge", &g.help);
                last_name.clone_from(&key.name);
            }
            let _ = writeln!(
                out,
                "{}{} {}",
                key.name,
                key.prometheus_suffix(None),
                gauge.get()
            );
        }
        last_name.clear();
        for (key, h) in &g.histograms {
            let s = h.snapshot();
            if key.name != last_name {
                write_family_header(&mut out, &key.name, "histogram", &g.help);
                last_name.clone_from(&key.name);
            }
            let mut cumulative = 0u64;
            for (i, &c) in s.buckets.iter().enumerate() {
                cumulative += c;
                // Skip empty leading/intermediate buckets only when nothing
                // has accumulated yet, to keep the series compact.
                if cumulative == 0 && i < HISTOGRAM_BUCKETS - 1 {
                    continue;
                }
                let le = bucket_bound_us(i) as f64 / 1e6;
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    key.name,
                    key.prometheus_suffix(Some(("le", &number(le)))),
                    cumulative
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                key.name,
                key.prometheus_suffix(Some(("le", "+Inf"))),
                s.count
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                key.name,
                key.prometheus_suffix(None),
                number(s.sum_us as f64 / 1e6)
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                key.name,
                key.prometheus_suffix(None),
                s.count
            );
        }
        out
    }
}

fn write_family_header(out: &mut String, name: &str, kind: &str, help: &BTreeMap<String, String>) {
    if let Some(text) = help.get(name) {
        let _ = write!(out, "# HELP {name} ");
        prometheus_escape_help_into(out, text);
        out.push('\n');
    }
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn push_entry_head(out: &mut String, first: &mut bool, key: &MetricKey) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n    {\"name\": ");
    out.push_str(&quote(&key.name));
    out.push_str(", \"labels\": {");
    for (i, (k, v)) in key.labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&quote(k));
        out.push_str(": ");
        out.push_str(&quote(v));
    }
    out.push_str("}, ");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0); // <= 2^0
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2); // <= 2^2
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 30), 30);
        assert_eq!(bucket_index((1 << 30) + 1), HISTOGRAM_BUCKETS); // overflow
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS);
    }

    #[test]
    fn counters_and_gauges_share_handles() {
        let reg = Registry::new();
        let a = reg.counter("frames_total", &[("camera", "0")]);
        let b = reg.counter("frames_total", &[("camera", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(
            reg.counter_value("frames_total", &[("camera", "0")]),
            Some(3)
        );
        assert_eq!(reg.counter_value("frames_total", &[("camera", "1")]), None);

        let q = reg.gauge("queue_depth", &[]);
        q.set(5);
        q.add(-2);
        assert_eq!(q.get(), 3);
    }

    #[test]
    fn label_order_is_canonical() {
        let k1 = MetricKey::new("m", &[("b", "2"), ("a", "1")]);
        let k2 = MetricKey::new("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(k1, k2);
    }

    #[test]
    fn histogram_counts_and_merge() {
        let h = Histogram::default();
        h.observe_us(1);
        h.observe_us(100);
        h.observe_us(100_000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 100_101);

        let mut local = LocalHistogram::new();
        for v in [10u64, 20, 30] {
            local.observe_us(v);
        }
        assert_eq!(local.mean_us(), 20.0);
        h.merge_local(&local);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_us(), 100_161);
    }

    #[test]
    fn local_histogram_quantile_bound() {
        let mut h = LocalHistogram::new();
        for v in 1..=100u64 {
            h.observe_us(v);
        }
        // p50 of 1..=100 is ~50, whose bucket bound is 64.
        assert_eq!(h.quantile_bound_us(0.5), 64);
        assert_eq!(h.quantile_bound_us(1.0), 128);
        assert_eq!(LocalHistogram::new().quantile_bound_us(0.5), 0);
    }

    #[test]
    fn json_snapshot_parses_and_is_deterministic() {
        let reg = Registry::new();
        reg.counter("b_total", &[]).add(7);
        reg.counter("a_total", &[("side", "north")]).add(1);
        reg.gauge("depth", &[]).set(-4);
        let h = reg.histogram("lat_us", &[("stage", "detect")]);
        h.observe_us(3);
        h.observe_us(9);

        let s1 = reg.snapshot_json();
        let s2 = reg.snapshot_json();
        assert_eq!(s1, s2);

        let doc = parse(&s1).unwrap();
        let counters = doc.get("counters").unwrap().as_array().unwrap();
        // BTreeMap ordering: a_total before b_total.
        assert_eq!(counters[0].get("name").unwrap().as_str(), Some("a_total"));
        assert_eq!(counters[1].get("value").unwrap().as_u64(), Some(7));
        let gauges = doc.get("gauges").unwrap().as_array().unwrap();
        assert_eq!(gauges[0].get("value").unwrap().as_f64(), Some(-4.0));
        let hists = doc.get("histograms").unwrap().as_array().unwrap();
        assert_eq!(hists[0].get("count").unwrap().as_u64(), Some(2));
        assert_eq!(hists[0].get("sum_us").unwrap().as_u64(), Some(12));
        let buckets = hists[0].get("buckets").unwrap().as_array().unwrap();
        // 3 -> bucket 2 (<=4); 9 -> bucket 4 (<=16); trailing zeros elided.
        assert_eq!(buckets.len(), 5);
        assert_eq!(buckets[2].as_u64(), Some(1));
        assert_eq!(buckets[4].as_u64(), Some(1));
    }

    #[test]
    fn prometheus_rendering() {
        let reg = Registry::new();
        reg.counter("sent_total", &[("peer", "cam-1")]).add(5);
        let h = reg.histogram("stage_latency", &[("stage", "detect")]);
        h.observe_us(1_000);
        h.observe_us(2_000_000);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE sent_total counter"));
        assert!(text.contains("sent_total{peer=\"cam-1\"} 5"));
        assert!(text.contains("# TYPE stage_latency histogram"));
        // 1000 us -> bucket <= 1024 us = 0.001024 s (cumulative 1).
        assert!(text.contains("stage_latency_bucket{stage=\"detect\",le=\"0.001024\"} 1"));
        // 2s -> bucket <= 2^21 us = 2.097152 s (cumulative 2).
        assert!(text.contains("stage_latency_bucket{stage=\"detect\",le=\"2.097152\"} 2"));
        assert!(text.contains("stage_latency_bucket{stage=\"detect\",le=\"+Inf\"} 2"));
        assert!(text.contains("stage_latency_sum{stage=\"detect\"} 2.001"));
        assert!(text.contains("stage_latency_count{stage=\"detect\"} 2"));
    }

    /// Minimal parser for one Prometheus sample line: extracts the label
    /// values back out, undoing the exposition-format escapes.
    fn parse_label_values(line: &str) -> Vec<String> {
        let open = line.find('{').unwrap();
        let close = line.rfind('}').unwrap();
        let body = &line[open + 1..close];
        let mut values = Vec::new();
        let mut chars = body.chars().peekable();
        while chars.peek().is_some() {
            // Skip `key="`.
            for c in chars.by_ref() {
                if c == '"' {
                    break;
                }
            }
            let mut value = String::new();
            while let Some(c) = chars.next() {
                match c {
                    '"' => break,
                    '\\' => match chars.next() {
                        Some('n') => value.push('\n'),
                        Some(other) => value.push(other),
                        None => {}
                    },
                    other => value.push(other),
                }
            }
            values.push(value);
            // Skip the comma separator, if any.
            if chars.peek() == Some(&',') {
                chars.next();
            }
        }
        values
    }

    #[test]
    fn prometheus_label_escaping_round_trips() {
        let reg = Registry::new();
        let nasty = "path\\to\"cam\"\nline2\ttab";
        reg.counter("weird_total", &[("p", nasty), ("q", "plain")])
            .inc();
        let text = reg.render_prometheus();
        let line = text
            .lines()
            .find(|l| l.starts_with("weird_total{"))
            .expect("sample line");
        // Exactly backslash, quote and newline are escaped; the raw tab
        // must survive unescaped (Prometheus spec, unlike JSON).
        assert!(line.contains("\\\\"), "backslash escaped: {line}");
        assert!(line.contains("\\\""), "quote escaped: {line}");
        assert!(line.contains("\\n"), "newline escaped: {line}");
        assert!(line.contains('\t'), "tab passes through: {line}");
        assert_eq!(
            parse_label_values(line),
            vec![nasty.to_string(), "plain".to_string()]
        );
    }

    #[test]
    fn prometheus_help_lines() {
        let reg = Registry::new();
        reg.describe("frames_total", "Frames captured per camera");
        reg.describe("depth", "Queue depth \\ with\nnewline");
        reg.counter("frames_total", &[("camera", "0")]).inc();
        reg.counter("frames_total", &[("camera", "1")]).inc();
        reg.gauge("depth", &[]).set(3);
        reg.counter("undescribed_total", &[]).inc();
        let text = reg.render_prometheus();
        // HELP precedes TYPE, once per family even with several series.
        let help_pos = text
            .find("# HELP frames_total Frames captured per camera")
            .unwrap();
        let type_pos = text.find("# TYPE frames_total counter").unwrap();
        assert!(help_pos < type_pos);
        assert_eq!(text.matches("# HELP frames_total").count(), 1);
        assert!(text.contains("# HELP depth Queue depth \\\\ with\\nnewline"));
        assert!(!text.contains("# HELP undescribed_total"));
        assert!(text.contains("# TYPE undescribed_total counter"));
    }

    #[test]
    fn collect_returns_structured_samples() {
        let reg = Registry::new();
        reg.counter("c_total", &[("k", "v")]).add(3);
        reg.gauge("g", &[]).set(-2);
        let h = reg.histogram("h_us", &[]);
        h.observe_us(5);
        h.observe_us(500);
        let samples = reg.collect();
        assert_eq!(samples.len(), 3);
        assert!(matches!(samples[0].value, SampleValue::Counter(3)));
        assert_eq!(samples[0].key.label("k"), Some("v"));
        assert!(matches!(samples[1].value, SampleValue::Gauge(-2)));
        match &samples[2].value {
            SampleValue::Histogram(data) => {
                assert_eq!(data.count, 2);
                assert_eq!(data.sum_us, 505);
                assert_eq!(data.quantile_bound_us(1.0), 512);
                let delta = data.delta(&HistogramData::default());
                assert_eq!(delta.count, 2);
                assert_eq!(data.delta(data).count, 0);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_updates() {
        let reg = Registry::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = reg.counter("hits", &[]);
            let h = reg.histogram("lat", &[]);
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    c.inc();
                    h.observe_us(i);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(reg.counter_value("hits", &[]), Some(4_000));
        assert_eq!(reg.histogram("lat", &[]).count(), 4_000);
    }
}
