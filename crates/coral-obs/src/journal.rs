//! The flight recorder: a bounded ring-buffer journal of structured
//! operational events.
//!
//! Where the [`crate::Registry`] answers *how much* and the
//! [`crate::Tracer`] answers *in what order per vehicle*, the journal
//! answers *what happened to the system*: node kills and restores,
//! retransmission/backoff escalation, partitions opening and healing,
//! handoff-deadline misses, sparse-stepping anomalies, and health-verdict
//! transitions. Each event carries a monotonically increasing sequence
//! number and **both clocks** — simulation microseconds and host
//! wall-clock microseconds since the journal was created.
//!
//! The ring is bounded: when it wraps, the oldest events are evicted and
//! counted in [`Journal::dropped_total`] (optionally mirrored into a
//! registry counter). Recording takes one short mutex hold with no
//! allocation inside the lock, cheap enough for fault-path call sites.
//!
//! [`Journal::export_jsonl`] is byte-deterministic for a deterministic
//! simulation: it serializes everything *except* the wall-clock stamp,
//! so same-seed runs export identical bytes. Use
//! [`Journal::export_jsonl_full`] when the wall clock matters (live ops).

use crate::json::quote;
use crate::registry::Counter;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring capacity, in events.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

/// What class of operational event happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JournalKind {
    /// A node was killed (scheduled failure or crash).
    NodeKill,
    /// A previously killed node came back.
    NodeRestore,
    /// A frame was retransmitted after an ack deadline lapsed.
    Retransmit,
    /// Retransmission backoff escalated past half the attempt budget.
    BackoffEscalation,
    /// The reliable layer gave up on a frame (attempt budget exhausted).
    DeliveryAbandoned,
    /// A network partition opened towards a peer.
    PartitionOpen,
    /// A network partition healed.
    PartitionHeal,
    /// An inform arrived after the handoff deadline.
    HandoffDeadlineMiss,
    /// Sparse stepping behaved anomalously (active-fraction spike).
    SparseAnomaly,
    /// A health verdict changed for some subject.
    HealthChange,
}

impl JournalKind {
    /// Stable snake_case name used in the JSONL export.
    pub fn as_str(&self) -> &'static str {
        match self {
            JournalKind::NodeKill => "node_kill",
            JournalKind::NodeRestore => "node_restore",
            JournalKind::Retransmit => "retransmit",
            JournalKind::BackoffEscalation => "backoff_escalation",
            JournalKind::DeliveryAbandoned => "delivery_abandoned",
            JournalKind::PartitionOpen => "partition_open",
            JournalKind::PartitionHeal => "partition_heal",
            JournalKind::HandoffDeadlineMiss => "handoff_deadline_miss",
            JournalKind::SparseAnomaly => "sparse_anomaly",
            JournalKind::HealthChange => "health_change",
        }
    }
}

/// How bad the event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Expected operational noise (a single retransmit, a heal).
    Info,
    /// Something is degrading (backoff escalation, sparse anomaly).
    Warn,
    /// Something is broken (node kill, abandoned delivery, SLO miss).
    Error,
}

impl Severity {
    /// Stable lowercase name used in the JSONL export.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One recorded journal event.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEvent {
    /// Monotonic sequence number, assigned at record time; survives ring
    /// wrap (the count of evicted predecessors is `seq - position`).
    pub seq: u64,
    /// Simulation time in microseconds.
    pub sim_us: u64,
    /// Host wall-clock microseconds since the journal was created.
    pub wall_us: u64,
    /// Event class.
    pub kind: JournalKind,
    /// Event severity.
    pub severity: Severity,
    /// Who it happened to, e.g. `cam3`, `server`, `cam3->server`.
    pub subject: String,
    /// Free-form human-readable detail (pre-formatted by the caller).
    pub detail: String,
}

impl JournalEvent {
    /// Serializes one JSONL line. `include_wall` adds the wall-clock
    /// stamp; leave it off for byte-deterministic exports.
    pub fn to_json_line(&self, include_wall: bool) -> String {
        let mut out = String::with_capacity(96 + self.subject.len() + self.detail.len());
        let _ = write!(out, "{{\"seq\": {}, \"sim_us\": {}", self.seq, self.sim_us);
        if include_wall {
            let _ = write!(out, ", \"wall_us\": {}", self.wall_us);
        }
        let _ = write!(
            out,
            ", \"kind\": \"{}\", \"severity\": \"{}\", \"subject\": {}, \"detail\": {}}}",
            self.kind.as_str(),
            self.severity.as_str(),
            quote(&self.subject),
            quote(&self.detail)
        );
        out
    }
}

struct Ring {
    buf: VecDeque<JournalEvent>,
    next_seq: u64,
}

struct JournalShared {
    epoch: Instant,
    capacity: usize,
    dropped: AtomicU64,
    drop_counter: Mutex<Option<Counter>>,
    ring: Mutex<Ring>,
}

/// A shared, clonable flight recorder. Cloning shares the ring.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<JournalShared>,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("len", &self.len())
            .field("dropped", &self.dropped_total())
            .finish()
    }
}

impl Journal {
    /// Creates a journal with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// Creates a journal holding at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Arc::new(JournalShared {
                epoch: Instant::now(),
                capacity,
                dropped: AtomicU64::new(0),
                drop_counter: Mutex::new(None),
                ring: Mutex::new(Ring {
                    buf: VecDeque::with_capacity(capacity.min(1024)),
                    next_seq: 0,
                }),
            }),
        }
    }

    /// Mirrors evictions into a registry counter (conventionally
    /// `journal_events_dropped_total`) in addition to the local total.
    pub fn set_drop_counter(&self, counter: Counter) {
        *self.inner.drop_counter.lock().expect("journal poisoned") = Some(counter);
    }

    /// Records one event and returns its sequence number.
    pub fn record(
        &self,
        kind: JournalKind,
        severity: Severity,
        sim_us: u64,
        subject: &str,
        detail: &str,
    ) -> u64 {
        let wall_us = self.inner.epoch.elapsed().as_micros() as u64;
        // Build the event outside the lock; the critical section is two
        // VecDeque ops.
        let mut ev = JournalEvent {
            seq: 0,
            sim_us,
            wall_us,
            kind,
            severity,
            subject: subject.to_string(),
            detail: detail.to_string(),
        };
        let (seq, evicted) = {
            let mut g = self.inner.ring.lock().expect("journal poisoned");
            let seq = g.next_seq;
            g.next_seq += 1;
            ev.seq = seq;
            let evicted = if g.buf.len() == self.inner.capacity {
                g.buf.pop_front();
                true
            } else {
                false
            };
            g.buf.push_back(ev);
            (seq, evicted)
        };
        if evicted {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = self
                .inner
                .drop_counter
                .lock()
                .expect("journal poisoned")
                .as_ref()
            {
                c.inc();
            }
        }
        seq
    }

    /// Number of events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.inner.ring.lock().expect("journal poisoned").buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (equals the next sequence number).
    pub fn recorded_total(&self) -> u64 {
        self.inner.ring.lock().expect("journal poisoned").next_seq
    }

    /// Events evicted by ring wrap.
    pub fn dropped_total(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The last `n` retained events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<JournalEvent> {
        let g = self.inner.ring.lock().expect("journal poisoned");
        let skip = g.buf.len().saturating_sub(n);
        g.buf.iter().skip(skip).cloned().collect()
    }

    /// Retained events with `seq >= from_seq`, oldest first.
    pub fn since(&self, from_seq: u64) -> Vec<JournalEvent> {
        let g = self.inner.ring.lock().expect("journal poisoned");
        g.buf
            .iter()
            .filter(|ev| ev.seq >= from_seq)
            .cloned()
            .collect()
    }

    /// Runs `f` over every retained event, oldest first.
    pub fn for_each(&self, mut f: impl FnMut(&JournalEvent)) {
        let g = self.inner.ring.lock().expect("journal poisoned");
        for ev in &g.buf {
            f(ev);
        }
    }

    /// Exports the retained events as JSONL **without** wall-clock
    /// stamps: byte-deterministic across same-seed runs.
    pub fn export_jsonl(&self) -> String {
        self.export(false)
    }

    /// Exports the retained events as JSONL including the wall-clock
    /// stamp on every line.
    pub fn export_jsonl_full(&self) -> String {
        self.export(true)
    }

    fn export(&self, include_wall: bool) -> String {
        // Clone out under the lock, serialize outside it.
        let events: Vec<JournalEvent> = {
            let g = self.inner.ring.lock().expect("journal poisoned");
            g.buf.iter().cloned().collect()
        };
        let mut out = String::new();
        for ev in &events {
            out.push_str(&ev.to_json_line(include_wall));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn records_and_exports() {
        let j = Journal::new();
        let s0 = j.record(
            JournalKind::NodeKill,
            Severity::Error,
            1_000_000,
            "cam2",
            "scheduled kill",
        );
        let s1 = j.record(
            JournalKind::NodeRestore,
            Severity::Info,
            2_000_000,
            "cam2",
            "restored",
        );
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped_total(), 0);

        let text = j.export_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = parse(lines[0]).unwrap();
        assert_eq!(first.get("kind").unwrap().as_str(), Some("node_kill"));
        assert_eq!(first.get("subject").unwrap().as_str(), Some("cam2"));
        assert_eq!(first.get("sim_us").unwrap().as_u64(), Some(1_000_000));
        assert!(
            first.get("wall_us").is_none(),
            "deterministic export has no wall clock"
        );
        let full = j.export_jsonl_full();
        let first_full = parse(full.lines().next().unwrap()).unwrap();
        assert!(first_full.get("wall_us").unwrap().as_u64().is_some());
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let j = Journal::with_capacity(4);
        let dropped = Counter::default();
        j.set_drop_counter(dropped.clone());
        for i in 0..10u64 {
            j.record(
                JournalKind::Retransmit,
                Severity::Info,
                i,
                "cam0->server",
                "attempt",
            );
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.recorded_total(), 10);
        assert_eq!(j.dropped_total(), 6);
        assert_eq!(dropped.get(), 6);
        // The newest four survive, in seq order.
        let seqs: Vec<u64> = j.recent(100).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(j.since(8).len(), 2);
        assert_eq!(j.recent(2).first().map(|e| e.seq), Some(8));
    }

    #[test]
    fn concurrent_writers_keep_unique_seqs() {
        let j = Journal::with_capacity(1024);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let jj = j.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    jj.record(
                        JournalKind::Retransmit,
                        Severity::Info,
                        t * 1_000 + i,
                        &format!("cam{t}"),
                        "x",
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.len(), 800);
        assert_eq!(j.recorded_total(), 800);
        let mut seqs: Vec<u64> = Vec::new();
        j.for_each(|ev| seqs.push(ev.seq));
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 800, "sequence numbers are unique");
        // Ring order is seq order (events are appended under the lock).
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn detail_strings_are_json_escaped() {
        let j = Journal::new();
        j.record(
            JournalKind::HealthChange,
            Severity::Warn,
            0,
            "a\"b",
            "line\nbreak\t",
        );
        let text = j.export_jsonl();
        let doc = parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(doc.get("subject").unwrap().as_str(), Some("a\"b"));
        assert_eq!(doc.get("detail").unwrap().as_str(), Some("line\nbreak\t"));
    }
}
