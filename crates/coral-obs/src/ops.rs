//! The live ops endpoint: a dependency-free `std::net` HTTP server for
//! threaded/TCP deployments.
//!
//! Serves three read-only routes off the shared observability handles:
//!
//! | route | body |
//! |---|---|
//! | `GET /metrics` | Prometheus text exposition of the [`Registry`] |
//! | `GET /healthz` | JSON [`crate::health::HealthReport`] (HTTP 503 when CRITICAL) |
//! | `GET /journal?last=N` | last N flight-recorder events as JSONL |
//!
//! The server is deliberately tiny: one accept thread, blocking
//! per-connection handling (requests are single-line GETs from a scraper
//! or a human's `curl`), no keep-alive. It is **off in DES runs by
//! default** — the simulator never needs a socket, and determinism is
//! easier to reason about when the sim binary opens none.

use crate::health::HealthEngine;
use crate::journal::Journal;
use crate::registry::Registry;
use crate::Verdict;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The shared handles the endpoint serves from.
#[derive(Clone)]
pub struct OpsState {
    /// Metrics registry backing `/metrics` and health evaluation.
    pub registry: Registry,
    /// Flight recorder backing `/journal` and health-report context.
    pub journal: Journal,
    /// Health engine backing `/healthz` (evaluated on each request).
    pub health: Arc<Mutex<HealthEngine>>,
    /// The deployment's notion of "now" in milliseconds (sim clock for
    /// in-process deployments, wall clock for TCP ones).
    pub clock_ms: Arc<dyn Fn() -> u64 + Send + Sync>,
}

impl std::fmt::Debug for OpsState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpsState").finish_non_exhaustive()
    }
}

/// A running ops endpoint; dropping it shuts the listener down.
#[derive(Debug)]
pub struct OpsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl OpsServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept thread.
    pub fn spawn(addr: impl ToSocketAddrs, state: OpsState) -> std::io::Result<OpsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = stop.clone();
        let handle = std::thread::Builder::new()
            .name("coral-ops".to_string())
            .spawn(move || accept_loop(listener, state, stop_thread))?;
        Ok(OpsServer {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the accept thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, state: OpsState, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: requests are tiny and rare.
                let _ = handle_connection(stream, &state);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, state: &OpsState) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let request_line = read_request_line(&mut stream)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => {
            let body = state.registry.render_prometheus();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => {
            let now_ms = (state.clock_ms)();
            let report = state
                .health
                .lock()
                .expect("health engine poisoned")
                .evaluate(&state.registry, Some(&state.journal), now_ms);
            let status = if report.overall == Verdict::Critical {
                503
            } else {
                200
            };
            respond(&mut stream, status, "application/json", &report.to_json())
        }
        "/journal" => {
            let last = query
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("last="))
                        .and_then(|v| v.parse::<usize>().ok())
                })
                .unwrap_or(100);
            let mut body = String::new();
            for ev in state.journal.recent(last) {
                body.push_str(&ev.to_json_line(true));
                body.push('\n');
            }
            respond(&mut stream, 200, "application/x-ndjson", &body)
        }
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Reads up to the end of the request head, returning the request line.
fn read_request_line(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8_192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    Ok(head.lines().next().unwrap_or("").to_string())
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{Rule, RuleInput, Thresholds};
    use crate::journal::{JournalKind, Severity};

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn test_state() -> OpsState {
        let registry = Registry::new();
        let journal = Journal::new();
        let rules = vec![Rule::new(
            "heartbeat-staleness",
            "last_seen_ms",
            Some("camera"),
            RuleInput::GaugeStalenessMs,
            Thresholds::new(2_000.0, 4_000.0),
        )];
        OpsState {
            registry,
            journal,
            health: Arc::new(Mutex::new(HealthEngine::new(rules))),
            clock_ms: Arc::new(|| 10_000),
        }
    }

    #[test]
    fn serves_metrics_healthz_and_journal() {
        let state = test_state();
        state
            .registry
            .counter("frames_total", &[("camera", "0")])
            .add(3);
        state
            .registry
            .gauge("last_seen_ms", &[("camera", "0")])
            .set(9_500);
        state.journal.record(
            JournalKind::NodeKill,
            Severity::Error,
            1_000,
            "cam1",
            "scheduled",
        );
        let server = OpsServer::spawn("127.0.0.1:0", state).unwrap();
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("frames_total{camera=\"0\"} 3"), "{body}");

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        let doc = crate::json::parse(&body).unwrap();
        assert_eq!(doc.get("overall").unwrap().as_str(), Some("ok"));

        let (status, body) = get(addr, "/journal?last=5");
        assert_eq!(status, 200);
        assert!(body.contains("\"kind\": \"node_kill\""), "{body}");
        assert!(
            body.contains("\"wall_us\""),
            "live journal includes wall clock"
        );

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn healthz_returns_503_when_critical() {
        let state = test_state();
        // A camera whose heartbeat gauge is 10 s stale at clock 10 s.
        state
            .registry
            .gauge("last_seen_ms", &[("camera", "3")])
            .set(0);
        let server = OpsServer::spawn("127.0.0.1:0", state).unwrap();
        let (status, body) = get(server.local_addr(), "/healthz");
        assert_eq!(status, 503);
        assert!(body.contains("\"overall\": \"critical\""), "{body}");
    }
}
