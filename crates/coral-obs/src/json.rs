//! Minimal JSON emission and parsing.
//!
//! The observability exports (metrics snapshots, Chrome `trace_event`
//! streams) are plain JSON, but they are written on hot-path-adjacent code
//! and consumed by validation tests, so this module provides a small
//! self-contained writer/parser pair instead of pulling a serializer
//! framework into every crate of the workspace. The writer produces
//! deterministic, compact output; the parser accepts any standard JSON
//! document (it exists to *validate and inspect* our own exports, not to be
//! a general-purpose codec).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` into `out` as the body of a JSON string literal.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders `s` as a quoted JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Renders a finite `f64` in a JSON-compatible way (`NaN`/`inf` become
/// `null`, integers drop the fraction).
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order not preserved; keys sorted).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup for objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.trunc() == *n => Some(*n as u64),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// A JSON parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns [`JsonError`] for malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), JsonValue::Number(-150.0));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":null}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn writer_parser_roundtrip() {
        let s = "tab\there \"quoted\" back\\slash\nline";
        let quoted = quote(s);
        let back = parse(&quoted).unwrap();
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(parse(&number(1234.5)).unwrap().as_f64(), Some(1234.5));
    }

    #[test]
    fn unicode_survives() {
        let quoted = quote("véhicule 🚗");
        assert_eq!(parse(&quoted).unwrap().as_str(), Some("véhicule 🚗"));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }
}
