//! A live multi-threaded deployment: each camera node runs on its own OS
//! thread, exchanging real messages through the in-process router (the
//! ZeroMQ stand-in), with the topology server on its own thread — the
//! process architecture of the paper's prototype, minus the Raspberry Pis.
//!
//! ```sh
//! cargo run --release --example threaded_cameras
//! ```

use coral_pie::core::{CameraNode, NodeConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::net::{Endpoint, Envelope, InProcRouter, Message};
use coral_pie::sim::{CameraView, SimDuration, SimTime, TrafficConfig, TrafficModel};
use coral_pie::storage::{EdgeStorageNode, QueryOptions};
use coral_pie::topology::{CameraId, ServerConfig, TopologyServer};
use coral_pie::vision::{DetectorNoise, ObjectClass};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const N_CAMERAS: u32 = 3;

fn main() {
    let net = generators::corridor(N_CAMERAS as usize, 120.0, 12.0);
    let router = InProcRouter::new();
    let storage = EdgeStorageNode::default();
    let stop = Arc::new(AtomicBool::new(false));
    // A shared wall clock in simulated milliseconds: the traffic thread
    // advances it; camera threads read it.
    let clock_ms = Arc::new(AtomicU64::new(0));
    let traffic = Arc::new(Mutex::new(TrafficModel::new(
        net.clone(),
        TrafficConfig::default(),
        7,
    )));

    // --- Topology server thread (the cloud). -----------------------------
    let server_rx = router.register(Endpoint::TopologyServer);
    let server_router = router.clone();
    let server_stop = stop.clone();
    let server_net = net.clone();
    let server = thread::spawn(move || {
        let mut server = TopologyServer::new(server_net, ServerConfig::default());
        let mut now_ms = 0u64;
        while !server_stop.load(Ordering::Relaxed) {
            while let Ok(env) = server_rx.try_recv() {
                if let Message::Heartbeat {
                    camera,
                    position,
                    videoing_angle_deg,
                } = env.message
                {
                    now_ms += 1;
                    let updates = server
                        .handle_heartbeat(camera, position, videoing_angle_deg, now_ms)
                        .expect("registration succeeds");
                    for u in updates {
                        let _ = server_router.send(Envelope {
                            from: Endpoint::TopologyServer,
                            to: Endpoint::Camera(u.camera),
                            message: Message::TopologyUpdate(u),
                        });
                    }
                }
            }
            thread::sleep(Duration::from_millis(2));
        }
    });

    // --- Camera node threads (device + edge compute per camera). ---------
    let mut camera_threads = Vec::new();
    for i in 0..N_CAMERAS {
        let cam = CameraId(i);
        let rx = router.register(Endpoint::Camera(cam));
        let tx = router.clone();
        let position = net
            .intersection(IntersectionId(i))
            .expect("site exists")
            .position;
        let view = CameraView::standard(position, 0.0);
        let node_storage = storage.clone();
        let cam_stop = stop.clone();
        let cam_clock = clock_ms.clone();
        let cam_traffic = traffic.clone();
        camera_threads.push(thread::spawn(move || {
            let mut node = CameraNode::new(
                cam,
                view,
                NodeConfig {
                    detector_noise: DetectorNoise::perfect(),
                    ..NodeConfig::default()
                },
                node_storage,
                100 + u64::from(i),
            );
            // Join the topology.
            let hb = node.heartbeat();
            tx.send(Envelope {
                from: Endpoint::Camera(cam),
                to: Endpoint::TopologyServer,
                message: hb,
            })
            .expect("server reachable");
            let mut sent = 0u64;
            while !cam_stop.load(Ordering::Relaxed) {
                let now_ms = cam_clock.load(Ordering::Relaxed);
                // Inbound protocol traffic.
                while let Ok(env) = rx.try_recv() {
                    for (to, msg) in node.on_message(env.message, now_ms) {
                        let _ = tx.send(Envelope {
                            from: Endpoint::Camera(cam),
                            to: Endpoint::Camera(to),
                            message: msg,
                        });
                    }
                }
                // One frame.
                let scene = { node.view().scene(&cam_traffic.lock()) };
                let out = node.on_frame(&scene, now_ms, None);
                for (to, msg) in out.messages {
                    sent += 1;
                    let _ = tx.send(Envelope {
                        from: Endpoint::Camera(cam),
                        to: Endpoint::Camera(to),
                        message: msg,
                    });
                }
                thread::sleep(Duration::from_millis(4)); // ~96 ms scaled 1/24
            }
            let out = node.flush(cam_clock.load(Ordering::Relaxed), None);
            sent += out.messages.len() as u64;
            (cam, node.events_generated(), sent)
        }));
    }

    // --- Traffic thread: drives the world at 24x real time. --------------
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).expect("connected");
    traffic.lock().spawn(SimTime::from_secs(1), r, Some(ObjectClass::Car));
    for _ in 0..450 {
        {
            let mut t = traffic.lock();
            let now = SimTime::from_millis(clock_ms.load(Ordering::Relaxed));
            t.step(now, SimDuration::from_millis(96));
        }
        clock_ms.fetch_add(96, Ordering::Relaxed);
        thread::sleep(Duration::from_millis(4));
    }
    stop.store(true, Ordering::Relaxed);

    for h in camera_threads {
        let (cam, events, sent) = h.join().expect("camera thread ok");
        println!("{cam}: {events} detection events, {sent} protocol messages sent");
    }
    server.join().expect("server thread ok");

    // The trajectory graph assembled by the threads.
    let (vertices, edges, _, _) = storage.stats();
    println!("\ntrajectory graph: {vertices} vertices, {edges} edges");
    let seed = storage.with_graph(|g| {
        g.vertices()
            .min_by_key(|v| v.first_seen_ms)
            .map(|v| v.id)
    });
    if let Some(seed) = seed {
        let track = storage
            .query_trajectory(seed, QueryOptions::default())
            .expect("seed exists")
            .best_track();
        println!("best track spans {} cameras", track.len());
        assert!(vertices >= 3, "every camera saw the vehicle");
    }
}
