//! A live multi-threaded deployment: each camera node runs on its own OS
//! thread, exchanging real messages through the in-process router (the
//! ZeroMQ stand-in), with the topology server on its own thread — the
//! process architecture of the paper's prototype, minus the Raspberry Pis.
//!
//! The threads drive the same `NodeDriver` / `ServerDriver` units the
//! discrete-event runtime uses; only the pacing differs (thread loops and
//! a shared atomic clock instead of an event queue).
//!
//! ```sh
//! cargo run --release --example threaded_cameras
//! # in another shell, while it runs:
//! curl -s localhost:9464/healthz | head -c 200
//! curl -s localhost:9464/metrics | grep node_last_heartbeat_ms
//! ```
//!
//! The live ops endpoint binds `127.0.0.1:9464` by default; override with
//! `CORAL_OPS_ADDR=host:port` or disable with `CORAL_OPS_ADDR=off`.

use coral_pie::core::obs::{default_health_rules, CoreObs, NodeObs, ServerObs};
use coral_pie::core::{CameraSpec, Deployment, NodeConfig, NodeDriver, ServerDriver, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::net::{Endpoint, InProcRouter, InProcTransport, Transport};
use coral_pie::obs::{OpsServer, OpsState};
use coral_pie::sim::{SimDuration, SimTime, TrafficConfig, TrafficModel};
use coral_pie::storage::{EdgeStorageNode, QueryOptions};
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, ObjectClass};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const N_CAMERAS: u32 = 3;

fn main() {
    let net = generators::corridor(N_CAMERAS as usize, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..N_CAMERAS)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let deployment = Deployment::from_specs(
        net.clone(),
        &specs,
        SystemConfig {
            node: NodeConfig {
                detector_noise: DetectorNoise::perfect(),
                ..NodeConfig::default()
            },
            ..SystemConfig::default()
        },
    );
    let router = InProcRouter::new();
    let storage = EdgeStorageNode::default();
    let stop = Arc::new(AtomicBool::new(false));
    // Shared observability: metrics registry, flight recorder, and the
    // health/SLO engine evaluated on demand by the ops endpoint.
    let obs = CoreObs::new();
    let config = deployment.config();
    obs.install_health_rules(default_health_rules(
        config.heartbeat_interval.as_millis(),
        u64::from(config.miss_threshold),
        coral_pie::core::obs::HANDOFF_DEADLINE_MS,
        false,
    ));
    storage.instrument(obs.registry());
    // A shared wall clock in simulated milliseconds: the traffic thread
    // advances it; camera threads read it.
    let clock_ms = Arc::new(AtomicU64::new(0));
    let traffic = Arc::new(Mutex::new(TrafficModel::new(
        net.clone(),
        TrafficConfig::default(),
        7,
    )));

    // --- Live ops endpoint (metrics, health, journal). --------------------
    let ops_addr = std::env::var("CORAL_OPS_ADDR").unwrap_or_else(|_| "127.0.0.1:9464".into());
    let ops_server = if ops_addr == "off" {
        None
    } else {
        let ops_clock = clock_ms.clone();
        match OpsServer::spawn(
            ops_addr.as_str(),
            OpsState {
                registry: obs.registry().clone(),
                journal: obs.journal().clone(),
                health: obs.health(),
                clock_ms: Arc::new(move || ops_clock.load(Ordering::Relaxed)),
            },
        ) {
            Ok(server) => {
                println!("ops endpoint: http://{}/healthz", server.local_addr());
                Some(server)
            }
            Err(e) => {
                eprintln!("ops endpoint disabled ({ops_addr}: {e})");
                None
            }
        }
    };

    // --- Topology server thread (the cloud). -----------------------------
    let mut server_driver = ServerDriver::new(
        deployment.make_server(),
        InProcTransport::attach(&router, Endpoint::TopologyServer),
    );
    server_driver.set_obs(ServerObs::new(&obs));
    let server_stop = stop.clone();
    let server = thread::spawn(move || {
        let mut now_ms = 0u64;
        while !server_stop.load(Ordering::Relaxed) {
            while let Some(env) = server_driver.transport_mut().poll(SimTime::ZERO) {
                now_ms += 1;
                server_driver
                    .on_envelope(env, SimTime::from_millis(now_ms), |_| true)
                    .expect("cameras reachable");
            }
            thread::sleep(Duration::from_millis(2));
        }
    });

    // --- Camera node threads (device + edge compute per camera). ---------
    let mut camera_threads = Vec::new();
    for i in 0..N_CAMERAS {
        let cam = CameraId(i);
        let mut driver = NodeDriver::new(
            deployment.make_node(cam, storage.clone()).expect("placed"),
            InProcTransport::attach(&router, Endpoint::Camera(cam)),
        );
        driver.set_obs(NodeObs::new(&obs, cam));
        let hb_interval_ms = deployment.config().heartbeat_interval.as_millis();
        let cam_stop = stop.clone();
        let cam_clock = clock_ms.clone();
        let cam_traffic = traffic.clone();
        camera_threads.push(thread::spawn(move || {
            // Join the topology.
            driver
                .send_heartbeat(SimTime::ZERO)
                .expect("server reachable");
            let mut last_hb_ms = 0u64;
            let mut sent = 0u64;
            while !cam_stop.load(Ordering::Relaxed) {
                let now = SimTime::from_millis(cam_clock.load(Ordering::Relaxed));
                // Periodic liveness beats keep the server's view (and the
                // health engine's staleness rule) fed.
                if now.as_millis().saturating_sub(last_hb_ms) >= hb_interval_ms {
                    last_hb_ms = now.as_millis();
                    driver.send_heartbeat(now).expect("server reachable");
                }
                // Inbound protocol traffic (confirmation relays are sent
                // by the driver as it delivers).
                driver.pump(now, |_| {}).expect("peers reachable");
                // One frame; the driver sends the resulting informs.
                let scene = { driver.node().view().scene(&cam_traffic.lock()) };
                let out = driver.capture(&scene, now, None).expect("peers reachable");
                sent += out.reids.len() as u64;
                thread::sleep(Duration::from_millis(4)); // ~96 ms scaled 1/24
            }
            let now = SimTime::from_millis(cam_clock.load(Ordering::Relaxed));
            driver.flush(now, None).expect("peers reachable");
            (cam, driver.node().events_generated(), sent)
        }));
    }

    // --- Traffic thread: drives the world at 24x real time. --------------
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).expect("connected");
    traffic
        .lock()
        .spawn(SimTime::from_secs(1), r, Some(ObjectClass::Car));
    for _ in 0..450 {
        {
            let mut t = traffic.lock();
            let now = SimTime::from_millis(clock_ms.load(Ordering::Relaxed));
            t.step(now, SimDuration::from_millis(96));
        }
        clock_ms.fetch_add(96, Ordering::Relaxed);
        thread::sleep(Duration::from_millis(4));
    }
    stop.store(true, Ordering::Relaxed);

    for h in camera_threads {
        let (cam, events, reids) = h.join().expect("camera thread ok");
        println!("{cam}: {events} detection events, {reids} re-identifications");
    }
    server.join().expect("server thread ok");
    let report = obs.health_tick(clock_ms.load(Ordering::Relaxed));
    println!("final health: {:?}", report.overall);
    if let Some(ops) = ops_server {
        ops.shutdown();
    }

    // The trajectory graph assembled by the threads.
    let stats = storage.stats();
    let (vertices, edges) = (stats.vertices, stats.edges);
    println!("\ntrajectory graph: {vertices} vertices, {edges} edges");
    let seed = storage.with_graph(|g| g.vertices().min_by_key(|v| v.first_seen_ms).map(|v| v.id));
    if let Some(seed) = seed {
        let track = storage
            .query_trajectory(seed, QueryOptions::default())
            .expect("seed exists")
            .best_track();
        println!("best track spans {} cameras", track.len());
        assert!(vertices >= 3, "every camera saw the vehicle");
    }
}
