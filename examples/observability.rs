//! Observability: run a five-camera corridor with tracing enabled and
//! export the run's evidence to disk —
//!
//! - `target/observability/trace.json` — a Chrome `trace_event` file with
//!   the per-vehicle causal traces (open in chrome://tracing or Perfetto:
//!   one process row per camera, one thread row per vehicle, with
//!   Detect → Track → InformSend → TransportHop → Reid stages).
//! - `target/observability/metrics.prom` — the metrics registry rendered
//!   in Prometheus text format (per-stage latency histograms, protocol
//!   counters, transport/storage metrics).
//! - `target/observability/metrics.json` — the same registry as JSON.
//!
//! ```sh
//! cargo run --example observability
//! ```

use coral_pie::core::{CameraSpec, CoralPieSystem, NodeConfig, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::sim::{SimDuration, SimTime};
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, ObjectClass};
use std::fs;
use std::path::Path;

fn main() {
    // A corridor of five camera-equipped intersections, 120 m apart.
    let n = 5usize;
    let net = generators::corridor(n, 120.0, 12.0);
    let cameras: Vec<CameraSpec> = (0..n)
        .map(|i| CameraSpec {
            id: CameraId(i as u32),
            site: IntersectionId(i as u32),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            ..NodeConfig::default()
        },
        ..SystemConfig::default()
    };
    let mut system = CoralPieSystem::new(net.clone(), &cameras, config);

    // Tracing is off by default (hot paths pay one atomic load); turn it
    // on before the run so every causal stage is recorded.
    system.enable_tracing();

    // Let the cameras join, then drive three vehicles down the corridor.
    system.run_until(SimTime::from_secs(2));
    for k in 0..3u64 {
        let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(n as u32 - 1))
            .expect("corridor is connected");
        system.traffic_mut().spawn(
            SimTime::from_secs(2) + SimDuration::from_secs(8 * k),
            r,
            Some(ObjectClass::Car),
        );
    }
    system.run_until(SimTime::from_secs(110));
    system.finish();

    // Export all three artifacts.
    let obs = system.observability();
    let dir = Path::new("target/observability");
    fs::create_dir_all(dir).expect("create output dir");

    let trace_path = dir.join("trace.json");
    fs::write(&trace_path, obs.tracer().export_chrome()).expect("write trace");
    let prom_path = dir.join("metrics.prom");
    fs::write(&prom_path, obs.registry().render_prometheus()).expect("write prometheus");
    let json_path = dir.join("metrics.json");
    fs::write(&json_path, obs.registry().snapshot_json()).expect("write json snapshot");

    let registry = obs.registry();
    println!("trace events recorded: {}", obs.tracer().len());
    for counter in [
        "runtime_passages_total",
        "runtime_events_total",
        "runtime_reids_total",
        "runtime_messages_delivered_total",
    ] {
        // Sum across label sets by probing the known kinds.
        let value = registry
            .counter_value(counter, &[])
            .or_else(|| {
                ["inform", "confirm", "topology_update"]
                    .iter()
                    .filter_map(|kind| registry.counter_value(counter, &[("kind", kind)]))
                    .reduce(|a, b| a + b)
            })
            .unwrap_or(0);
        println!("{counter}: {value}");
    }
    println!("[trace]   {}", trace_path.display());
    println!("[metrics] {}", prom_path.display());
    println!("[metrics] {}", json_path.display());

    assert!(!obs.tracer().is_empty(), "tracing produced no events");
    println!("\nobservability example OK");
}
