//! Pipeline tuning: explore the paper's §4.1.5 design space with the
//! Table 1 timing profile — how stage mapping and hardware changes move the
//! sustained frame rate.
//!
//! ```sh
//! cargo run --release --example pipeline_tuning
//! ```

use coral_pie::pipeline::{run_pipelined, Subtask, SubtaskProfile, TimeScale};

fn main() {
    let paper = SubtaskProfile::paper();

    println!("Table 1 profile — analytic model");
    println!(
        "  bottleneck stage: {} ({} ms)",
        paper.bottleneck().name,
        paper.bottleneck().total_ms
    );
    println!(
        "  pipelined {:.2} FPS | sequential {:.2} FPS | speedup {:.1}x",
        paper.pipelined_fps(),
        paper.sequential_fps(),
        paper.pipelined_fps() / paper.sequential_fps()
    );

    // §5.2: "Inference latency can be further reduced by replacing
    // Raspberry Pi 3 B+ with Raspberry Pi 4 which supports USB 3.0" — and
    // the Load cost is dominated by slow decode on the Pi 3.
    let rpi4 = paper
        .with_time_ms(Subtask::Inference, 45.0)
        .with_time_ms(Subtask::Load, 55.0)
        .with_time_ms(Subtask::LoadRpi2, 55.0)
        .with_time_ms(Subtask::Fetch, 50.0);
    println!("\nprojected RPi 4 upgrade (USB 3.0, faster decode)");
    println!(
        "  bottleneck: {} ({} ms) -> {:.2} FPS",
        rpi4.bottleneck().name,
        rpi4.bottleneck().total_ms,
        rpi4.pipelined_fps()
    );

    // The rejected single-RPi mapping (§4.1.5): all vehicle-identification
    // subtasks contend on one device — modelled as one fused stage.
    let fused_stage_ms = [
        Subtask::Fetch,
        Subtask::Load,
        Subtask::Resize,
        Subtask::Inference,
        Subtask::PostInference,
        Subtask::Track,
        Subtask::FeatureExtraction,
    ]
    .iter()
    .map(|&t| paper.time_ms(t))
    .sum::<f64>();
    println!("\nrejected mapping: vehicle identification fused on one RPi");
    println!(
        "  fused stage {} ms -> at most {:.2} FPS (breaks the 10 FPS target)",
        fused_stage_ms,
        1_000.0 / fused_stage_ms
    );

    // Validate the analytic claims with the real threaded pipeline at 1/20
    // time scale.
    let scale = TimeScale::new(0.05);
    println!("\nthreaded validation at 1/20 time scale (120 frames):");
    for (name, profile) in [("paper", &paper), ("rpi4", &rpi4)] {
        let report = run_pipelined(profile, 120, scale);
        println!(
            "  {name}: measured {:.2} FPS (analytic {:.2})",
            report.fps,
            profile.pipelined_fps()
        );
    }
}
