//! Self-healing on the 37-camera campus: kill cameras mid-run and watch
//! the topology server recompute and disseminate MDCS tables (the
//! machinery behind the paper's Fig. 11).
//!
//! ```sh
//! cargo run --release --example campus_self_healing
//! ```

use coral_pie::core::{CameraSpec, CoralPieSystem, SystemConfig};
use coral_pie::geo::generators;
use coral_pie::sim::{FailureSchedule, SimDuration, SimTime};
use coral_pie::topology::CameraId;

fn main() {
    let (net, sites) = generators::campus();
    let cameras: Vec<CameraSpec> = sites
        .iter()
        .enumerate()
        .map(|(i, &site)| CameraSpec {
            id: CameraId(i as u32),
            site,
            videoing_angle_deg: 0.0,
        })
        .collect();

    let config = SystemConfig {
        heartbeat_interval: SimDuration::from_secs(2),
        ..SystemConfig::default()
    };
    let mut system = CoralPieSystem::new(net, &cameras, config);

    // Join phase.
    system.run_until(SimTime::from_secs(10));
    println!(
        "{} cameras registered with the topology server",
        system.server().active_cameras().len()
    );

    // Kill 5 random cameras, one every 15 s.
    let roster: Vec<CameraId> = system.alive().iter().copied().collect();
    let schedule = FailureSchedule::kill_successively(
        &roster,
        5,
        SimTime::from_secs(15),
        SimDuration::from_secs(15),
        7,
    );
    println!("\nfailure schedule:");
    for e in schedule.events() {
        println!("  {} dies at {}", e.camera, e.at);
    }
    system.set_failures(&schedule);
    system.run_until(SimTime::from_secs(120));

    println!("\nrecoveries (kill -> all affected cameras re-configured):");
    for r in &system.telemetry().recoveries {
        println!(
            "  {} killed at {} -> healed in {}",
            r.killed,
            r.killed_at,
            r.duration()
        );
    }
    let max = system
        .telemetry()
        .recoveries
        .iter()
        .map(|r| r.duration())
        .max()
        .expect("at least one recovery");
    println!(
        "\nworst-case healing time {} — paper bound: 2x heartbeat interval (4 s)",
        max
    );
    assert_eq!(system.telemetry().recoveries.len(), 5);
    assert_eq!(system.server().active_cameras().len(), 32);
}
