//! The paper's motivating scenario (§1): a suspicious vehicle is spotted at
//! one camera after an incident, and the authority queries its space-time
//! track — which Coral-Pie has already constructed at ingestion time.
//!
//! Several vehicles (including two with similar paint) cross a 5-camera
//! campus row; we pick the detection of the "suspect" at one camera, walk
//! the trajectory graph backward and forward, and verify the track against
//! the simulator's ground truth. Then we pull the stored frames around the
//! sighting from the frame store, as an investigator would.
//!
//! ```sh
//! cargo run --release --example suspicious_vehicle
//! ```

use coral_pie::core::{CameraSpec, CoralPieSystem, NodeConfig, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::sim::{SimDuration, SimTime};
use coral_pie::storage::QueryOptions;
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, GroundTruthId, ObjectClass};

fn main() {
    let (net, _) = generators::campus();
    // Five cameras along the campus row (sites 0..4).
    let cameras: Vec<CameraSpec> = (0..5)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            store_frames: true, // keep raw footage for the investigation
            ..NodeConfig::default()
        },
        ..SystemConfig::default()
    };
    let mut system = CoralPieSystem::new(net.clone(), &cameras, config);
    system.run_until(SimTime::from_secs(2));

    // Traffic: five vehicles eastbound along the row, staggered.
    let row_route =
        || route::shortest_path(&net, IntersectionId(0), IntersectionId(4)).expect("row connected");
    let mut ids = Vec::new();
    for k in 0..5u64 {
        let id = system.traffic_mut().spawn(
            SimTime::from_secs(2) + SimDuration::from_secs(8 * k),
            row_route(),
            Some(ObjectClass::Car),
        );
        ids.push(id);
    }
    let suspect = ids[2];
    println!("ground truth: suspect vehicle is {suspect}");

    system.run_until(SimTime::from_secs(120));
    system.finish();

    // The investigator holds a "photo" of the suspect: its appearance
    // signature. Query the trajectory store by appearance (the paper's §8
    // query-interface future work) to find candidate detections.
    let storage = system.storage();
    let photo = storage.with_graph(|g| {
        g.vertices()
            .find(|v| v.camera == CameraId(2) && v.ground_truth == Some(GroundTruthId(suspect.0)))
            .and_then(|v| v.signature.clone())
            .expect("suspect was detected at camera 2")
    });
    let hits = storage.find_by_appearance(&photo, 5, 0.3);
    println!(
        "
query-by-appearance: {} candidate detections",
        hits.len()
    );
    for (v, d) in &hits {
        let rec = storage.with_graph(|g| g.vertex(*v).unwrap().clone());
        println!(
            "  {} at {} (distance {:.3}, gt {:?})",
            v, rec.camera, d, rec.ground_truth
        );
    }
    let seed = hits.first().expect("at least one appearance match").0;

    // Query the full track.
    let result = storage
        .query_trajectory(seed, QueryOptions::default())
        .expect("seed exists");
    let track = result.best_track();
    println!("\nreconstructed track for the suspect (seeded at cam2):");
    storage.with_graph(|g| {
        for v in &track {
            let rec = g.vertex(*v).expect("track vertex");
            println!(
                "  {} t=[{} ms, {} ms] (gt {:?})",
                rec.camera, rec.first_seen_ms, rec.last_seen_ms, rec.ground_truth
            );
        }
    });

    // Verify against ground truth: the track visits the five cameras in
    // order and every vertex belongs to the suspect.
    let cameras_visited: Vec<CameraId> = storage.with_graph(|g| {
        track
            .iter()
            .map(|&v| g.vertex(v).expect("vertex").camera)
            .collect()
    });
    let all_suspect = storage.with_graph(|g| {
        track
            .iter()
            .all(|&v| g.vertex(v).expect("vertex").ground_truth == Some(GroundTruthId(suspect.0)))
    });
    println!("\ncameras visited: {cameras_visited:?}");
    println!("all track vertices belong to the suspect: {all_suspect}");
    assert!(cameras_visited.len() >= 4, "track spans most of the row");
    assert!(all_suspect, "no identity switches on the best track");

    // Finally, pull the stored footage around the sighting at camera 2 —
    // "ambiguities ... can be easily pruned by analyzing a few frames of
    // videos around the ambiguity" (§2.1).
    let (first_ms, last_ms) = storage.with_graph(|g| {
        let rec = g.vertex(seed).unwrap();
        (rec.first_seen_ms, rec.last_seen_ms)
    });
    let clip = storage.with_frames(|f| {
        f.frames_between(CameraId(2), first_ms.saturating_sub(500), last_ms + 500)
            .iter()
            .map(|sf| (sf.frame, sf.annotations.len()))
            .collect::<Vec<_>>()
    });
    println!(
        "
stored footage around the sighting: {} frames (with annotations)",
        clip.len()
    );
    assert!(
        !clip.is_empty(),
        "frame store should hold the sighting clip"
    );
    println!("suspicious-vehicle query OK");
}
