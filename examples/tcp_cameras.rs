//! Camera nodes talking over real TCP sockets — the closest analogue to
//! the paper's deployment, where each camera's RPis push ZeroMQ messages
//! over the campus LAN. Each node binds its own loopback port; a directory
//! maps endpoints to socket addresses (in a real deployment this comes
//! from configuration or the topology server).
//!
//! ```sh
//! cargo run --release --example tcp_cameras
//! ```

use coral_pie::core::{CameraNode, NodeConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::net::{send_to, Endpoint, Envelope, Message, TcpEndpoint};
use coral_pie::sim::{CameraView, SimDuration, SimTime, TrafficConfig, TrafficModel};
use coral_pie::storage::{EdgeStorageNode, QueryOptions};
use coral_pie::topology::{CameraId, ServerConfig, TopologyServer};
use coral_pie::vision::{DetectorNoise, ObjectClass};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const N_CAMERAS: u32 = 3;

fn main() {
    let net = generators::corridor(N_CAMERAS as usize, 120.0, 12.0);
    let storage = EdgeStorageNode::default();
    let stop = Arc::new(AtomicBool::new(false));
    let clock_ms = Arc::new(AtomicU64::new(0));
    let traffic = Arc::new(Mutex::new(TrafficModel::new(
        net.clone(),
        TrafficConfig::default(),
        7,
    )));

    // Bind one TCP listener per party and publish the address directory.
    let server_ep = TcpEndpoint::bind("127.0.0.1:0").expect("bind server");
    let camera_eps: Vec<TcpEndpoint> = (0..N_CAMERAS)
        .map(|_| TcpEndpoint::bind("127.0.0.1:0").expect("bind camera"))
        .collect();
    let mut directory: HashMap<Endpoint, SocketAddr> = HashMap::new();
    directory.insert(Endpoint::TopologyServer, server_ep.local_addr());
    for (i, ep) in camera_eps.iter().enumerate() {
        directory.insert(Endpoint::Camera(CameraId(i as u32)), ep.local_addr());
    }
    let directory = Arc::new(directory);
    println!("address directory:");
    for (ep, addr) in directory.iter() {
        println!("  {ep} -> {addr}");
    }

    // Topology server thread: real socket in, real sockets out.
    let server_stop = stop.clone();
    let server_dir = directory.clone();
    let server_net = net.clone();
    let server = thread::spawn(move || {
        let mut server = TopologyServer::new(server_net, ServerConfig::default());
        let mut now_ms = 0u64;
        while !server_stop.load(Ordering::Relaxed) {
            while let Ok(env) = server_ep.receiver().try_recv() {
                if let Message::Heartbeat {
                    camera,
                    position,
                    videoing_angle_deg,
                } = env.message
                {
                    now_ms += 1;
                    for u in server
                        .handle_heartbeat(camera, position, videoing_angle_deg, now_ms)
                        .expect("registration succeeds")
                    {
                        let to = Endpoint::Camera(u.camera);
                        if let Some(addr) = server_dir.get(&to) {
                            let _ = send_to(
                                *addr,
                                &Envelope {
                                    from: Endpoint::TopologyServer,
                                    to,
                                    message: Message::TopologyUpdate(u),
                                },
                            );
                        }
                    }
                }
            }
            thread::sleep(Duration::from_millis(1));
        }
        server_ep.shutdown();
    });

    // Camera node threads.
    let mut camera_threads = Vec::new();
    for (i, ep) in camera_eps.into_iter().enumerate() {
        let cam = CameraId(i as u32);
        let position = net
            .intersection(IntersectionId(i as u32))
            .expect("site exists")
            .position;
        let view = CameraView::standard(position, 0.0);
        let node_storage = storage.clone();
        let cam_stop = stop.clone();
        let cam_clock = clock_ms.clone();
        let cam_traffic = traffic.clone();
        let dir = directory.clone();
        camera_threads.push(thread::spawn(move || {
            let mut node = CameraNode::new(
                cam,
                view,
                NodeConfig {
                    detector_noise: DetectorNoise::perfect(),
                    ..NodeConfig::default()
                },
                node_storage,
                300 + i as u64,
            );
            let deliver = |from: Endpoint, to: Endpoint, message: Message| {
                if let Some(addr) = dir.get(&to) {
                    let _ = send_to(*addr, &Envelope { from, to, message });
                }
            };
            deliver(
                Endpoint::Camera(cam),
                Endpoint::TopologyServer,
                node.heartbeat(),
            );
            let mut sent = 0u64;
            while !cam_stop.load(Ordering::Relaxed) {
                let now_ms = cam_clock.load(Ordering::Relaxed);
                while let Ok(env) = ep.receiver().try_recv() {
                    for (to, msg) in node.on_message(env.message, now_ms) {
                        sent += 1;
                        deliver(Endpoint::Camera(cam), Endpoint::Camera(to), msg);
                    }
                }
                let scene = { node.view().scene(&cam_traffic.lock()) };
                for (to, msg) in node.on_frame(&scene, now_ms, None).messages {
                    sent += 1;
                    deliver(Endpoint::Camera(cam), Endpoint::Camera(to), msg);
                }
                thread::sleep(Duration::from_millis(4));
            }
            ep.shutdown();
            (cam, node.events_generated(), sent)
        }));
    }

    // Traffic at ~24x real time.
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).expect("connected");
    traffic
        .lock()
        .spawn(SimTime::from_secs(1), r, Some(ObjectClass::Car));
    for _ in 0..450 {
        {
            let mut t = traffic.lock();
            let now = SimTime::from_millis(clock_ms.load(Ordering::Relaxed));
            t.step(now, SimDuration::from_millis(96));
        }
        clock_ms.fetch_add(96, Ordering::Relaxed);
        thread::sleep(Duration::from_millis(4));
    }
    stop.store(true, Ordering::Relaxed);
    for h in camera_threads {
        let (cam, events, sent) = h.join().expect("camera thread ok");
        println!("{cam}: {events} detection events, {sent} TCP messages sent");
    }
    server.join().expect("server thread ok");

    let (vertices, edges, _, _) = storage.stats();
    println!("\ntrajectory graph: {vertices} vertices, {edges} edges");
    let seed = storage
        .with_graph(|g| g.vertices().min_by_key(|v| v.first_seen_ms).map(|v| v.id))
        .expect("detections stored");
    let track = storage
        .query_trajectory(seed, QueryOptions::default())
        .expect("seed exists")
        .best_track();
    println!("best track spans {} cameras — TCP deployment OK", track.len());
    assert!(vertices >= 3);
}
