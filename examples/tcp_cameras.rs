//! Camera nodes talking over real TCP sockets — the closest analogue to
//! the paper's deployment, where each camera's RPis push ZeroMQ messages
//! over the campus LAN. Each party binds its own loopback port through a
//! [`TcpTransport`]; a shared [`TcpDirectory`] maps endpoints to socket
//! addresses (in a real deployment this comes from configuration or the
//! topology server).
//!
//! The threads drive the same `NodeDriver` / `ServerDriver` units the
//! discrete-event runtime and the in-process router example use — only the
//! transport differs.
//!
//! ```sh
//! cargo run --release --example tcp_cameras
//! ```

use coral_pie::core::{CameraSpec, Deployment, NodeConfig, NodeDriver, ServerDriver, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::net::{Endpoint, TcpDirectory, TcpTransport, Transport};
use coral_pie::sim::{SimDuration, SimTime, TrafficConfig, TrafficModel};
use coral_pie::storage::{EdgeStorageNode, QueryOptions};
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, ObjectClass};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const N_CAMERAS: u32 = 3;

fn main() {
    let net = generators::corridor(N_CAMERAS as usize, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..N_CAMERAS)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let deployment = Deployment::from_specs(
        net.clone(),
        &specs,
        SystemConfig {
            node: NodeConfig {
                detector_noise: DetectorNoise::perfect(),
                ..NodeConfig::default()
            },
            ..SystemConfig::default()
        },
    );
    let storage = EdgeStorageNode::default();
    let stop = Arc::new(AtomicBool::new(false));
    let clock_ms = Arc::new(AtomicU64::new(0));
    let traffic = Arc::new(Mutex::new(TrafficModel::new(
        net.clone(),
        TrafficConfig::default(),
        7,
    )));

    // Bind one TCP listener per party; each bind publishes its resolved
    // address into the shared directory before any thread starts sending.
    let directory = TcpDirectory::new();
    let server_transport = TcpTransport::bind(Endpoint::TopologyServer, "127.0.0.1:0", &directory)
        .expect("bind server");
    let camera_transports: Vec<TcpTransport> = (0..N_CAMERAS)
        .map(|i| {
            TcpTransport::bind(Endpoint::Camera(CameraId(i)), "127.0.0.1:0", &directory)
                .expect("bind camera")
        })
        .collect();
    println!("address directory:");
    let mut entries = directory.entries();
    entries.sort_by_key(|&(ep, _)| ep);
    for (ep, addr) in entries {
        println!("  {ep} -> {addr}");
    }

    // Topology server thread: real socket in, real sockets out.
    let mut server_driver = ServerDriver::new(deployment.make_server(), server_transport);
    let server_stop = stop.clone();
    let server = thread::spawn(move || {
        let mut now_ms = 0u64;
        while !server_stop.load(Ordering::Relaxed) {
            while let Some(env) = server_driver.transport_mut().poll(SimTime::ZERO) {
                now_ms += 1;
                // Sends race camera shutdown at the end of the run; a
                // vanished peer is not an error here.
                let _ = server_driver.on_envelope(env, SimTime::from_millis(now_ms), |_| true);
            }
            thread::sleep(Duration::from_millis(1));
        }
        let (_, transport) = server_driver.into_parts();
        transport.shutdown();
    });

    // Camera node threads, each driving a NodeDriver over its own socket.
    let mut camera_threads = Vec::new();
    for (i, transport) in camera_transports.into_iter().enumerate() {
        let cam = CameraId(i as u32);
        let mut driver = NodeDriver::new(
            deployment.make_node(cam, storage.clone()).expect("placed"),
            transport,
        );
        let cam_stop = stop.clone();
        let cam_clock = clock_ms.clone();
        let cam_traffic = traffic.clone();
        camera_threads.push(thread::spawn(move || {
            driver
                .send_heartbeat(SimTime::ZERO)
                .expect("server reachable");
            let mut received = 0u64;
            while !cam_stop.load(Ordering::Relaxed) {
                let now = SimTime::from_millis(cam_clock.load(Ordering::Relaxed));
                // Inbound protocol traffic; replies (confirmation relays)
                // go straight back out over TCP. Peer shutdown at the end
                // of the run can fail a send — tolerated, like any LAN.
                received += driver.pump(now, |_| {}).unwrap_or(0) as u64;
                let scene = { driver.node().view().scene(&cam_traffic.lock()) };
                let _ = driver.capture(&scene, now, None);
                thread::sleep(Duration::from_millis(4));
            }
            let (node, transport) = driver.into_parts();
            transport.shutdown();
            (cam, node.events_generated(), received)
        }));
    }

    // Traffic at ~24x real time.
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).expect("connected");
    traffic
        .lock()
        .spawn(SimTime::from_secs(1), r, Some(ObjectClass::Car));
    for _ in 0..450 {
        {
            let mut t = traffic.lock();
            let now = SimTime::from_millis(clock_ms.load(Ordering::Relaxed));
            t.step(now, SimDuration::from_millis(96));
        }
        clock_ms.fetch_add(96, Ordering::Relaxed);
        thread::sleep(Duration::from_millis(4));
    }
    stop.store(true, Ordering::Relaxed);
    for h in camera_threads {
        let (cam, events, received) = h.join().expect("camera thread ok");
        println!("{cam}: {events} detection events, {received} TCP messages received");
    }
    server.join().expect("server thread ok");

    let stats = storage.stats();
    let (vertices, edges) = (stats.vertices, stats.edges);
    println!("\ntrajectory graph: {vertices} vertices, {edges} edges");
    let seed = storage
        .with_graph(|g| g.vertices().min_by_key(|v| v.first_seen_ms).map(|v| v.id))
        .expect("detections stored");
    let track = storage
        .query_trajectory(seed, QueryOptions::default())
        .expect("seed exists")
        .best_track();
    println!(
        "best track spans {} cameras — TCP deployment OK",
        track.len()
    );
    assert!(vertices >= 3);
}
