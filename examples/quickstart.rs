//! Quickstart: deploy a three-camera corridor, drive one vehicle through
//! it, and print the space-time track the system reconstructs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use coral_pie::core::{CameraSpec, CoralPieSystem, NodeConfig, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::sim::SimTime;
use coral_pie::storage::QueryOptions;
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, ObjectClass};

fn main() {
    // 1. A street with three camera-equipped intersections, 120 m apart.
    let net = generators::corridor(3, 120.0, 12.0);
    let cameras: Vec<CameraSpec> = (0..3)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: 0.0,
        })
        .collect();

    // 2. Deploy the system (cloud topology server + edge storage + one
    //    compute node per camera).
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            ..NodeConfig::default()
        },
        ..SystemConfig::default()
    };
    let mut system = CoralPieSystem::new(net.clone(), &cameras, config);

    // 3. Let the cameras register with the topology server and receive
    //    their MDCS tables.
    system.run_until(SimTime::from_secs(2));
    println!("cameras online: {:?}", system.server().active_cameras());

    // 4. Drive a car from one end of the street to the other.
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2))
        .expect("corridor is connected");
    let vehicle = system
        .traffic_mut()
        .spawn(SimTime::from_secs(2), r, Some(ObjectClass::Car));
    println!("spawned vehicle {vehicle}");

    system.run_until(SimTime::from_secs(45));
    system.finish();

    // 5. Query the trajectory graph: start from the vehicle's first
    //    detection and walk the re-identification edges.
    let storage = system.storage();
    let seed = storage.with_graph(|g| {
        g.vertices()
            .min_by_key(|v| v.first_seen_ms)
            .map(|v| v.id)
            .expect("at least one detection")
    });
    let result = storage
        .query_trajectory(seed, QueryOptions::default())
        .expect("seed exists");
    let track = result.best_track();

    println!("\nreconstructed space-time track:");
    storage.with_graph(|g| {
        for v in &track {
            let rec = g.vertex(*v).expect("track vertex");
            println!(
                "  {} at {} during [{} ms, {} ms] heading {:?}",
                rec.event, rec.camera, rec.first_seen_ms, rec.last_seen_ms, rec.heading
            );
        }
    });
    assert_eq!(track.len(), 3, "the vehicle passed all three cameras");
    println!("\ntrack spans {} cameras — quickstart OK", track.len());
}
