/root/repo/target/debug/examples/campus_self_healing-34c70b1f9843416b.d: examples/campus_self_healing.rs

/root/repo/target/debug/examples/campus_self_healing-34c70b1f9843416b: examples/campus_self_healing.rs

examples/campus_self_healing.rs:
