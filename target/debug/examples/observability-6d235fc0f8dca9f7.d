/root/repo/target/debug/examples/observability-6d235fc0f8dca9f7.d: examples/observability.rs

/root/repo/target/debug/examples/observability-6d235fc0f8dca9f7: examples/observability.rs

examples/observability.rs:
