/root/repo/target/debug/examples/quickstart-e7ddd350693884f6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e7ddd350693884f6: examples/quickstart.rs

examples/quickstart.rs:
