/root/repo/target/debug/examples/suspicious_vehicle-4c4a2899c695a3bc.d: examples/suspicious_vehicle.rs

/root/repo/target/debug/examples/suspicious_vehicle-4c4a2899c695a3bc: examples/suspicious_vehicle.rs

examples/suspicious_vehicle.rs:
