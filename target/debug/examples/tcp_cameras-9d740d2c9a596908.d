/root/repo/target/debug/examples/tcp_cameras-9d740d2c9a596908.d: examples/tcp_cameras.rs

/root/repo/target/debug/examples/tcp_cameras-9d740d2c9a596908: examples/tcp_cameras.rs

examples/tcp_cameras.rs:
