/root/repo/target/debug/examples/pipeline_tuning-73db62288e286044.d: examples/pipeline_tuning.rs

/root/repo/target/debug/examples/pipeline_tuning-73db62288e286044: examples/pipeline_tuning.rs

examples/pipeline_tuning.rs:
