/root/repo/target/debug/examples/threaded_cameras-bb054cdb60f7066e.d: examples/threaded_cameras.rs

/root/repo/target/debug/examples/threaded_cameras-bb054cdb60f7066e: examples/threaded_cameras.rs

examples/threaded_cameras.rs:
