/root/repo/target/debug/deps/coral_net-c458458e50f83cd9.d: crates/coral-net/src/lib.rs crates/coral-net/src/connection.rs crates/coral-net/src/faulty.rs crates/coral-net/src/message.rs crates/coral-net/src/metered.rs crates/coral-net/src/reliable.rs crates/coral-net/src/socket_group.rs crates/coral-net/src/tcp.rs crates/coral-net/src/transport.rs

/root/repo/target/debug/deps/libcoral_net-c458458e50f83cd9.rlib: crates/coral-net/src/lib.rs crates/coral-net/src/connection.rs crates/coral-net/src/faulty.rs crates/coral-net/src/message.rs crates/coral-net/src/metered.rs crates/coral-net/src/reliable.rs crates/coral-net/src/socket_group.rs crates/coral-net/src/tcp.rs crates/coral-net/src/transport.rs

/root/repo/target/debug/deps/libcoral_net-c458458e50f83cd9.rmeta: crates/coral-net/src/lib.rs crates/coral-net/src/connection.rs crates/coral-net/src/faulty.rs crates/coral-net/src/message.rs crates/coral-net/src/metered.rs crates/coral-net/src/reliable.rs crates/coral-net/src/socket_group.rs crates/coral-net/src/tcp.rs crates/coral-net/src/transport.rs

crates/coral-net/src/lib.rs:
crates/coral-net/src/connection.rs:
crates/coral-net/src/faulty.rs:
crates/coral-net/src/message.rs:
crates/coral-net/src/metered.rs:
crates/coral-net/src/reliable.rs:
crates/coral-net/src/socket_group.rs:
crates/coral-net/src/tcp.rs:
crates/coral-net/src/transport.rs:
