/root/repo/target/debug/deps/coral_pie-e2e0e77a5f4d2764.d: src/lib.rs

/root/repo/target/debug/deps/libcoral_pie-e2e0e77a5f4d2764.rlib: src/lib.rs

/root/repo/target/debug/deps/libcoral_pie-e2e0e77a5f4d2764.rmeta: src/lib.rs

src/lib.rs:
