/root/repo/target/debug/deps/exp_speedup-22359fbf1168d850.d: crates/coral-bench/src/bin/exp_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libexp_speedup-22359fbf1168d850.rmeta: crates/coral-bench/src/bin/exp_speedup.rs Cargo.toml

crates/coral-bench/src/bin/exp_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
