/root/repo/target/debug/deps/coral_topology-58c8939363aeec16.d: crates/coral-topology/src/lib.rs crates/coral-topology/src/camera.rs crates/coral-topology/src/mdcs.rs crates/coral-topology/src/server.rs crates/coral-topology/src/topology.rs

/root/repo/target/debug/deps/libcoral_topology-58c8939363aeec16.rlib: crates/coral-topology/src/lib.rs crates/coral-topology/src/camera.rs crates/coral-topology/src/mdcs.rs crates/coral-topology/src/server.rs crates/coral-topology/src/topology.rs

/root/repo/target/debug/deps/libcoral_topology-58c8939363aeec16.rmeta: crates/coral-topology/src/lib.rs crates/coral-topology/src/camera.rs crates/coral-topology/src/mdcs.rs crates/coral-topology/src/server.rs crates/coral-topology/src/topology.rs

crates/coral-topology/src/lib.rs:
crates/coral-topology/src/camera.rs:
crates/coral-topology/src/mdcs.rs:
crates/coral-topology/src/server.rs:
crates/coral-topology/src/topology.rs:
