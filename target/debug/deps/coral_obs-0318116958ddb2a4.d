/root/repo/target/debug/deps/coral_obs-0318116958ddb2a4.d: crates/coral-obs/src/lib.rs crates/coral-obs/src/json.rs crates/coral-obs/src/registry.rs crates/coral-obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcoral_obs-0318116958ddb2a4.rmeta: crates/coral-obs/src/lib.rs crates/coral-obs/src/json.rs crates/coral-obs/src/registry.rs crates/coral-obs/src/trace.rs Cargo.toml

crates/coral-obs/src/lib.rs:
crates/coral-obs/src/json.rs:
crates/coral-obs/src/registry.rs:
crates/coral-obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
