/root/repo/target/debug/deps/coral_sim-29e2f6e1e474eabb.d: crates/coral-sim/src/lib.rs crates/coral-sim/src/engine.rs crates/coral-sim/src/failure.rs crates/coral-sim/src/gt.rs crates/coral-sim/src/lights.rs crates/coral-sim/src/netmodel.rs crates/coral-sim/src/observe.rs crates/coral-sim/src/time.rs crates/coral-sim/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libcoral_sim-29e2f6e1e474eabb.rmeta: crates/coral-sim/src/lib.rs crates/coral-sim/src/engine.rs crates/coral-sim/src/failure.rs crates/coral-sim/src/gt.rs crates/coral-sim/src/lights.rs crates/coral-sim/src/netmodel.rs crates/coral-sim/src/observe.rs crates/coral-sim/src/time.rs crates/coral-sim/src/traffic.rs Cargo.toml

crates/coral-sim/src/lib.rs:
crates/coral-sim/src/engine.rs:
crates/coral-sim/src/failure.rs:
crates/coral-sim/src/gt.rs:
crates/coral-sim/src/lights.rs:
crates/coral-sim/src/netmodel.rs:
crates/coral-sim/src/observe.rs:
crates/coral-sim/src/time.rs:
crates/coral-sim/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
