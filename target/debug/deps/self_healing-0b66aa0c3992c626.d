/root/repo/target/debug/deps/self_healing-0b66aa0c3992c626.d: tests/self_healing.rs

/root/repo/target/debug/deps/self_healing-0b66aa0c3992c626: tests/self_healing.rs

tests/self_healing.rs:
