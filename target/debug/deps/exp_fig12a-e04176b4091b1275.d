/root/repo/target/debug/deps/exp_fig12a-e04176b4091b1275.d: crates/coral-bench/src/bin/exp_fig12a.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig12a-e04176b4091b1275.rmeta: crates/coral-bench/src/bin/exp_fig12a.rs Cargo.toml

crates/coral-bench/src/bin/exp_fig12a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
