/root/repo/target/debug/deps/proptest_storage-3bab0ec2790178fd.d: crates/coral-storage/tests/proptest_storage.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_storage-3bab0ec2790178fd.rmeta: crates/coral-storage/tests/proptest_storage.rs Cargo.toml

crates/coral-storage/tests/proptest_storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
