/root/repo/target/debug/deps/coral_eval-d92dbfc9fef411b9.d: crates/coral-eval/src/lib.rs crates/coral-eval/src/attribution.rs crates/coral-eval/src/golden.rs crates/coral-eval/src/replay.rs crates/coral-eval/src/score.rs crates/coral-eval/src/tracks.rs Cargo.toml

/root/repo/target/debug/deps/libcoral_eval-d92dbfc9fef411b9.rmeta: crates/coral-eval/src/lib.rs crates/coral-eval/src/attribution.rs crates/coral-eval/src/golden.rs crates/coral-eval/src/replay.rs crates/coral-eval/src/score.rs crates/coral-eval/src/tracks.rs Cargo.toml

crates/coral-eval/src/lib.rs:
crates/coral-eval/src/attribution.rs:
crates/coral-eval/src/golden.rs:
crates/coral-eval/src/replay.rs:
crates/coral-eval/src/score.rs:
crates/coral-eval/src/tracks.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/coral-eval
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
