/root/repo/target/debug/deps/coral_eval-700f87afe5e5606d.d: crates/coral-eval/src/lib.rs crates/coral-eval/src/attribution.rs crates/coral-eval/src/golden.rs crates/coral-eval/src/replay.rs crates/coral-eval/src/score.rs crates/coral-eval/src/tracks.rs Cargo.toml

/root/repo/target/debug/deps/libcoral_eval-700f87afe5e5606d.rmeta: crates/coral-eval/src/lib.rs crates/coral-eval/src/attribution.rs crates/coral-eval/src/golden.rs crates/coral-eval/src/replay.rs crates/coral-eval/src/score.rs crates/coral-eval/src/tracks.rs Cargo.toml

crates/coral-eval/src/lib.rs:
crates/coral-eval/src/attribution.rs:
crates/coral-eval/src/golden.rs:
crates/coral-eval/src/replay.rs:
crates/coral-eval/src/score.rs:
crates/coral-eval/src/tracks.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/coral-eval
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
