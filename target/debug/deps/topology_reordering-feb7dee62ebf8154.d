/root/repo/target/debug/deps/topology_reordering-feb7dee62ebf8154.d: tests/topology_reordering.rs

/root/repo/target/debug/deps/topology_reordering-feb7dee62ebf8154: tests/topology_reordering.rs

tests/topology_reordering.rs:
