/root/repo/target/debug/deps/end_to_end-d9dee92ff2b4623d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d9dee92ff2b4623d: tests/end_to_end.rs

tests/end_to_end.rs:
