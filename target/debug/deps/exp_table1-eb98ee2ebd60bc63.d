/root/repo/target/debug/deps/exp_table1-eb98ee2ebd60bc63.d: crates/coral-bench/src/bin/exp_table1.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table1-eb98ee2ebd60bc63.rmeta: crates/coral-bench/src/bin/exp_table1.rs Cargo.toml

crates/coral-bench/src/bin/exp_table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
