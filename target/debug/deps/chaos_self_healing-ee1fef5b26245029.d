/root/repo/target/debug/deps/chaos_self_healing-ee1fef5b26245029.d: tests/chaos_self_healing.rs

/root/repo/target/debug/deps/chaos_self_healing-ee1fef5b26245029: tests/chaos_self_healing.rs

tests/chaos_self_healing.rs:
