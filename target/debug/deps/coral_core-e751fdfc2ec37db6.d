/root/repo/target/debug/deps/coral_core-e751fdfc2ec37db6.d: crates/coral-core/src/lib.rs crates/coral-core/src/deploy.rs crates/coral-core/src/metrics.rs crates/coral-core/src/node.rs crates/coral-core/src/obs.rs crates/coral-core/src/pool.rs crates/coral-core/src/reid.rs crates/coral-core/src/runtime.rs crates/coral-core/src/stepper.rs crates/coral-core/src/system.rs crates/coral-core/src/telemetry.rs

/root/repo/target/debug/deps/coral_core-e751fdfc2ec37db6: crates/coral-core/src/lib.rs crates/coral-core/src/deploy.rs crates/coral-core/src/metrics.rs crates/coral-core/src/node.rs crates/coral-core/src/obs.rs crates/coral-core/src/pool.rs crates/coral-core/src/reid.rs crates/coral-core/src/runtime.rs crates/coral-core/src/stepper.rs crates/coral-core/src/system.rs crates/coral-core/src/telemetry.rs

crates/coral-core/src/lib.rs:
crates/coral-core/src/deploy.rs:
crates/coral-core/src/metrics.rs:
crates/coral-core/src/node.rs:
crates/coral-core/src/obs.rs:
crates/coral-core/src/pool.rs:
crates/coral-core/src/reid.rs:
crates/coral-core/src/runtime.rs:
crates/coral-core/src/stepper.rs:
crates/coral-core/src/system.rs:
crates/coral-core/src/telemetry.rs:
