/root/repo/target/debug/deps/chaos_accuracy-75da4074140cca71.d: crates/coral-eval/tests/chaos_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_accuracy-75da4074140cca71.rmeta: crates/coral-eval/tests/chaos_accuracy.rs Cargo.toml

crates/coral-eval/tests/chaos_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
