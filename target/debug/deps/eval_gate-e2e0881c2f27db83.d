/root/repo/target/debug/deps/eval_gate-e2e0881c2f27db83.d: tests/eval_gate.rs

/root/repo/target/debug/deps/eval_gate-e2e0881c2f27db83: tests/eval_gate.rs

tests/eval_gate.rs:
