/root/repo/target/debug/deps/smoke-bd4c7f911e05709a.d: crates/coral-eval/tests/smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke-bd4c7f911e05709a.rmeta: crates/coral-eval/tests/smoke.rs Cargo.toml

crates/coral-eval/tests/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
