/root/repo/target/debug/deps/bytes-44bea1734e3ec365.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-44bea1734e3ec365.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-44bea1734e3ec365.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
