/root/repo/target/debug/deps/cross_mode_determinism-e4c60f44431a0906.d: tests/cross_mode_determinism.rs

/root/repo/target/debug/deps/cross_mode_determinism-e4c60f44431a0906: tests/cross_mode_determinism.rs

tests/cross_mode_determinism.rs:
