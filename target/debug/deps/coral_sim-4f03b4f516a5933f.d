/root/repo/target/debug/deps/coral_sim-4f03b4f516a5933f.d: crates/coral-sim/src/lib.rs crates/coral-sim/src/engine.rs crates/coral-sim/src/failure.rs crates/coral-sim/src/gt.rs crates/coral-sim/src/lights.rs crates/coral-sim/src/netmodel.rs crates/coral-sim/src/observe.rs crates/coral-sim/src/time.rs crates/coral-sim/src/traffic.rs

/root/repo/target/debug/deps/libcoral_sim-4f03b4f516a5933f.rlib: crates/coral-sim/src/lib.rs crates/coral-sim/src/engine.rs crates/coral-sim/src/failure.rs crates/coral-sim/src/gt.rs crates/coral-sim/src/lights.rs crates/coral-sim/src/netmodel.rs crates/coral-sim/src/observe.rs crates/coral-sim/src/time.rs crates/coral-sim/src/traffic.rs

/root/repo/target/debug/deps/libcoral_sim-4f03b4f516a5933f.rmeta: crates/coral-sim/src/lib.rs crates/coral-sim/src/engine.rs crates/coral-sim/src/failure.rs crates/coral-sim/src/gt.rs crates/coral-sim/src/lights.rs crates/coral-sim/src/netmodel.rs crates/coral-sim/src/observe.rs crates/coral-sim/src/time.rs crates/coral-sim/src/traffic.rs

crates/coral-sim/src/lib.rs:
crates/coral-sim/src/engine.rs:
crates/coral-sim/src/failure.rs:
crates/coral-sim/src/gt.rs:
crates/coral-sim/src/lights.rs:
crates/coral-sim/src/netmodel.rs:
crates/coral-sim/src/observe.rs:
crates/coral-sim/src/time.rs:
crates/coral-sim/src/traffic.rs:
