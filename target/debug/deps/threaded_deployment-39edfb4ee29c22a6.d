/root/repo/target/debug/deps/threaded_deployment-39edfb4ee29c22a6.d: tests/threaded_deployment.rs

/root/repo/target/debug/deps/threaded_deployment-39edfb4ee29c22a6: tests/threaded_deployment.rs

tests/threaded_deployment.rs:
