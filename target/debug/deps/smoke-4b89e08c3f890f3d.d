/root/repo/target/debug/deps/smoke-4b89e08c3f890f3d.d: crates/coral-eval/tests/smoke.rs

/root/repo/target/debug/deps/smoke-4b89e08c3f890f3d: crates/coral-eval/tests/smoke.rs

crates/coral-eval/tests/smoke.rs:
