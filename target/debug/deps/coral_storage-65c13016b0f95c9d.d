/root/repo/target/debug/deps/coral_storage-65c13016b0f95c9d.d: crates/coral-storage/src/lib.rs crates/coral-storage/src/frames.rs crates/coral-storage/src/graph.rs crates/coral-storage/src/query.rs crates/coral-storage/src/server.rs

/root/repo/target/debug/deps/libcoral_storage-65c13016b0f95c9d.rlib: crates/coral-storage/src/lib.rs crates/coral-storage/src/frames.rs crates/coral-storage/src/graph.rs crates/coral-storage/src/query.rs crates/coral-storage/src/server.rs

/root/repo/target/debug/deps/libcoral_storage-65c13016b0f95c9d.rmeta: crates/coral-storage/src/lib.rs crates/coral-storage/src/frames.rs crates/coral-storage/src/graph.rs crates/coral-storage/src/query.rs crates/coral-storage/src/server.rs

crates/coral-storage/src/lib.rs:
crates/coral-storage/src/frames.rs:
crates/coral-storage/src/graph.rs:
crates/coral-storage/src/query.rs:
crates/coral-storage/src/server.rs:
