/root/repo/target/debug/deps/coral_storage-b13f8daff6f7a341.d: crates/coral-storage/src/lib.rs crates/coral-storage/src/frames.rs crates/coral-storage/src/graph.rs crates/coral-storage/src/query.rs crates/coral-storage/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libcoral_storage-b13f8daff6f7a341.rmeta: crates/coral-storage/src/lib.rs crates/coral-storage/src/frames.rs crates/coral-storage/src/graph.rs crates/coral-storage/src/query.rs crates/coral-storage/src/server.rs Cargo.toml

crates/coral-storage/src/lib.rs:
crates/coral-storage/src/frames.rs:
crates/coral-storage/src/graph.rs:
crates/coral-storage/src/query.rs:
crates/coral-storage/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
