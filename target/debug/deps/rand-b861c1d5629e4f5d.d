/root/repo/target/debug/deps/rand-b861c1d5629e4f5d.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b861c1d5629e4f5d.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b861c1d5629e4f5d.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
