/root/repo/target/debug/deps/coral_pie-d3af404ecb0feaaf.d: src/lib.rs

/root/repo/target/debug/deps/libcoral_pie-d3af404ecb0feaaf.rlib: src/lib.rs

/root/repo/target/debug/deps/libcoral_pie-d3af404ecb0feaaf.rmeta: src/lib.rs

src/lib.rs:
