/root/repo/target/debug/deps/lane_cameras-3b7cbffbba55137c.d: tests/lane_cameras.rs

/root/repo/target/debug/deps/lane_cameras-3b7cbffbba55137c: tests/lane_cameras.rs

tests/lane_cameras.rs:
