/root/repo/target/debug/deps/proptest-d2b41f5691ec9e8f.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d2b41f5691ec9e8f.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
