/root/repo/target/debug/deps/coral_storage-8d45d75357b09cc2.d: crates/coral-storage/src/lib.rs crates/coral-storage/src/frames.rs crates/coral-storage/src/graph.rs crates/coral-storage/src/query.rs crates/coral-storage/src/server.rs

/root/repo/target/debug/deps/coral_storage-8d45d75357b09cc2: crates/coral-storage/src/lib.rs crates/coral-storage/src/frames.rs crates/coral-storage/src/graph.rs crates/coral-storage/src/query.rs crates/coral-storage/src/server.rs

crates/coral-storage/src/lib.rs:
crates/coral-storage/src/frames.rs:
crates/coral-storage/src/graph.rs:
crates/coral-storage/src/query.rs:
crates/coral-storage/src/server.rs:
