/root/repo/target/debug/deps/exp_fig10b-7ebe785aacddcb80.d: crates/coral-bench/src/bin/exp_fig10b.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig10b-7ebe785aacddcb80.rmeta: crates/coral-bench/src/bin/exp_fig10b.rs Cargo.toml

crates/coral-bench/src/bin/exp_fig10b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
