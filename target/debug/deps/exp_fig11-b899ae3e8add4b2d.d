/root/repo/target/debug/deps/exp_fig11-b899ae3e8add4b2d.d: crates/coral-bench/src/bin/exp_fig11.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig11-b899ae3e8add4b2d.rmeta: crates/coral-bench/src/bin/exp_fig11.rs Cargo.toml

crates/coral-bench/src/bin/exp_fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
