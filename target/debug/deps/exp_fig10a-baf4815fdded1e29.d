/root/repo/target/debug/deps/exp_fig10a-baf4815fdded1e29.d: crates/coral-bench/src/bin/exp_fig10a.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig10a-baf4815fdded1e29.rmeta: crates/coral-bench/src/bin/exp_fig10a.rs Cargo.toml

crates/coral-bench/src/bin/exp_fig10a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
