/root/repo/target/debug/deps/coral_pie-f503ef89f2633246.d: src/lib.rs

/root/repo/target/debug/deps/coral_pie-f503ef89f2633246: src/lib.rs

src/lib.rs:
