/root/repo/target/debug/deps/coral_vision-5a1db1cdabf10218.d: crates/coral-vision/src/lib.rs crates/coral-vision/src/bbox.rs crates/coral-vision/src/detect.rs crates/coral-vision/src/direction.rs crates/coral-vision/src/frame.rs crates/coral-vision/src/histogram.rs crates/coral-vision/src/hungarian.rs crates/coral-vision/src/ident.rs crates/coral-vision/src/interval.rs crates/coral-vision/src/kalman.rs crates/coral-vision/src/render.rs crates/coral-vision/src/sort.rs

/root/repo/target/debug/deps/coral_vision-5a1db1cdabf10218: crates/coral-vision/src/lib.rs crates/coral-vision/src/bbox.rs crates/coral-vision/src/detect.rs crates/coral-vision/src/direction.rs crates/coral-vision/src/frame.rs crates/coral-vision/src/histogram.rs crates/coral-vision/src/hungarian.rs crates/coral-vision/src/ident.rs crates/coral-vision/src/interval.rs crates/coral-vision/src/kalman.rs crates/coral-vision/src/render.rs crates/coral-vision/src/sort.rs

crates/coral-vision/src/lib.rs:
crates/coral-vision/src/bbox.rs:
crates/coral-vision/src/detect.rs:
crates/coral-vision/src/direction.rs:
crates/coral-vision/src/frame.rs:
crates/coral-vision/src/histogram.rs:
crates/coral-vision/src/hungarian.rs:
crates/coral-vision/src/ident.rs:
crates/coral-vision/src/interval.rs:
crates/coral-vision/src/kalman.rs:
crates/coral-vision/src/render.rs:
crates/coral-vision/src/sort.rs:
