/root/repo/target/debug/deps/rand-ff915e01b1b65fc3.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ff915e01b1b65fc3.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
