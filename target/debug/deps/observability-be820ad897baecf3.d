/root/repo/target/debug/deps/observability-be820ad897baecf3.d: tests/observability.rs

/root/repo/target/debug/deps/observability-be820ad897baecf3: tests/observability.rs

tests/observability.rs:
