/root/repo/target/debug/deps/cross_mode_determinism-c081982bea89b38a.d: tests/cross_mode_determinism.rs

/root/repo/target/debug/deps/cross_mode_determinism-c081982bea89b38a: tests/cross_mode_determinism.rs

tests/cross_mode_determinism.rs:
