/root/repo/target/debug/deps/proptest-2b8faeb329983214.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2b8faeb329983214.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2b8faeb329983214.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
