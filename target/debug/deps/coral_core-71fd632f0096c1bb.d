/root/repo/target/debug/deps/coral_core-71fd632f0096c1bb.d: crates/coral-core/src/lib.rs crates/coral-core/src/deploy.rs crates/coral-core/src/metrics.rs crates/coral-core/src/node.rs crates/coral-core/src/obs.rs crates/coral-core/src/pool.rs crates/coral-core/src/reid.rs crates/coral-core/src/runtime.rs crates/coral-core/src/stepper.rs crates/coral-core/src/system.rs crates/coral-core/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libcoral_core-71fd632f0096c1bb.rmeta: crates/coral-core/src/lib.rs crates/coral-core/src/deploy.rs crates/coral-core/src/metrics.rs crates/coral-core/src/node.rs crates/coral-core/src/obs.rs crates/coral-core/src/pool.rs crates/coral-core/src/reid.rs crates/coral-core/src/runtime.rs crates/coral-core/src/stepper.rs crates/coral-core/src/system.rs crates/coral-core/src/telemetry.rs Cargo.toml

crates/coral-core/src/lib.rs:
crates/coral-core/src/deploy.rs:
crates/coral-core/src/metrics.rs:
crates/coral-core/src/node.rs:
crates/coral-core/src/obs.rs:
crates/coral-core/src/pool.rs:
crates/coral-core/src/reid.rs:
crates/coral-core/src/runtime.rs:
crates/coral-core/src/stepper.rs:
crates/coral-core/src/system.rs:
crates/coral-core/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
