/root/repo/target/debug/deps/determinism-f09d9b41788c0149.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-f09d9b41788c0149: tests/determinism.rs

tests/determinism.rs:
