/root/repo/target/debug/deps/uturn-d5b88a06ecd1aeef.d: tests/uturn.rs

/root/repo/target/debug/deps/uturn-d5b88a06ecd1aeef: tests/uturn.rs

tests/uturn.rs:
