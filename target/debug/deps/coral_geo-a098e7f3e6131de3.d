/root/repo/target/debug/deps/coral_geo-a098e7f3e6131de3.d: crates/coral-geo/src/lib.rs crates/coral-geo/src/generators.rs crates/coral-geo/src/point.rs crates/coral-geo/src/polygon.rs crates/coral-geo/src/road.rs crates/coral-geo/src/route.rs

/root/repo/target/debug/deps/libcoral_geo-a098e7f3e6131de3.rlib: crates/coral-geo/src/lib.rs crates/coral-geo/src/generators.rs crates/coral-geo/src/point.rs crates/coral-geo/src/polygon.rs crates/coral-geo/src/road.rs crates/coral-geo/src/route.rs

/root/repo/target/debug/deps/libcoral_geo-a098e7f3e6131de3.rmeta: crates/coral-geo/src/lib.rs crates/coral-geo/src/generators.rs crates/coral-geo/src/point.rs crates/coral-geo/src/polygon.rs crates/coral-geo/src/road.rs crates/coral-geo/src/route.rs

crates/coral-geo/src/lib.rs:
crates/coral-geo/src/generators.rs:
crates/coral-geo/src/point.rs:
crates/coral-geo/src/polygon.rs:
crates/coral-geo/src/road.rs:
crates/coral-geo/src/route.rs:
