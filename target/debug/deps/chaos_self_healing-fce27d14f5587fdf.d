/root/repo/target/debug/deps/chaos_self_healing-fce27d14f5587fdf.d: tests/chaos_self_healing.rs

/root/repo/target/debug/deps/chaos_self_healing-fce27d14f5587fdf: tests/chaos_self_healing.rs

tests/chaos_self_healing.rs:
