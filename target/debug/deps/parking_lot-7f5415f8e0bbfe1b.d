/root/repo/target/debug/deps/parking_lot-7f5415f8e0bbfe1b.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-7f5415f8e0bbfe1b.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
