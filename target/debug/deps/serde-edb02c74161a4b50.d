/root/repo/target/debug/deps/serde-edb02c74161a4b50.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-edb02c74161a4b50.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-edb02c74161a4b50.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
