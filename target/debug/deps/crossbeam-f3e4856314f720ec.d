/root/repo/target/debug/deps/crossbeam-f3e4856314f720ec.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-f3e4856314f720ec.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
