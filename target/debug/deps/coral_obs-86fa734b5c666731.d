/root/repo/target/debug/deps/coral_obs-86fa734b5c666731.d: crates/coral-obs/src/lib.rs crates/coral-obs/src/json.rs crates/coral-obs/src/registry.rs crates/coral-obs/src/trace.rs

/root/repo/target/debug/deps/libcoral_obs-86fa734b5c666731.rlib: crates/coral-obs/src/lib.rs crates/coral-obs/src/json.rs crates/coral-obs/src/registry.rs crates/coral-obs/src/trace.rs

/root/repo/target/debug/deps/libcoral_obs-86fa734b5c666731.rmeta: crates/coral-obs/src/lib.rs crates/coral-obs/src/json.rs crates/coral-obs/src/registry.rs crates/coral-obs/src/trace.rs

crates/coral-obs/src/lib.rs:
crates/coral-obs/src/json.rs:
crates/coral-obs/src/registry.rs:
crates/coral-obs/src/trace.rs:
