/root/repo/target/debug/deps/crossbeam-d3822329c271d773.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-d3822329c271d773.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-d3822329c271d773.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
