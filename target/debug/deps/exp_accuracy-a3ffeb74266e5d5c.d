/root/repo/target/debug/deps/exp_accuracy-a3ffeb74266e5d5c.d: crates/coral-bench/src/bin/exp_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libexp_accuracy-a3ffeb74266e5d5c.rmeta: crates/coral-bench/src/bin/exp_accuracy.rs Cargo.toml

crates/coral-bench/src/bin/exp_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
