/root/repo/target/debug/deps/proptest_sim-3ade8566db768341.d: crates/coral-sim/tests/proptest_sim.rs

/root/repo/target/debug/deps/proptest_sim-3ade8566db768341: crates/coral-sim/tests/proptest_sim.rs

crates/coral-sim/tests/proptest_sim.rs:
