/root/repo/target/debug/deps/parallel_determinism-909b913d09f3f580.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-909b913d09f3f580: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
