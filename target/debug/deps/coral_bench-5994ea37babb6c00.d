/root/repo/target/debug/deps/coral_bench-5994ea37babb6c00.d: crates/coral-bench/src/lib.rs crates/coral-bench/src/deploy.rs crates/coral-bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libcoral_bench-5994ea37babb6c00.rmeta: crates/coral-bench/src/lib.rs crates/coral-bench/src/deploy.rs crates/coral-bench/src/report.rs Cargo.toml

crates/coral-bench/src/lib.rs:
crates/coral-bench/src/deploy.rs:
crates/coral-bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
