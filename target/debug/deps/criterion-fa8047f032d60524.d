/root/repo/target/debug/deps/criterion-fa8047f032d60524.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-fa8047f032d60524.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
