/root/repo/target/debug/deps/parallel_determinism-46e6dab424411d93.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-46e6dab424411d93: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
