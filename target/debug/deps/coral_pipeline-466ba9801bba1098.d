/root/repo/target/debug/deps/coral_pipeline-466ba9801bba1098.d: crates/coral-pipeline/src/lib.rs crates/coral-pipeline/src/device.rs crates/coral-pipeline/src/pipeline.rs crates/coral-pipeline/src/profile.rs crates/coral-pipeline/src/profiler.rs Cargo.toml

/root/repo/target/debug/deps/libcoral_pipeline-466ba9801bba1098.rmeta: crates/coral-pipeline/src/lib.rs crates/coral-pipeline/src/device.rs crates/coral-pipeline/src/pipeline.rs crates/coral-pipeline/src/profile.rs crates/coral-pipeline/src/profiler.rs Cargo.toml

crates/coral-pipeline/src/lib.rs:
crates/coral-pipeline/src/device.rs:
crates/coral-pipeline/src/pipeline.rs:
crates/coral-pipeline/src/profile.rs:
crates/coral-pipeline/src/profiler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
