/root/repo/target/debug/deps/exp_fig11_chaos-931a6471b51ef811.d: crates/coral-bench/src/bin/exp_fig11_chaos.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig11_chaos-931a6471b51ef811.rmeta: crates/coral-bench/src/bin/exp_fig11_chaos.rs Cargo.toml

crates/coral-bench/src/bin/exp_fig11_chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
