/root/repo/target/debug/deps/bytes-d58cbd8664c012b2.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-d58cbd8664c012b2.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
