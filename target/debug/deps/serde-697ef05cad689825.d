/root/repo/target/debug/deps/serde-697ef05cad689825.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-697ef05cad689825.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
