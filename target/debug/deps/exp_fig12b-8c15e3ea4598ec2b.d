/root/repo/target/debug/deps/exp_fig12b-8c15e3ea4598ec2b.d: crates/coral-bench/src/bin/exp_fig12b.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig12b-8c15e3ea4598ec2b.rmeta: crates/coral-bench/src/bin/exp_fig12b.rs Cargo.toml

crates/coral-bench/src/bin/exp_fig12b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
