/root/repo/target/debug/deps/serde_json-203b0e23baed38ec.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-203b0e23baed38ec.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
