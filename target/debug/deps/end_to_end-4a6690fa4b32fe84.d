/root/repo/target/debug/deps/end_to_end-4a6690fa4b32fe84.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-4a6690fa4b32fe84: tests/end_to_end.rs

tests/end_to_end.rs:
