/root/repo/target/debug/deps/coral_pipeline-d17e0713dc9d5397.d: crates/coral-pipeline/src/lib.rs crates/coral-pipeline/src/device.rs crates/coral-pipeline/src/pipeline.rs crates/coral-pipeline/src/profile.rs crates/coral-pipeline/src/profiler.rs

/root/repo/target/debug/deps/libcoral_pipeline-d17e0713dc9d5397.rlib: crates/coral-pipeline/src/lib.rs crates/coral-pipeline/src/device.rs crates/coral-pipeline/src/pipeline.rs crates/coral-pipeline/src/profile.rs crates/coral-pipeline/src/profiler.rs

/root/repo/target/debug/deps/libcoral_pipeline-d17e0713dc9d5397.rmeta: crates/coral-pipeline/src/lib.rs crates/coral-pipeline/src/device.rs crates/coral-pipeline/src/pipeline.rs crates/coral-pipeline/src/profile.rs crates/coral-pipeline/src/profiler.rs

crates/coral-pipeline/src/lib.rs:
crates/coral-pipeline/src/device.rs:
crates/coral-pipeline/src/pipeline.rs:
crates/coral-pipeline/src/profile.rs:
crates/coral-pipeline/src/profiler.rs:
