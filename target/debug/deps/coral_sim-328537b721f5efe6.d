/root/repo/target/debug/deps/coral_sim-328537b721f5efe6.d: crates/coral-sim/src/lib.rs crates/coral-sim/src/engine.rs crates/coral-sim/src/failure.rs crates/coral-sim/src/gt.rs crates/coral-sim/src/lights.rs crates/coral-sim/src/netmodel.rs crates/coral-sim/src/observe.rs crates/coral-sim/src/time.rs crates/coral-sim/src/traffic.rs

/root/repo/target/debug/deps/coral_sim-328537b721f5efe6: crates/coral-sim/src/lib.rs crates/coral-sim/src/engine.rs crates/coral-sim/src/failure.rs crates/coral-sim/src/gt.rs crates/coral-sim/src/lights.rs crates/coral-sim/src/netmodel.rs crates/coral-sim/src/observe.rs crates/coral-sim/src/time.rs crates/coral-sim/src/traffic.rs

crates/coral-sim/src/lib.rs:
crates/coral-sim/src/engine.rs:
crates/coral-sim/src/failure.rs:
crates/coral-sim/src/gt.rs:
crates/coral-sim/src/lights.rs:
crates/coral-sim/src/netmodel.rs:
crates/coral-sim/src/observe.rs:
crates/coral-sim/src/time.rs:
crates/coral-sim/src/traffic.rs:
