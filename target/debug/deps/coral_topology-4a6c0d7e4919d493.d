/root/repo/target/debug/deps/coral_topology-4a6c0d7e4919d493.d: crates/coral-topology/src/lib.rs crates/coral-topology/src/camera.rs crates/coral-topology/src/mdcs.rs crates/coral-topology/src/server.rs crates/coral-topology/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libcoral_topology-4a6c0d7e4919d493.rmeta: crates/coral-topology/src/lib.rs crates/coral-topology/src/camera.rs crates/coral-topology/src/mdcs.rs crates/coral-topology/src/server.rs crates/coral-topology/src/topology.rs Cargo.toml

crates/coral-topology/src/lib.rs:
crates/coral-topology/src/camera.rs:
crates/coral-topology/src/mdcs.rs:
crates/coral-topology/src/server.rs:
crates/coral-topology/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
