/root/repo/target/debug/deps/coral_net-841347550c4cc997.d: crates/coral-net/src/lib.rs crates/coral-net/src/connection.rs crates/coral-net/src/faulty.rs crates/coral-net/src/message.rs crates/coral-net/src/metered.rs crates/coral-net/src/reliable.rs crates/coral-net/src/socket_group.rs crates/coral-net/src/tcp.rs crates/coral-net/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libcoral_net-841347550c4cc997.rmeta: crates/coral-net/src/lib.rs crates/coral-net/src/connection.rs crates/coral-net/src/faulty.rs crates/coral-net/src/message.rs crates/coral-net/src/metered.rs crates/coral-net/src/reliable.rs crates/coral-net/src/socket_group.rs crates/coral-net/src/tcp.rs crates/coral-net/src/transport.rs Cargo.toml

crates/coral-net/src/lib.rs:
crates/coral-net/src/connection.rs:
crates/coral-net/src/faulty.rs:
crates/coral-net/src/message.rs:
crates/coral-net/src/metered.rs:
crates/coral-net/src/reliable.rs:
crates/coral-net/src/socket_group.rs:
crates/coral-net/src/tcp.rs:
crates/coral-net/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
