/root/repo/target/debug/deps/determinism-cfa4d6a69f18c257.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-cfa4d6a69f18c257: tests/determinism.rs

tests/determinism.rs:
