/root/repo/target/debug/deps/coral_eval-a13fb0f3322bd8de.d: crates/coral-eval/src/lib.rs crates/coral-eval/src/attribution.rs crates/coral-eval/src/golden.rs crates/coral-eval/src/replay.rs crates/coral-eval/src/score.rs crates/coral-eval/src/tracks.rs

/root/repo/target/debug/deps/coral_eval-a13fb0f3322bd8de: crates/coral-eval/src/lib.rs crates/coral-eval/src/attribution.rs crates/coral-eval/src/golden.rs crates/coral-eval/src/replay.rs crates/coral-eval/src/score.rs crates/coral-eval/src/tracks.rs

crates/coral-eval/src/lib.rs:
crates/coral-eval/src/attribution.rs:
crates/coral-eval/src/golden.rs:
crates/coral-eval/src/replay.rs:
crates/coral-eval/src/score.rs:
crates/coral-eval/src/tracks.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/coral-eval
