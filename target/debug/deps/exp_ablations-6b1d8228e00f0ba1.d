/root/repo/target/debug/deps/exp_ablations-6b1d8228e00f0ba1.d: crates/coral-bench/src/bin/exp_ablations.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablations-6b1d8228e00f0ba1.rmeta: crates/coral-bench/src/bin/exp_ablations.rs Cargo.toml

crates/coral-bench/src/bin/exp_ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
