/root/repo/target/debug/deps/parking_lot-d30fad52a38ff9c8.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d30fad52a38ff9c8.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-d30fad52a38ff9c8.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
