/root/repo/target/debug/deps/exp_bandwidth-de1f06cb42307620.d: crates/coral-bench/src/bin/exp_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libexp_bandwidth-de1f06cb42307620.rmeta: crates/coral-bench/src/bin/exp_bandwidth.rs Cargo.toml

crates/coral-bench/src/bin/exp_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
