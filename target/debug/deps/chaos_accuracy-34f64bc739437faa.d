/root/repo/target/debug/deps/chaos_accuracy-34f64bc739437faa.d: crates/coral-eval/tests/chaos_accuracy.rs

/root/repo/target/debug/deps/chaos_accuracy-34f64bc739437faa: crates/coral-eval/tests/chaos_accuracy.rs

crates/coral-eval/tests/chaos_accuracy.rs:
