/root/repo/target/debug/deps/exp_table2-d35154e06ff7b38b.d: crates/coral-bench/src/bin/exp_table2.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table2-d35154e06ff7b38b.rmeta: crates/coral-bench/src/bin/exp_table2.rs Cargo.toml

crates/coral-bench/src/bin/exp_table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
