/root/repo/target/debug/deps/exp_scalability-2528e6fa14983b9b.d: crates/coral-bench/src/bin/exp_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libexp_scalability-2528e6fa14983b9b.rmeta: crates/coral-bench/src/bin/exp_scalability.rs Cargo.toml

crates/coral-bench/src/bin/exp_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
