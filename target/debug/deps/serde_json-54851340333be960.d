/root/repo/target/debug/deps/serde_json-54851340333be960.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-54851340333be960.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-54851340333be960.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
