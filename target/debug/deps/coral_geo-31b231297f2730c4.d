/root/repo/target/debug/deps/coral_geo-31b231297f2730c4.d: crates/coral-geo/src/lib.rs crates/coral-geo/src/generators.rs crates/coral-geo/src/point.rs crates/coral-geo/src/polygon.rs crates/coral-geo/src/road.rs crates/coral-geo/src/route.rs Cargo.toml

/root/repo/target/debug/deps/libcoral_geo-31b231297f2730c4.rmeta: crates/coral-geo/src/lib.rs crates/coral-geo/src/generators.rs crates/coral-geo/src/point.rs crates/coral-geo/src/polygon.rs crates/coral-geo/src/road.rs crates/coral-geo/src/route.rs Cargo.toml

crates/coral-geo/src/lib.rs:
crates/coral-geo/src/generators.rs:
crates/coral-geo/src/point.rs:
crates/coral-geo/src/polygon.rs:
crates/coral-geo/src/road.rs:
crates/coral-geo/src/route.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
