/root/repo/target/release/deps/coral_bench-b5801d00573e5835.d: crates/coral-bench/src/lib.rs crates/coral-bench/src/deploy.rs crates/coral-bench/src/report.rs

/root/repo/target/release/deps/libcoral_bench-b5801d00573e5835.rlib: crates/coral-bench/src/lib.rs crates/coral-bench/src/deploy.rs crates/coral-bench/src/report.rs

/root/repo/target/release/deps/libcoral_bench-b5801d00573e5835.rmeta: crates/coral-bench/src/lib.rs crates/coral-bench/src/deploy.rs crates/coral-bench/src/report.rs

crates/coral-bench/src/lib.rs:
crates/coral-bench/src/deploy.rs:
crates/coral-bench/src/report.rs:
