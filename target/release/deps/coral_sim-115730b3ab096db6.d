/root/repo/target/release/deps/coral_sim-115730b3ab096db6.d: crates/coral-sim/src/lib.rs crates/coral-sim/src/engine.rs crates/coral-sim/src/failure.rs crates/coral-sim/src/gt.rs crates/coral-sim/src/lights.rs crates/coral-sim/src/netmodel.rs crates/coral-sim/src/observe.rs crates/coral-sim/src/time.rs crates/coral-sim/src/traffic.rs

/root/repo/target/release/deps/libcoral_sim-115730b3ab096db6.rlib: crates/coral-sim/src/lib.rs crates/coral-sim/src/engine.rs crates/coral-sim/src/failure.rs crates/coral-sim/src/gt.rs crates/coral-sim/src/lights.rs crates/coral-sim/src/netmodel.rs crates/coral-sim/src/observe.rs crates/coral-sim/src/time.rs crates/coral-sim/src/traffic.rs

/root/repo/target/release/deps/libcoral_sim-115730b3ab096db6.rmeta: crates/coral-sim/src/lib.rs crates/coral-sim/src/engine.rs crates/coral-sim/src/failure.rs crates/coral-sim/src/gt.rs crates/coral-sim/src/lights.rs crates/coral-sim/src/netmodel.rs crates/coral-sim/src/observe.rs crates/coral-sim/src/time.rs crates/coral-sim/src/traffic.rs

crates/coral-sim/src/lib.rs:
crates/coral-sim/src/engine.rs:
crates/coral-sim/src/failure.rs:
crates/coral-sim/src/gt.rs:
crates/coral-sim/src/lights.rs:
crates/coral-sim/src/netmodel.rs:
crates/coral-sim/src/observe.rs:
crates/coral-sim/src/time.rs:
crates/coral-sim/src/traffic.rs:
