/root/repo/target/release/deps/coral_eval-b0e6e4dd5912b5ab.d: crates/coral-eval/src/lib.rs crates/coral-eval/src/attribution.rs crates/coral-eval/src/golden.rs crates/coral-eval/src/replay.rs crates/coral-eval/src/score.rs crates/coral-eval/src/tracks.rs

/root/repo/target/release/deps/libcoral_eval-b0e6e4dd5912b5ab.rlib: crates/coral-eval/src/lib.rs crates/coral-eval/src/attribution.rs crates/coral-eval/src/golden.rs crates/coral-eval/src/replay.rs crates/coral-eval/src/score.rs crates/coral-eval/src/tracks.rs

/root/repo/target/release/deps/libcoral_eval-b0e6e4dd5912b5ab.rmeta: crates/coral-eval/src/lib.rs crates/coral-eval/src/attribution.rs crates/coral-eval/src/golden.rs crates/coral-eval/src/replay.rs crates/coral-eval/src/score.rs crates/coral-eval/src/tracks.rs

crates/coral-eval/src/lib.rs:
crates/coral-eval/src/attribution.rs:
crates/coral-eval/src/golden.rs:
crates/coral-eval/src/replay.rs:
crates/coral-eval/src/score.rs:
crates/coral-eval/src/tracks.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/coral-eval
