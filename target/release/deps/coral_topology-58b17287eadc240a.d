/root/repo/target/release/deps/coral_topology-58b17287eadc240a.d: crates/coral-topology/src/lib.rs crates/coral-topology/src/camera.rs crates/coral-topology/src/mdcs.rs crates/coral-topology/src/server.rs crates/coral-topology/src/topology.rs

/root/repo/target/release/deps/libcoral_topology-58b17287eadc240a.rlib: crates/coral-topology/src/lib.rs crates/coral-topology/src/camera.rs crates/coral-topology/src/mdcs.rs crates/coral-topology/src/server.rs crates/coral-topology/src/topology.rs

/root/repo/target/release/deps/libcoral_topology-58b17287eadc240a.rmeta: crates/coral-topology/src/lib.rs crates/coral-topology/src/camera.rs crates/coral-topology/src/mdcs.rs crates/coral-topology/src/server.rs crates/coral-topology/src/topology.rs

crates/coral-topology/src/lib.rs:
crates/coral-topology/src/camera.rs:
crates/coral-topology/src/mdcs.rs:
crates/coral-topology/src/server.rs:
crates/coral-topology/src/topology.rs:
