/root/repo/target/release/deps/crossbeam-f48ed05c06ee35f3.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f48ed05c06ee35f3.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f48ed05c06ee35f3.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
