/root/repo/target/release/deps/coral_obs-18212107e7c1d748.d: crates/coral-obs/src/lib.rs crates/coral-obs/src/json.rs crates/coral-obs/src/registry.rs crates/coral-obs/src/trace.rs

/root/repo/target/release/deps/libcoral_obs-18212107e7c1d748.rlib: crates/coral-obs/src/lib.rs crates/coral-obs/src/json.rs crates/coral-obs/src/registry.rs crates/coral-obs/src/trace.rs

/root/repo/target/release/deps/libcoral_obs-18212107e7c1d748.rmeta: crates/coral-obs/src/lib.rs crates/coral-obs/src/json.rs crates/coral-obs/src/registry.rs crates/coral-obs/src/trace.rs

crates/coral-obs/src/lib.rs:
crates/coral-obs/src/json.rs:
crates/coral-obs/src/registry.rs:
crates/coral-obs/src/trace.rs:
