/root/repo/target/release/deps/exp_accuracy-571d7028d2e0e2f7.d: crates/coral-bench/src/bin/exp_accuracy.rs

/root/repo/target/release/deps/exp_accuracy-571d7028d2e0e2f7: crates/coral-bench/src/bin/exp_accuracy.rs

crates/coral-bench/src/bin/exp_accuracy.rs:
