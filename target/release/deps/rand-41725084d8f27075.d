/root/repo/target/release/deps/rand-41725084d8f27075.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-41725084d8f27075.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-41725084d8f27075.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
