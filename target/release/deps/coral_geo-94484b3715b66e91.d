/root/repo/target/release/deps/coral_geo-94484b3715b66e91.d: crates/coral-geo/src/lib.rs crates/coral-geo/src/generators.rs crates/coral-geo/src/point.rs crates/coral-geo/src/polygon.rs crates/coral-geo/src/road.rs crates/coral-geo/src/route.rs

/root/repo/target/release/deps/libcoral_geo-94484b3715b66e91.rlib: crates/coral-geo/src/lib.rs crates/coral-geo/src/generators.rs crates/coral-geo/src/point.rs crates/coral-geo/src/polygon.rs crates/coral-geo/src/road.rs crates/coral-geo/src/route.rs

/root/repo/target/release/deps/libcoral_geo-94484b3715b66e91.rmeta: crates/coral-geo/src/lib.rs crates/coral-geo/src/generators.rs crates/coral-geo/src/point.rs crates/coral-geo/src/polygon.rs crates/coral-geo/src/road.rs crates/coral-geo/src/route.rs

crates/coral-geo/src/lib.rs:
crates/coral-geo/src/generators.rs:
crates/coral-geo/src/point.rs:
crates/coral-geo/src/polygon.rs:
crates/coral-geo/src/road.rs:
crates/coral-geo/src/route.rs:
