/root/repo/target/release/deps/coral_net-d6f8255f9aff64e0.d: crates/coral-net/src/lib.rs crates/coral-net/src/connection.rs crates/coral-net/src/faulty.rs crates/coral-net/src/message.rs crates/coral-net/src/metered.rs crates/coral-net/src/reliable.rs crates/coral-net/src/socket_group.rs crates/coral-net/src/tcp.rs crates/coral-net/src/transport.rs

/root/repo/target/release/deps/libcoral_net-d6f8255f9aff64e0.rlib: crates/coral-net/src/lib.rs crates/coral-net/src/connection.rs crates/coral-net/src/faulty.rs crates/coral-net/src/message.rs crates/coral-net/src/metered.rs crates/coral-net/src/reliable.rs crates/coral-net/src/socket_group.rs crates/coral-net/src/tcp.rs crates/coral-net/src/transport.rs

/root/repo/target/release/deps/libcoral_net-d6f8255f9aff64e0.rmeta: crates/coral-net/src/lib.rs crates/coral-net/src/connection.rs crates/coral-net/src/faulty.rs crates/coral-net/src/message.rs crates/coral-net/src/metered.rs crates/coral-net/src/reliable.rs crates/coral-net/src/socket_group.rs crates/coral-net/src/tcp.rs crates/coral-net/src/transport.rs

crates/coral-net/src/lib.rs:
crates/coral-net/src/connection.rs:
crates/coral-net/src/faulty.rs:
crates/coral-net/src/message.rs:
crates/coral-net/src/metered.rs:
crates/coral-net/src/reliable.rs:
crates/coral-net/src/socket_group.rs:
crates/coral-net/src/tcp.rs:
crates/coral-net/src/transport.rs:
