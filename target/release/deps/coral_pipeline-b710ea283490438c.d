/root/repo/target/release/deps/coral_pipeline-b710ea283490438c.d: crates/coral-pipeline/src/lib.rs crates/coral-pipeline/src/device.rs crates/coral-pipeline/src/pipeline.rs crates/coral-pipeline/src/profile.rs crates/coral-pipeline/src/profiler.rs

/root/repo/target/release/deps/libcoral_pipeline-b710ea283490438c.rlib: crates/coral-pipeline/src/lib.rs crates/coral-pipeline/src/device.rs crates/coral-pipeline/src/pipeline.rs crates/coral-pipeline/src/profile.rs crates/coral-pipeline/src/profiler.rs

/root/repo/target/release/deps/libcoral_pipeline-b710ea283490438c.rmeta: crates/coral-pipeline/src/lib.rs crates/coral-pipeline/src/device.rs crates/coral-pipeline/src/pipeline.rs crates/coral-pipeline/src/profile.rs crates/coral-pipeline/src/profiler.rs

crates/coral-pipeline/src/lib.rs:
crates/coral-pipeline/src/device.rs:
crates/coral-pipeline/src/pipeline.rs:
crates/coral-pipeline/src/profile.rs:
crates/coral-pipeline/src/profiler.rs:
