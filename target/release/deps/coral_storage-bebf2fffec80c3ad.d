/root/repo/target/release/deps/coral_storage-bebf2fffec80c3ad.d: crates/coral-storage/src/lib.rs crates/coral-storage/src/frames.rs crates/coral-storage/src/graph.rs crates/coral-storage/src/query.rs crates/coral-storage/src/server.rs

/root/repo/target/release/deps/libcoral_storage-bebf2fffec80c3ad.rlib: crates/coral-storage/src/lib.rs crates/coral-storage/src/frames.rs crates/coral-storage/src/graph.rs crates/coral-storage/src/query.rs crates/coral-storage/src/server.rs

/root/repo/target/release/deps/libcoral_storage-bebf2fffec80c3ad.rmeta: crates/coral-storage/src/lib.rs crates/coral-storage/src/frames.rs crates/coral-storage/src/graph.rs crates/coral-storage/src/query.rs crates/coral-storage/src/server.rs

crates/coral-storage/src/lib.rs:
crates/coral-storage/src/frames.rs:
crates/coral-storage/src/graph.rs:
crates/coral-storage/src/query.rs:
crates/coral-storage/src/server.rs:
