/root/repo/target/release/deps/coral_core-3bcc98d3d2b185f6.d: crates/coral-core/src/lib.rs crates/coral-core/src/deploy.rs crates/coral-core/src/metrics.rs crates/coral-core/src/node.rs crates/coral-core/src/obs.rs crates/coral-core/src/pool.rs crates/coral-core/src/reid.rs crates/coral-core/src/runtime.rs crates/coral-core/src/stepper.rs crates/coral-core/src/system.rs crates/coral-core/src/telemetry.rs

/root/repo/target/release/deps/libcoral_core-3bcc98d3d2b185f6.rlib: crates/coral-core/src/lib.rs crates/coral-core/src/deploy.rs crates/coral-core/src/metrics.rs crates/coral-core/src/node.rs crates/coral-core/src/obs.rs crates/coral-core/src/pool.rs crates/coral-core/src/reid.rs crates/coral-core/src/runtime.rs crates/coral-core/src/stepper.rs crates/coral-core/src/system.rs crates/coral-core/src/telemetry.rs

/root/repo/target/release/deps/libcoral_core-3bcc98d3d2b185f6.rmeta: crates/coral-core/src/lib.rs crates/coral-core/src/deploy.rs crates/coral-core/src/metrics.rs crates/coral-core/src/node.rs crates/coral-core/src/obs.rs crates/coral-core/src/pool.rs crates/coral-core/src/reid.rs crates/coral-core/src/runtime.rs crates/coral-core/src/stepper.rs crates/coral-core/src/system.rs crates/coral-core/src/telemetry.rs

crates/coral-core/src/lib.rs:
crates/coral-core/src/deploy.rs:
crates/coral-core/src/metrics.rs:
crates/coral-core/src/node.rs:
crates/coral-core/src/obs.rs:
crates/coral-core/src/pool.rs:
crates/coral-core/src/reid.rs:
crates/coral-core/src/runtime.rs:
crates/coral-core/src/stepper.rs:
crates/coral-core/src/system.rs:
crates/coral-core/src/telemetry.rs:
