/root/repo/target/release/deps/coral_pie-79e590e39328f00a.d: src/lib.rs

/root/repo/target/release/deps/libcoral_pie-79e590e39328f00a.rlib: src/lib.rs

/root/repo/target/release/deps/libcoral_pie-79e590e39328f00a.rmeta: src/lib.rs

src/lib.rs:
