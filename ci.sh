#!/usr/bin/env bash
# Local CI: formatting, lints, then the tier-1 gate (release build + root
# test suite). Run from the repository root. Any failure stops the script.
#
#   ./ci.sh            # everything
#   ./ci.sh --quick    # skip the release build (lints + tests only)

set -euo pipefail
cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        *)
            echo "unknown option: $arg" >&2
            exit 2
            ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# The network layer must never panic on a send path: deny unwrap in
# non-test coral-net code (--lib excludes #[cfg(test)] modules).
echo "==> cargo clippy -p coral-net --lib (deny unwrap_used)"
cargo clippy -p coral-net --lib -- -D warnings -D clippy::unwrap-used

# The evaluation layer is itself a gate; keep it strictly lint-clean.
echo "==> cargo clippy -p coral-eval (deny warnings)"
cargo clippy -p coral-eval --all-targets -- -D warnings

# The observability layer is what operators trust during an incident;
# keep it strictly lint-clean too.
echo "==> cargo clippy -p coral-obs (deny warnings)"
cargo clippy -p coral-obs --all-targets -- -D warnings

# Perf-lint gate for the tick hot path: the sparse stepper and the flat
# vision kernels must stay allocation-lean, so deny the lints that catch
# accidental re-introduction of per-tick churn.
echo "==> cargo clippy -p coral-core -p coral-vision (perf lints)"
cargo clippy -p coral-core -p coral-vision --all-targets -- \
    -D warnings -D clippy::needless_collect -D clippy::large_enum_variant

# The scenario engine defines the hard-suite ground truth; keep it
# strictly lint-clean.
echo "==> cargo clippy -p coral-sim (deny warnings)"
cargo clippy -p coral-sim --all-targets -- -D warnings

# The storage crate is the concurrent query-serving plane (sharded locks,
# compaction, snapshots); keep it strictly lint-clean on its own.
echo "==> cargo clippy -p coral-storage (deny warnings)"
cargo clippy -p coral-storage --all-targets -- -D warnings

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

if [ "$quick" -eq 0 ]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q -p coral-obs"
cargo test -q -p coral-obs

echo "==> cargo test -q"
cargo test -q

# Ops-plane smoke: a threaded deployment with the live HTTP endpoint —
# /metrics and /healthz answer, health is OK on clean links and degrades
# (non-OK retransmit-rate finding) on a lossy network.
echo "==> ops endpoint smoke (threaded)"
cargo test -q --test ops_endpoint

# Seeded chaos matrix: the self-healing bound must hold under every
# pinned fault seed (each test wires a different FaultPlan seed).
for seed in a b c; do
    echo "==> chaos matrix: fault seed ${seed}"
    cargo test -q --test chaos_self_healing "chaos_recovery_seed_${seed}"
done

# Federation gates: a whole-region partition (topology server + edge
# store dark for 30 s of sim time) must be journaled, fail the orphaned
# cameras over onto the survivor, heal within twice the heartbeat-miss
# deadline, and lose no committed trajectory edge — per pinned fault
# seed. The byte-identity test pins `FederationConfig`'s single-region
# default to the pre-federation event stream; the replica-convergence
# proptests prove the union view is delivery-order-insensitive; the ops
# test pins /healthz flipping CRITICAL for exactly the dead region.
for seed in a b c; do
    echo "==> federation chaos matrix: fault seed ${seed}"
    cargo test -q --test federation_chaos "region_kill_seed_${seed}"
done
echo "==> federation single-region byte-identity"
cargo test -q --test federation_chaos single_region_federation_is_byte_identical
echo "==> federation replica-convergence proptests"
cargo test -q -p coral-storage --test proptest_replica_convergence
echo "==> federation ops visibility"
cargo test -q --test ops_plane region_partition_flips_health_for_exactly_the_dead_region
if [ "$quick" -eq 0 ]; then
    echo "==> federation city-grid partition (release)"
    cargo test -q --release --test federation_chaos -- --ignored
    echo "==> exp_region_failover accuracy/recovery gate (smoke)"
    CORAL_FEDERATION_SMOKE=1 cargo run --release -p coral-bench --bin exp_region_failover
fi

# Accuracy regression gates: replay corridor scenarios, score against the
# simulator's ground-truth log, and diff MOTA/IDF1/per-camera F2 against
# the checked-in goldens (tolerance +/-0.02; counts and seeds exact).
# Bless intentional metric changes with CORAL_EVAL_BLESS=1. The ignored
# matrix widens coverage to 3 corridor widths x 2 seeds.
echo "==> eval smoke + golden drift gate"
cargo test -q -p coral-eval
echo "==> eval matrix: 3 scenarios x 2 seeds"
cargo test -q -p coral-eval --test smoke -- --ignored

# Hard-suite accuracy gate: the four city-scale adversarial regimes must
# run, keep at least one headline score strictly inside the informative
# (0.7, 0.995) band — below saturation, above collapse — and match their
# checked-in goldens within +/-0.02 (counts exact). Release only: each
# scenario simulates a 10x10 city for 8 minutes of traffic. Bless
# intentional metric changes with CORAL_EVAL_BLESS=1.
if [ "$quick" -eq 0 ]; then
    echo "==> hard-suite accuracy gate (release)"
    cargo test -q --release -p coral-eval --test hard_suite -- --ignored
    echo "==> hard-regimes determinism matrix (release)"
    cargo test -q --release --test hard_regimes -- --ignored
fi

# Storage plane gates: shard-vs-flat equivalence and compaction
# invariance (property tests), snapshot round-trips with typed corruption
# errors, and the writer/reader stress race (deadlock watchdog, torn-read
# checks, sequential-equivalence fingerprint). All three also run inside
# `cargo test -q`; the explicit invocations keep the gate legible and
# fail fast with a named stage.
echo "==> storage equivalence proptests"
cargo test -q -p coral-storage --test proptest_shard_equivalence
echo "==> storage snapshot round-trip + corruption typing"
cargo test -q -p coral-storage --test snapshot_roundtrip
echo "==> storage concurrency stress"
cargo test -q --test storage_concurrency

# Parallel determinism matrix: every scenario x seed must fingerprint
# byte-identically at parallelism 1, 2 and 8 (the smoke subset already ran
# in `cargo test -q`; `--ignored` runs the full 8x3x2 matrix). The release
# pass guards against optimisation-dependent divergence.
echo "==> parallel determinism matrix (debug)"
cargo test -q --test parallel_determinism -- --ignored
if [ "$quick" -eq 0 ]; then
    echo "==> parallel determinism matrix (release)"
    cargo test -q --release --test parallel_determinism -- --ignored
fi

# Sparse-stepping equivalence matrix: the occupancy-index early-out must
# fingerprint byte-identically to dense stepping on every scenario x seed
# (the smoke subset already ran in `cargo test -q`).
echo "==> sparse equivalence matrix (debug)"
cargo test -q --test sparse_equivalence -- --ignored
if [ "$quick" -eq 0 ]; then
    echo "==> sparse equivalence matrix (release)"
    cargo test -q --release --test sparse_equivalence -- --ignored
fi

# Scale smoke: the 1000-camera deployment must build, warm past its join
# storm, and tick in both stepping modes (a few simulated seconds only;
# asserts sparse beats dense). Skipped in --quick (needs the release
# build).
if [ "$quick" -eq 0 ]; then
    echo "==> exp_speedup 1000-camera smoke"
    CORAL_SPEEDUP_ONLY=1000 CORAL_SPEEDUP_SECS=16 \
        cargo run --release -p coral-bench --bin exp_speedup
fi

# Storage query-plane smoke: readers race live 100-camera ingest on an
# 8-shard store; asserts a conservative qps floor. Full runs write
# BENCH_storage.json (see EXPERIMENTS.md). Skipped in --quick (needs the
# release build).
if [ "$quick" -eq 0 ]; then
    echo "==> exp_storage concurrent-query smoke"
    CORAL_STORAGE_SMOKE=1 cargo run --release -p coral-bench --bin exp_storage
fi

# Criterion smoke: compile and run every bench once in test mode so the
# perf harness cannot rot silently.
echo "==> criterion smoke: vision_micro + full_tick"
cargo bench -p coral-bench --bench vision_micro -- --test
cargo bench -p coral-bench --bench full_tick -- --test

echo "==> ci.sh: all green"
