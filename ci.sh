#!/usr/bin/env bash
# Local CI: formatting, lints, then the tier-1 gate (release build + root
# test suite). Run from the repository root. Any failure stops the script.
#
#   ./ci.sh            # everything
#   ./ci.sh --quick    # skip the release build (lints + tests only)

set -euo pipefail
cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        *)
            echo "unknown option: $arg" >&2
            exit 2
            ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

if [ "$quick" -eq 0 ]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q -p coral-obs"
cargo test -q -p coral-obs

echo "==> cargo test -q"
cargo test -q

echo "==> ci.sh: all green"
