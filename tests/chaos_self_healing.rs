//! Chaos variant of the self-healing study: failure recovery under a
//! lossy, duplicating network.
//!
//! Every link drops 5% and duplicates 1% of envelopes (seeded, so each
//! run is reproducible). The reliable transport must mask the loss —
//! heartbeats keep the roster honest, topology updates reach every
//! survivor — and the idempotent ingest must mask the duplication: no
//! duplicate trajectory edges. The paper's Fig. 11 bound is asserted with
//! 2x headroom: recovery within twice the heartbeat-miss deadline.

use coral_pie::core::{CameraSpec, CoralPieSystem, NodeConfig, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::net::{FaultPlan, FaultPolicy, RetryPolicy};
use coral_pie::sim::{FailureEvent, FailureKind, FailureSchedule, SimDuration, SimTime};
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, ObjectClass};

const HEARTBEAT_S: u64 = 2;
const MISS_THRESHOLD: u64 = 2;
/// Twice the heartbeat-miss deadline: the chaos-run recovery bound.
const RECOVERY_BOUND: SimDuration = SimDuration::from_secs(2 * MISS_THRESHOLD * HEARTBEAT_S);

fn chaos_system(n: usize, fault_seed: u64) -> (CoralPieSystem, coral_pie::geo::RoadNetwork) {
    let net = generators::corridor(n, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..n)
        .map(|i| CameraSpec {
            id: CameraId(i as u32),
            site: IntersectionId(i as u32),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            ..NodeConfig::default()
        },
        heartbeat_interval: SimDuration::from_secs(HEARTBEAT_S),
        faults: Some(FaultPlan::uniform(
            FaultPolicy {
                drop: 0.05,
                duplicate: 0.01,
                ..FaultPolicy::default()
            },
            fault_seed,
        )),
        reliability: Some(RetryPolicy::default()),
        ..SystemConfig::default()
    };
    (CoralPieSystem::new(net.clone(), &specs, config), net)
}

/// Sums every sample of a counter family across its labels from the
/// Prometheus rendering (chaos and reliability counters are per-link).
fn counter_sum(sys: &CoralPieSystem, family: &str) -> u64 {
    sys.observability()
        .registry()
        .render_prometheus()
        .lines()
        .filter(|l| l.starts_with(family) && !l.starts_with('#'))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

fn chaos_recovery_run(fault_seed: u64) {
    let (mut sys, net) = chaos_system(5, fault_seed);
    sys.run_until(SimTime::from_secs(5));
    // Traffic keeps Inform/Confirm flowing, so duplication hits the
    // tracking plane too, not just the control plane.
    for k in 0..4u64 {
        let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(4)).unwrap();
        sys.traffic_mut().spawn(
            SimTime::from_secs(5) + SimDuration::from_secs(10 * k),
            r,
            Some(ObjectClass::Car),
        );
    }
    let mut schedule = FailureSchedule::new();
    schedule.push(FailureEvent {
        at: SimTime::from_secs(10),
        camera: CameraId(2),
        kind: FailureKind::Kill,
    });
    sys.set_failures(&schedule);
    sys.run_until(SimTime::from_secs(48));
    sys.finish();

    // The chaos plan really did interfere.
    assert!(
        counter_sum(&sys, "chaos_dropped_total") > 0,
        "seed {fault_seed}: the fault plan never dropped anything"
    );
    // The failure healed within twice the heartbeat-miss deadline even
    // though updates and heartbeats were being dropped.
    let recoveries = &sys.telemetry().recoveries;
    assert_eq!(
        recoveries.len(),
        1,
        "seed {fault_seed}: exactly the injected failure must be detected, got {recoveries:?}"
    );
    let d = recoveries[0].duration();
    assert!(
        d <= RECOVERY_BOUND,
        "seed {fault_seed}: recovery {d} exceeds the chaos bound {RECOVERY_BOUND}"
    );
    assert_eq!(sys.server().active_cameras().len(), 4);
    // Idempotent ingest: duplicated deliveries never became duplicate
    // (from, to) trajectory edges.
    let dup_edges = sys.storage().with_graph(|g| {
        let mut dups = 0;
        for v in g.vertices() {
            let mut tos: Vec<_> = g.out_edges(v.id).iter().map(|e| e.to).collect();
            let before = tos.len();
            tos.sort();
            tos.dedup();
            dups += before - tos.len();
        }
        dups
    });
    assert_eq!(
        dup_edges, 0,
        "seed {fault_seed}: duplicate trajectory edges survived redelivery"
    );
}

#[test]
fn chaos_recovery_seed_a() {
    chaos_recovery_run(0xC0A1);
}

#[test]
fn chaos_recovery_seed_b() {
    chaos_recovery_run(0xBEEF);
}

#[test]
fn chaos_recovery_seed_c() {
    chaos_recovery_run(7);
}
