//! Federation chaos regression matrix: a whole-region partition under a
//! lossy, duplicating network, across seeds.
//!
//! A two-region corridor is split mid-deployment (cameras 0–2 home to
//! region 0, cameras 3–5 to region 1). Region 1 is partitioned for 30 s
//! of sim time: its topology server and edge store stop acking while its
//! cameras keep running. The suite pins the federation contract:
//!
//! - **Failover happens and is journaled**: the orphaned cameras detect
//!   the silence through their reliability layer and re-parent onto the
//!   surviving region.
//! - **Recovery is bounded**: after the heal, every surviving home camera
//!   heartbeats back at the revived server within twice the
//!   heartbeat-miss deadline (the same bound `chaos_self_healing`
//!   asserts for single-camera failures).
//! - **No committed edge is lost**: every trajectory edge present in the
//!   union view before the kill is still there after the heal.
//! - **Replication stays idempotent**: chaos duplication plus replica
//!   redelivery never yields duplicate `(from, to)` edges in the union.
//!
//! The mini corridor runs in tier-1; a 10×10 city grid variant of the
//! same scenario is `#[ignore]`d and exercised by `ci.sh`.

use std::collections::BTreeSet;

use coral_pie::core::{CameraSpec, CoralPieSystem, FederationConfig, NodeConfig, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::net::{FaultPlan, FaultPolicy, RetryPolicy, VertexId};
use coral_pie::obs::JournalKind;
use coral_pie::sim::{PoissonArrivals, SimDuration, SimTime};
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, ObjectClass};

const HEARTBEAT_S: u64 = 2;
const MISS_THRESHOLD: u64 = 2;
/// Twice the heartbeat-miss deadline: the post-heal fail-back bound.
const RECOVERY_BOUND: SimDuration = SimDuration::from_secs(2 * MISS_THRESHOLD * HEARTBEAT_S);

const KILL_S: u64 = 15;
/// The ISSUE's scenario: the region stays dark for 30 s of sim time.
const HEAL_S: u64 = KILL_S + 30;
const END_S: u64 = 80;

fn federated_system(n: usize, fault_seed: u64) -> (CoralPieSystem, coral_pie::geo::RoadNetwork) {
    let net = generators::corridor(n, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..n)
        .map(|i| CameraSpec {
            id: CameraId(i as u32),
            site: IntersectionId(i as u32),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            ..NodeConfig::default()
        },
        heartbeat_interval: SimDuration::from_secs(HEARTBEAT_S),
        faults: Some(FaultPlan::uniform(
            FaultPolicy {
                drop: 0.05,
                duplicate: 0.01,
                ..FaultPolicy::default()
            },
            fault_seed,
        )),
        reliability: Some(RetryPolicy::default()),
        federation: FederationConfig {
            regions: 2,
            ..FederationConfig::default()
        },
        ..SystemConfig::default()
    };
    (CoralPieSystem::new(net.clone(), &specs, config), net)
}

/// All `(from, to)` pairs in the deployment-wide union view, keeping
/// duplicates so the idempotence check can count them.
fn union_edges(sys: &CoralPieSystem) -> Vec<(VertexId, VertexId)> {
    sys.with_trajectory_graph(|g| {
        let mut edges = Vec::new();
        for v in g.vertices() {
            for e in g.out_edges(v.id) {
                edges.push((v.id, e.to));
            }
        }
        edges
    })
}

fn journal_messages(sys: &CoralPieSystem, kind: JournalKind) -> Vec<String> {
    let mut out = Vec::new();
    sys.observability().journal().for_each(|e| {
        if e.kind == kind {
            out.push(format!("{}: {}", e.subject, e.detail));
        }
    });
    out
}

fn region_kill_run(fault_seed: u64) {
    let (mut sys, net) = federated_system(6, fault_seed);
    assert_eq!(sys.regions(), 2);
    sys.schedule_region_kill(SimTime::from_secs(KILL_S), 1);
    sys.schedule_region_restore(SimTime::from_secs(HEAL_S), 1);
    // Traffic the whole run long, so boundary crossings (cam2 → cam3)
    // commit cross-region edges before, during and after the outage.
    for k in 0..6u64 {
        let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(5)).unwrap();
        sys.traffic_mut().spawn(
            SimTime::from_secs(2) + SimDuration::from_secs(10 * k),
            r,
            Some(ObjectClass::Car),
        );
    }

    // Snapshot the union just before the partition opens.
    sys.run_until(SimTime::from_secs(KILL_S));
    let committed: BTreeSet<(VertexId, VertexId)> = union_edges(&sys).into_iter().collect();

    sys.run_until(SimTime::from_secs(END_S));
    sys.finish();

    // The partition and its heal were journaled against the region.
    let opens = journal_messages(&sys, JournalKind::PartitionOpen);
    assert!(
        opens.iter().any(|m| m.starts_with("region1:")),
        "seed {fault_seed}: no partition_open for region1, got {opens:?}"
    );
    let heals = journal_messages(&sys, JournalKind::PartitionHeal);
    assert!(
        heals.iter().any(|m| m.starts_with("region1:")),
        "seed {fault_seed}: no partition_heal for region1, got {heals:?}"
    );

    // Failover fired: some orphaned camera re-parented onto region 0 and
    // said so in the flight recorder.
    let health = journal_messages(&sys, JournalKind::HealthChange);
    assert!(
        health.iter().any(|m| m.contains("failover")),
        "seed {fault_seed}: no failover journaled, got {health:?}"
    );
    // ... and failed back after the heal: home parenting is restored.
    for cam in 3..6 {
        assert_eq!(
            sys.runtime().world().parent_region_of(CameraId(cam)),
            1,
            "seed {fault_seed}: cam{cam} not failed back to its home region"
        );
    }

    // Exactly the injected region outage was measured, and the fail-back
    // (heal → every home camera heartbeating at the revived server again)
    // met the recovery bound.
    let recoveries = &sys.telemetry().region_recoveries;
    assert_eq!(
        recoveries.len(),
        1,
        "seed {fault_seed}: expected exactly one region recovery, got {recoveries:?}"
    );
    let rec = recoveries[0];
    assert_eq!(rec.region, 1);
    assert_eq!(rec.killed_at, SimTime::from_secs(KILL_S));
    assert_eq!(rec.restored_at, SimTime::from_secs(HEAL_S));
    assert!(
        rec.recovery() <= RECOVERY_BOUND,
        "seed {fault_seed}: region recovery {} exceeds bound {RECOVERY_BOUND}",
        rec.recovery()
    );

    // No committed edge was lost across the outage cycle.
    let after = union_edges(&sys);
    let after_set: BTreeSet<(VertexId, VertexId)> = after.iter().copied().collect();
    let lost: Vec<_> = committed.difference(&after_set).collect();
    assert!(
        lost.is_empty(),
        "seed {fault_seed}: committed edges lost across the region outage: {lost:?}"
    );

    // Replication + chaos duplication never doubled an edge in the union.
    assert_eq!(
        after.len(),
        after_set.len(),
        "seed {fault_seed}: duplicate trajectory edges in the union view"
    );
}

#[test]
fn region_kill_seed_a() {
    region_kill_run(0xFED1);
}

#[test]
fn region_kill_seed_b() {
    region_kill_run(0xBEEF);
}

#[test]
fn region_kill_seed_c() {
    region_kill_run(11);
}

/// The same partition cycle at city scale: a 10×10 grid, four regions,
/// open Poisson arrivals. Run by `ci.sh` (too slow for tier-1).
#[test]
#[ignore = "full-grid federation chaos run; exercised by ci.sh"]
fn region_kill_city_grid() {
    let rows = 10;
    let cols = 10;
    let net = generators::grid(rows, cols, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..(rows * cols))
        .map(|i| CameraSpec {
            id: CameraId(i as u32),
            site: IntersectionId(i as u32),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            ..NodeConfig::default()
        },
        heartbeat_interval: SimDuration::from_secs(HEARTBEAT_S),
        faults: Some(FaultPlan::uniform(
            FaultPolicy {
                drop: 0.05,
                duplicate: 0.01,
                ..FaultPolicy::default()
            },
            0xC17F,
        )),
        reliability: Some(RetryPolicy::default()),
        federation: FederationConfig {
            regions: 4,
            ..FederationConfig::default()
        },
        parallelism: 4,
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net, &specs, config);
    assert_eq!(sys.regions(), 4);
    let entries: Vec<IntersectionId> = (0..cols as u32).map(IntersectionId).collect();
    sys.set_arrivals(PoissonArrivals::new(0.5, entries, 4, 0xC17F ^ 0xfeed));
    sys.schedule_region_kill(SimTime::from_secs(KILL_S), 2);
    sys.schedule_region_restore(SimTime::from_secs(HEAL_S), 2);

    sys.run_until(SimTime::from_secs(KILL_S));
    let committed: BTreeSet<(VertexId, VertexId)> = union_edges(&sys).into_iter().collect();
    sys.run_until(SimTime::from_secs(END_S));
    sys.finish();

    let recoveries = &sys.telemetry().region_recoveries;
    assert_eq!(recoveries.len(), 1, "got {recoveries:?}");
    assert!(
        recoveries[0].recovery() <= RECOVERY_BOUND,
        "region recovery {} exceeds bound {RECOVERY_BOUND}",
        recoveries[0].recovery()
    );
    let after = union_edges(&sys);
    let after_set: BTreeSet<(VertexId, VertexId)> = after.iter().copied().collect();
    assert!(
        committed.is_subset(&after_set),
        "committed edges lost across the region outage"
    );
    assert_eq!(after.len(), after_set.len(), "duplicate edges in the union");
}

/// `FederationConfig { regions: 1 }` must be the pre-federation system,
/// byte for byte: same deliveries, informs, events, passages and storage
/// stats under chaos, kills and retries.
#[test]
fn single_region_federation_is_byte_identical() {
    fn fingerprint(explicit: bool) -> (u64, u64, usize, usize, coral_pie::storage::StorageStats) {
        let net = generators::corridor(4, 120.0, 12.0);
        let specs: Vec<CameraSpec> = (0..4)
            .map(|i| CameraSpec {
                id: CameraId(i),
                site: IntersectionId(i),
                videoing_angle_deg: 0.0,
            })
            .collect();
        let mut config = SystemConfig {
            faults: Some(FaultPlan::uniform(
                FaultPolicy {
                    drop: 0.05,
                    duplicate: 0.01,
                    ..FaultPolicy::default()
                },
                0x5eed,
            )),
            reliability: Some(RetryPolicy::default()),
            seed: 7,
            ..SystemConfig::default()
        };
        if explicit {
            config.federation = FederationConfig {
                regions: 1,
                replication: true,
                failover: true,
            };
        }
        let mut sys = CoralPieSystem::new(net.clone(), &specs, config);
        for k in 0..3u64 {
            let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(3)).unwrap();
            sys.traffic_mut().spawn(
                SimTime::from_secs(2) + SimDuration::from_secs(9 * k),
                r,
                Some(ObjectClass::Car),
            );
        }
        sys.run_until(SimTime::from_secs(50));
        sys.finish();
        let t = sys.telemetry();
        (
            t.messages_delivered,
            t.informs_delivered,
            t.events.len(),
            t.passages.len(),
            sys.storage().stats(),
        )
    }
    assert_eq!(fingerprint(false), fingerprint(true));
}
