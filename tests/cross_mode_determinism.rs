//! Cross-mode determinism: the same deployment and workload, run once
//! under the discrete-event runtime (`SimTransport`) and once as a
//! hand-driven in-process deployment (`InProcTransport`), must build the
//! same trajectory graph modulo timing-only fields.
//!
//! This is the payoff of the layered runtime: `NodeDriver` / `ServerDriver`
//! contain all protocol behaviour, and the transport underneath them only
//! changes *when* messages move, not *what* the system concludes. Vertices
//! are compared as (camera, ground-truth) pairs and edges as the pairs
//! they connect; timestamps and latencies are deliberately excluded.

use coral_pie::core::{CameraSpec, Deployment, NodeConfig, NodeDriver, ServerDriver, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId, RoadNetwork};
use coral_pie::net::{Endpoint, InProcRouter, InProcTransport, Transport};
use coral_pie::sim::{SimTime, TrafficModel};
use coral_pie::storage::EdgeStorageNode;
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, ObjectClass};

const N: u32 = 5;
const RUN_SECS: u64 = 90;

fn corridor_deployment() -> Deployment {
    let net = generators::corridor(N as usize, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..N)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: 0.0,
        })
        .collect();
    Deployment::from_specs(
        net,
        &specs,
        SystemConfig {
            node: NodeConfig {
                detector_noise: DetectorNoise::perfect(),
                ..NodeConfig::default()
            },
            seed: 11,
            ..SystemConfig::default()
        },
    )
}

/// Spawns an identical workload into either mode's traffic model: three
/// vehicles traversing the corridor, two eastbound and one westbound.
fn spawn_workload(traffic: &mut TrafficModel, net: &RoadNetwork) {
    let east = route::shortest_path(net, IntersectionId(0), IntersectionId(N - 1)).unwrap();
    let west = route::shortest_path(net, IntersectionId(N - 1), IntersectionId(0)).unwrap();
    traffic.spawn(SimTime::from_secs(1), east.clone(), Some(ObjectClass::Car));
    traffic.spawn(SimTime::from_secs(5), west, Some(ObjectClass::Car));
    traffic.spawn(SimTime::from_secs(9), east, Some(ObjectClass::Car));
}

/// The timing-free summary of a trajectory graph: sorted vertex labels
/// (camera + ground truth) and sorted edge labels (the endpoints' labels).
fn graph_signature(storage: &EdgeStorageNode) -> (Vec<String>, Vec<String>) {
    storage.with_graph(|g| {
        let label = |id| {
            let v = g.vertex(id).expect("edge endpoint exists");
            format!("{:?}:{:?}", v.camera, v.ground_truth)
        };
        let mut vertices: Vec<String> = g
            .vertices()
            .map(|v| format!("{:?}:{:?}", v.camera, v.ground_truth))
            .collect();
        vertices.sort();
        let mut edges: Vec<String> = g
            .edges()
            .map(|e| format!("{} -> {}", label(e.from), label(e.to)))
            .collect();
        edges.sort();
        (vertices, edges)
    })
}

/// Mode 1: the discrete-event runtime over `SimTransport`.
fn run_des(deployment: Deployment) -> (Vec<String>, Vec<String>) {
    let net = deployment.net().clone();
    let mut runtime = deployment.build();
    spawn_workload(runtime.world_mut().traffic_mut(), &net);
    runtime.run_until(SimTime::from_secs(RUN_SECS));
    runtime.finish();
    graph_signature(runtime.world().storage())
}

/// Mode 2: the same drivers hand-driven over the in-process router with a
/// virtual frame clock — single-threaded, so delivery order is fixed.
fn run_inproc(deployment: Deployment) -> (Vec<String>, Vec<String>) {
    let router = InProcRouter::new();
    let storage = EdgeStorageNode::default();
    let mut server = ServerDriver::new(
        deployment.make_server(),
        InProcTransport::attach(&router, Endpoint::TopologyServer),
    );
    let mut cams: Vec<NodeDriver<InProcTransport>> = (0..N)
        .map(|i| {
            let cam = CameraId(i);
            NodeDriver::new(
                deployment.make_node(cam, storage.clone()).expect("placed"),
                InProcTransport::attach(&router, Endpoint::Camera(cam)),
            )
        })
        .collect();
    let mut traffic = deployment.make_traffic();
    spawn_workload(&mut traffic, deployment.net());

    let pump_server = |server: &mut ServerDriver<InProcTransport>, now: SimTime| -> usize {
        let mut n = 0;
        while let Some(env) = server.transport_mut().poll(now) {
            server
                .on_envelope(env, now, |_| true)
                .expect("in-proc send");
            n += 1;
        }
        n
    };

    // Join: heartbeats in camera-id order (the DES staggers them the same
    // way), then deliver the resulting topology tables before frame 1.
    for d in cams.iter_mut() {
        d.send_heartbeat(SimTime::ZERO).expect("in-proc send");
    }
    pump_server(&mut server, SimTime::ZERO);
    for d in cams.iter_mut() {
        d.pump(SimTime::ZERO, |_| {}).expect("in-proc send");
    }

    // Frame loop. Deliveries from frame k land at the start of frame k+1 —
    // the in-flight window the DES models as link latency (< one frame).
    let frame_ms = deployment.config().frame_period.as_millis();
    let frames = RUN_SECS * 1000 / frame_ms;
    let mut last = SimTime::ZERO;
    for k in 1..=frames {
        let now = SimTime::from_millis(frame_ms * k);
        traffic.step(last, now.since(last));
        last = now;
        for d in cams.iter_mut() {
            d.pump(now, |_| {}).expect("in-proc send");
        }
        pump_server(&mut server, now);
        for d in cams.iter_mut() {
            d.pump(now, |_| {}).expect("in-proc send");
        }
        // All deliveries done: capture this frame in camera-id order,
        // exactly like the DES tick.
        for d in cams.iter_mut() {
            let scene = d.node().view().scene(&traffic);
            d.capture(&scene, now, None).expect("in-proc send");
        }
    }

    // End of stream: flush in-flight tracks, then drain message cascades
    // (informs beget confirmations) until the network is quiet.
    for d in cams.iter_mut() {
        d.flush(last, None).expect("in-proc send");
    }
    loop {
        let mut moved = 0;
        for d in cams.iter_mut() {
            moved += d.pump(last, |_| {}).expect("in-proc send");
        }
        moved += pump_server(&mut server, last);
        if moved == 0 {
            break;
        }
    }
    graph_signature(&storage)
}

#[test]
fn des_and_inproc_modes_build_the_same_graph() {
    let (des_vertices, des_edges) = run_des(corridor_deployment());
    let (ip_vertices, ip_edges) = run_inproc(corridor_deployment());

    // The workload is non-trivial in both modes: every vehicle is seen by
    // every camera, and re-identification links the passages.
    assert!(
        des_vertices.len() >= N as usize,
        "DES vertices: {des_vertices:?}"
    );
    assert!(!des_edges.is_empty(), "DES made no re-identifications");

    assert_eq!(
        des_vertices, ip_vertices,
        "vertex sets diverge between DES and in-process modes"
    );
    assert_eq!(
        des_edges, ip_edges,
        "edge sets diverge between DES and in-process modes"
    );
}
