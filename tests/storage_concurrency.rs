//! Concurrency stress for the sharded trajectory store: writers and
//! readers race on one `EdgeStorageNode` and every observation a reader
//! makes mid-flight must already be consistent — no deadlocks, no torn
//! reads, and the final store is structurally identical to a sequential
//! ingest of the same logical stream.

use coral_pie::net::{EventId, VertexId};
use coral_pie::storage::{EdgeStorageNode, QueryOptions, StorageConfig};
use coral_pie::topology::CameraId;
use coral_pie::vision::TrackId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const WRITERS: u32 = 4;
const READERS: usize = 4;
const EVENTS_PER_WRITER: u64 = 300;
/// Generous wall-clock bound; a lock-order bug shows up as a hang, and
/// the watchdog turns that hang into a failure instead of a CI timeout.
const WATCHDOG: Duration = Duration::from_secs(180);

fn eid(cam: u32, track: u64) -> EventId {
    EventId {
        camera: CameraId(cam),
        track: TrackId(track),
    }
}

fn contended_config() -> StorageConfig {
    StorageConfig {
        shard_count: 4,
        // Tight buckets and regions so every chain keeps crossing shard
        // boundaries (maximum cross-shard locking traffic).
        time_bucket_ms: 500,
        cameras_per_region: 2,
        ..StorageConfig::default()
    }
}

/// Writer `w`'s event at step `t`: it alternates between its two owned
/// cameras so chains hop regions.
fn event_of(w: u32, t: u64) -> EventId {
    eid(2 * w + (t % 2) as u32, t)
}

/// Replays writer `w`'s exact logical stream into `node`. Edge endpoints
/// are defined by *events* (not vertex ids), so the stream is identical
/// however inserts interleave. Every 10th step adds a cross-writer edge
/// from the previous writer's same-step event; `wait` lets the concurrent
/// version block until that vertex has been published.
fn ingest_writer_stream(node: &EdgeStorageNode, w: u32, wait: impl Fn(&EdgeStorageNode, EventId)) {
    let mut prev: Option<VertexId> = None;
    for t in 0..EVENTS_PER_WRITER {
        let e = event_of(w, t);
        let v = node.insert_event(e, t * 120, t * 120 + 60, None, None);
        if let Some(p) = prev {
            node.insert_edge(p, v, 0.1).unwrap();
        }
        if t % 10 == 5 {
            let peer = event_of((w + WRITERS - 1) % WRITERS, t);
            wait(node, peer);
            let pv = node.vertex_for_event(peer).expect("peer vertex published");
            node.insert_edge(pv, v, 0.5).unwrap();
        }
        prev = Some(v);
    }
}

/// The same logical stream ingested single-threaded. The cross-writer
/// edges form a cycle over writers, so a sequential replay lays down all
/// vertices first, then the edges — endpoint-keyed dedup makes the result
/// identical to any live interleaving.
fn sequential_reference() -> EdgeStorageNode {
    let node = EdgeStorageNode::with_config(8, contended_config());
    for w in 0..WRITERS {
        for t in 0..EVENTS_PER_WRITER {
            node.insert_event(event_of(w, t), t * 120, t * 120 + 60, None, None);
        }
    }
    for w in 0..WRITERS {
        for t in 0..EVENTS_PER_WRITER {
            let v = node.vertex_for_event(event_of(w, t)).unwrap();
            if t > 0 {
                let p = node.vertex_for_event(event_of(w, t - 1)).unwrap();
                node.insert_edge(p, v, 0.1).unwrap();
            }
            if t % 10 == 5 {
                let peer = event_of((w + WRITERS - 1) % WRITERS, t);
                let pv = node.vertex_for_event(peer).unwrap();
                node.insert_edge(pv, v, 0.5).unwrap();
            }
        }
    }
    node
}

/// Order-insensitive structural fingerprint: vertex ids differ between
/// interleavings (allocation order), so identity is keyed by event.
fn fingerprint(node: &EdgeStorageNode) -> (Vec<String>, Vec<String>) {
    node.with_graph(|g| {
        let name: BTreeMap<VertexId, EventId> = g.vertices().map(|v| (v.id, v.event)).collect();
        let mut verts: Vec<String> = g
            .vertices()
            .map(|v| format!("{:?} [{}, {}]", v.event, v.first_seen_ms, v.last_seen_ms))
            .collect();
        verts.sort();
        let mut edges: Vec<String> = g
            .edges()
            .map(|e| {
                format!(
                    "{:?} -> {:?} @ {:x}",
                    name[&e.from],
                    name[&e.to],
                    e.weight.to_bits()
                )
            })
            .collect();
        edges.sort();
        (verts, edges)
    })
}

/// One reader thread body: hammer all three query shapes and check every
/// mid-flight answer for internal consistency.
fn reader_loop(node: &EdgeStorageNode, done: &AtomicBool, reader: usize) -> u64 {
    let mut queries = 0u64;
    let mut last_camera_count = vec![0usize; (2 * WRITERS) as usize];
    let mut t = (reader as u64 * 7) % EVENTS_PER_WRITER;
    loop {
        let w = (queries % u64::from(WRITERS)) as u32;
        if let Some(seed) = node.vertex_for_event(event_of(w, t)) {
            let r = node
                .query_trajectory(seed, QueryOptions::default())
                .unwrap();
            for path in r.forward.iter().chain(&r.backward) {
                assert_eq!(path.vertices[0], seed);
                // Torn-read check: every id an in-flight query returns
                // must resolve to a fully-written record...
                for &v in &path.vertices {
                    node.sharded().vertex(v).expect("path vertex resolves");
                }
                // ...and chains only ever run old -> new, so a forward
                // path with time running backwards would expose a
                // half-linked edge.
                let times: Vec<u64> = path
                    .vertices
                    .iter()
                    .map(|&v| node.sharded().vertex(v).unwrap().first_seen_ms)
                    .collect();
                assert!(
                    times.windows(2).all(|p| p[0] <= p[1])
                        || times.windows(2).all(|p| p[0] >= p[1]),
                    "non-monotonic trajectory times: {times:?}"
                );
            }
        }
        let cam = (queries % u64::from(2 * WRITERS)) as u32;
        let through = node.vehicles_through_camera(CameraId(cam), 0, u64::MAX / 2);
        for &v in &through {
            let rec = node.sharded().vertex(v).expect("camera hit resolves");
            assert_eq!(rec.camera, CameraId(cam));
        }
        // A camera's history only grows while writers are live.
        assert!(
            through.len() >= last_camera_count[cam as usize],
            "camera {cam} shrank: {} -> {}",
            last_camera_count[cam as usize],
            through.len()
        );
        last_camera_count[cam as usize] = through.len();
        let window = node.scan_window(t * 120, t * 120 + 5_000);
        for &v in &window {
            let rec = node.sharded().vertex(v).expect("window hit resolves");
            assert!(rec.first_seen_ms <= t * 120 + 5_000 && rec.last_seen_ms >= t * 120);
        }
        queries += 3;
        t = (t + 13) % EVENTS_PER_WRITER;
        if done.load(Ordering::Relaxed) {
            return queries;
        }
    }
}

/// Runs `f` under the watchdog; a hang (deadlock) fails the test rather
/// than stalling CI.
fn with_watchdog(f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(WATCHDOG)
        .expect("deadlock suspected: stress run exceeded the watchdog");
}

#[test]
fn writers_and_readers_race_without_deadlock_or_torn_reads() {
    with_watchdog(|| {
        let node = EdgeStorageNode::with_config(8, contended_config());
        let done = Arc::new(AtomicBool::new(false));
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let n = node.clone();
            writers.push(std::thread::spawn(move || {
                ingest_writer_stream(&n, w, |node, peer| {
                    while node.vertex_for_event(peer).is_none() {
                        std::thread::yield_now();
                    }
                });
            }));
        }
        let mut readers = Vec::new();
        for r in 0..READERS {
            let n = node.clone();
            let d = Arc::clone(&done);
            readers.push(std::thread::spawn(move || reader_loop(&n, &d, r)));
        }
        for h in writers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        let mut total_queries = 0;
        for h in readers {
            total_queries += h.join().unwrap();
        }
        assert!(total_queries > 0, "readers made no progress");

        // The concurrent build must equal a sequential replay of the same
        // logical stream — same counts, same structure (event-keyed; ids
        // legitimately differ with interleaving).
        let sequential = sequential_reference();
        let (cs, ce) = {
            let s = node.stats();
            (s.vertices, s.edges)
        };
        let seq = sequential.stats();
        assert_eq!((cs, ce), (seq.vertices, seq.edges));
        assert_eq!(fingerprint(&node), fingerprint(&sequential));
    });
}

#[test]
fn compaction_races_writers_and_readers_safely() {
    with_watchdog(|| {
        // Deferred dedup + duplicated sends: the background compactor
        // must converge the store onto the deduped stream while queries
        // stay oblivious throughout.
        let config = StorageConfig {
            deferred_edge_dedup: true,
            ..contended_config()
        };
        let node = EdgeStorageNode::with_config(8, config.clone());
        let done = Arc::new(AtomicBool::new(false));
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let n = node.clone();
            writers.push(std::thread::spawn(move || {
                let mut prev: Option<VertexId> = None;
                for t in 0..EVENTS_PER_WRITER {
                    let v = n.insert_event(event_of(w, t), t * 120, t * 120 + 60, None, None);
                    if let Some(p) = prev {
                        // At-least-once delivery: every edge sent twice.
                        n.insert_edge(p, v, 0.1).unwrap();
                        n.insert_edge(p, v, 0.1).unwrap();
                    }
                    prev = Some(v);
                }
            }));
        }
        let compactor = {
            let n = node.clone();
            let d = Arc::clone(&done);
            std::thread::spawn(move || {
                while !d.load(Ordering::Relaxed) {
                    n.compact_step();
                    std::thread::yield_now();
                }
            })
        };
        let reader = {
            let n = node.clone();
            let d = Arc::clone(&done);
            std::thread::spawn(move || reader_loop(&n, &d, 0))
        };
        for h in writers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        compactor.join().unwrap();
        reader.join().unwrap();

        // Drain any replays the in-flight compactor missed. The first
        // completed pass may have *started* mid-ingest (shards visited
        // before the writers finished can still hold late replays), so
        // keep running full passes until one merges nothing. Then compare
        // against a checked-mode (ingest-time dedup) sequential build.
        loop {
            let mut merged = 0;
            loop {
                let r = node.compact_step();
                merged += r.merged_edges;
                if r.completed_pass {
                    break;
                }
            }
            if merged == 0 {
                break;
            }
        }
        let reference = EdgeStorageNode::with_config(8, contended_config());
        for w in 0..WRITERS {
            let mut prev: Option<VertexId> = None;
            for t in 0..EVENTS_PER_WRITER {
                let v = reference.insert_event(event_of(w, t), t * 120, t * 120 + 60, None, None);
                if let Some(p) = prev {
                    reference.insert_edge(p, v, 0.1).unwrap();
                }
                prev = Some(v);
            }
        }
        assert_eq!(node.stats().edges, reference.stats().edges);
        assert!(
            node.stats().compaction_merged_edges > 0,
            "compactor must have merged replays"
        );
        assert_eq!(fingerprint(&node), fingerprint(&reference));
    });
}
