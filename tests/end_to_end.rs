//! Cross-crate integration: the full system from traffic to trajectory
//! query.

use coral_pie::core::{CameraSpec, CoralPieSystem, NodeConfig, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::sim::{SimDuration, SimTime};
use coral_pie::storage::QueryOptions;
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, GroundTruthId, ObjectClass};

fn corridor_system(n: usize) -> (CoralPieSystem, coral_pie::geo::RoadNetwork) {
    let net = generators::corridor(n, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..n)
        .map(|i| CameraSpec {
            id: CameraId(i as u32),
            site: IntersectionId(i as u32),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            ..NodeConfig::default()
        },
        ..SystemConfig::default()
    };
    (CoralPieSystem::new(net.clone(), &specs, config), net)
}

#[test]
fn five_camera_five_vehicle_tracks() {
    let (mut sys, net) = corridor_system(5);
    sys.run_until(SimTime::from_secs(2));
    let mut ids = Vec::new();
    for k in 0..5u64 {
        let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(4)).unwrap();
        ids.push(sys.traffic_mut().spawn(
            SimTime::from_secs(2) + SimDuration::from_secs(9 * k),
            r,
            Some(ObjectClass::Car),
        ));
    }
    sys.run_until(SimTime::from_secs(130));
    sys.finish();

    let report = sys.report();
    // Every camera saw every vehicle exactly once.
    for cam in 0..5u32 {
        let acc = report.detection[&CameraId(cam)];
        assert_eq!(acc.fn_, 0, "cam{cam} missed a vehicle: {acc:?}");
        assert_eq!(acc.tp, 5, "cam{cam}: {acc:?}");
    }
    // 5 vehicles x 4 transitions.
    assert_eq!(report.transitions.len(), 20);
    // The trajectory graph has one vertex per (camera, vehicle).
    let s = sys.storage().stats();
    assert_eq!(s.vertices, 25);
    let e = s.edges;
    assert!(e >= 15, "expected most transitions linked, got {e} edges");

    // Every vehicle's best track from its first detection covers >= 4
    // cameras with no identity switches.
    for id in ids {
        let gt = GroundTruthId(id.0);
        let seed = sys.storage().with_graph(|g| {
            g.vertices()
                .filter(|rec| rec.ground_truth == Some(gt))
                .min_by_key(|rec| rec.first_seen_ms)
                .map(|rec| rec.id)
                .expect("vehicle detected somewhere")
        });
        let track = sys
            .storage()
            .query_trajectory(seed, QueryOptions::default())
            .unwrap()
            .best_track();
        let ok = sys.storage().with_graph(|g| {
            track
                .iter()
                .all(|&v| g.vertex(v).unwrap().ground_truth == Some(gt))
        });
        assert!(ok, "identity switch on the track of {gt}");
        assert!(track.len() >= 4, "track too short for {gt}: {track:?}");
    }
}

#[test]
fn bidirectional_traffic_keeps_directions_apart() {
    let (mut sys, net) = corridor_system(3);
    sys.run_until(SimTime::from_secs(2));
    let east = route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
    let west = route::shortest_path(&net, IntersectionId(2), IntersectionId(0)).unwrap();
    let e = sys
        .traffic_mut()
        .spawn(SimTime::from_secs(2), east, Some(ObjectClass::Car));
    let w = sys
        .traffic_mut()
        .spawn(SimTime::from_secs(3), west, Some(ObjectClass::Car));
    sys.run_until(SimTime::from_secs(60));
    sys.finish();
    let report = sys.report();
    // Both vehicles tracked end to end: 2 transitions each.
    assert_eq!(report.transitions.len(), 4);
    assert_eq!(report.reid.fn_, 0, "missed transitions: {:?}", report.reid);
    // No cross-direction confusion: every edge joins same-vehicle events.
    sys.storage().with_graph(|g| {
        for edge in g.edges() {
            let a = g.vertex(edge.from).unwrap().ground_truth;
            let b = g.vertex(edge.to).unwrap().ground_truth;
            assert_eq!(a, b, "edge mixes vehicles {a:?} and {b:?}");
        }
    });
    let _ = (e, w);
}

#[test]
fn topology_updates_propagate_to_socket_groups() {
    let (mut sys, _) = corridor_system(4);
    sys.run_until(SimTime::from_secs(3));
    // Interior cameras know both neighbours; edge cameras only one.
    let down = |cam: u32| {
        sys.node(CameraId(cam))
            .unwrap()
            .connection()
            .socket_group()
            .all_downstream()
    };
    assert_eq!(down(0).len(), 1);
    assert_eq!(down(1).len(), 2);
    assert_eq!(down(2).len(), 2);
    assert_eq!(down(3).len(), 1);
}

#[test]
fn detector_noise_degrades_but_does_not_break_tracking() {
    let net = generators::corridor(3, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..3)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise {
                miss_rate: 0.08,
                clutter_rate: 0.05,
                jitter_px: 2.0,
                ..DetectorNoise::default()
            },
            ..NodeConfig::default()
        },
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net.clone(), &specs, config);
    sys.run_until(SimTime::from_secs(2));
    for k in 0..4u64 {
        let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
        sys.traffic_mut().spawn(
            SimTime::from_secs(2) + SimDuration::from_secs(10 * k),
            r,
            Some(ObjectClass::Car),
        );
    }
    sys.run_until(SimTime::from_secs(90));
    sys.finish();
    let report = sys.report();
    let mut total = coral_pie::core::Accuracy::default();
    for acc in report.detection.values() {
        total.merge(*acc);
    }
    // Recall stays high (max_age absorbs missed frames); some false
    // positives are expected from clutter.
    assert!(total.recall() >= 0.8, "recall collapsed: {total:?}");
    assert!(total.f2() >= 0.6, "f2 collapsed: {total:?}");
}

#[test]
fn confirm_stage_cleans_sibling_pools() {
    // A branching junction: cam0 informs cams 1 and 2; the vehicle goes to
    // cam1; cam2's pool entry must end up matched (remotely) via the
    // confirm relay.
    use coral_pie::geo::{GeoPoint, RoadNetwork};
    let base = GeoPoint::new(33.77, -84.39);
    let mut net = RoadNetwork::new();
    let a = net.add_intersection(base);
    let j = net.add_intersection(base.offset_m(0.0, 150.0));
    let b = net.add_intersection(base.offset_m(0.0, 300.0));
    let c = net.add_intersection(base.offset_m(150.0, 150.0));
    net.add_two_way(a, j, 12.0).unwrap();
    net.add_two_way(j, b, 12.0).unwrap();
    net.add_two_way(j, c, 12.0).unwrap();
    let specs = vec![
        CameraSpec {
            id: CameraId(0),
            site: a,
            videoing_angle_deg: 0.0,
        },
        CameraSpec {
            id: CameraId(1),
            site: b,
            videoing_angle_deg: 0.0,
        },
        CameraSpec {
            id: CameraId(2),
            site: c,
            videoing_angle_deg: 0.0,
        },
    ];
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            ..NodeConfig::default()
        },
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net.clone(), &specs, config);
    sys.run_until(SimTime::from_secs(2));
    let r = route::shortest_path(&net, a, b).unwrap();
    sys.traffic_mut()
        .spawn(SimTime::from_secs(2), r, Some(ObjectClass::Car));
    sys.run_until(SimTime::from_secs(60));
    sys.finish();

    // Camera 2 received cam0's inform but never saw the vehicle; the
    // confirm relay must have annotated that entry as matched remotely.
    // (It may also hold a trailing inform from cam1's end-of-route event.)
    let cam2 = sys.node(CameraId(2)).unwrap();
    assert!(cam2.pool().stats().received >= 1);
    assert!(
        cam2.pool().stats().matched_remote >= 1,
        "confirm relay did not clean the sibling pool: {:?}",
        cam2.pool().stats()
    );
    let cam0_entry_matched = cam2
        .pool()
        .entries()
        .iter()
        .filter(|c| c.event.camera == CameraId(0))
        .all(|c| c.matched);
    assert!(cam0_entry_matched, "cam0's event left unmatched at cam2");
    // Camera 1 matched it locally.
    assert_eq!(
        sys.node(CameraId(1)).unwrap().pool().stats().matched_local,
        1
    );
}
