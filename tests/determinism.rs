//! Reproducibility: every run is a pure function of its seed.

use coral_pie::core::{CameraSpec, CoralPieSystem, SystemConfig};
use coral_pie::geo::{generators, IntersectionId};
use coral_pie::sim::{PoissonArrivals, SimTime};
use coral_pie::topology::CameraId;

fn run(seed: u64) -> (u64, u64, usize, usize, coral_pie::storage::StorageStats) {
    let net = generators::corridor(4, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..4)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let config = SystemConfig {
        seed,
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net, &specs, config);
    sys.set_arrivals(PoissonArrivals::new(
        0.3,
        vec![IntersectionId(0), IntersectionId(3)],
        3,
        seed ^ 0xfeed,
    ));
    sys.run_until(SimTime::from_secs(60));
    sys.finish();
    let t = sys.telemetry();
    (
        t.messages_delivered,
        t.informs_delivered,
        t.events.len(),
        t.passages.len(),
        sys.storage().stats(),
    )
}

#[test]
fn same_seed_same_everything() {
    assert_eq!(run(7), run(7));
}

#[test]
fn different_seed_different_traffic() {
    let a = run(7);
    let b = run(8);
    // Traffic, noise and latencies all change; at minimum the passage
    // counts should differ for a 60 s open workload.
    assert_ne!(a, b, "seeds 7 and 8 produced identical runs");
}

#[test]
fn experiment_wire_format_is_stable() {
    // Lock the JSON field set of the detection event (downstream consumers
    // parse it); a silent rename would break stored trajectories.
    use coral_pie::net::DetectionEvent;
    use coral_pie::vision::{ColorHistogram, TrackId};
    let e = DetectionEvent {
        camera: CameraId(3),
        timestamp_ms: 1,
        heading: None,
        bearing_deg: None,
        signature: ColorHistogram::uniform(2),
        track: TrackId(9),
        vertex: None,
        ground_truth: None,
    };
    let json: serde_json::Value = serde_json::from_str(&e.to_json()).unwrap();
    let obj = json.as_object().unwrap();
    for key in [
        "camera",
        "timestamp_ms",
        "heading",
        "bearing_deg",
        "signature",
        "track",
        "vertex",
    ] {
        assert!(obj.contains_key(key), "missing wire field {key}");
    }
}
