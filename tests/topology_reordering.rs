//! Regression test for §2's WAN reordering hazard: `TopologyUpdate`
//! messages can arrive out of order, and a camera must never let a stale
//! MDCS table overwrite a fresher one.
//!
//! The test exercises the full delivery path — server heartbeat handling,
//! a transport, `NodeDriver::pump`, `CameraNode::on_message`,
//! `ConnectionManager::on_topology_update` — through a purpose-built
//! `ReorderingTransport`: a third-party [`Transport`] impl (the trait is
//! open for exactly this kind of test double) that delivers its inbox in
//! LIFO order, so the newest update arrives first and every earlier one
//! arrives stale.

use coral_pie::core::{CameraSpec, Deployment, NodeDriver, ServerDriver, SystemConfig};
use coral_pie::geo::{generators, IntersectionId};
use coral_pie::net::{Endpoint, Envelope, Message, SendError, Transport};
use coral_pie::sim::SimTime;
use coral_pie::storage::EdgeStorageNode;
use coral_pie::topology::{CameraId, MdcsUpdate};

/// Delivers queued envelopes newest-first and records everything sent.
#[derive(Debug, Default)]
struct ReorderingTransport {
    inbox: Vec<Envelope>,
    outbox: Vec<Envelope>,
}

impl Transport for ReorderingTransport {
    fn send(&mut self, _now: SimTime, envelope: Envelope) -> Result<(), SendError> {
        self.outbox.push(envelope);
        Ok(())
    }

    fn poll(&mut self, _now: SimTime) -> Option<Envelope> {
        self.inbox.pop() // LIFO: the last update queued arrives first
    }
}

#[test]
fn stale_topology_updates_do_not_overwrite_newer_tables() {
    // A corridor where each join changes camera 0's downstream sets.
    let net = generators::corridor(4, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..4)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let deployment = Deployment::from_specs(net, &specs, SystemConfig::default());

    // Joins processed one at a time: each recomputation that touches
    // camera 0 emits a TopologyUpdate for it with a higher version.
    let mut server = ServerDriver::new(deployment.make_server(), ReorderingTransport::default());
    for (i, t) in [(0u32, 10u64), (1, 20), (2, 30), (3, 40)] {
        let cam = CameraId(i);
        server
            .on_envelope(
                Envelope {
                    from: Endpoint::Camera(cam),
                    to: Endpoint::TopologyServer,
                    message: deployment
                        .make_node(cam, EdgeStorageNode::default())
                        .expect("placed")
                        .heartbeat(),
                },
                SimTime::from_millis(t),
                |_| true,
            )
            .expect("collector send");
    }
    let updates: Vec<MdcsUpdate> = server
        .transport_mut()
        .outbox
        .iter()
        .filter(|e| e.to == Endpoint::Camera(CameraId(0)))
        .map(|e| match &e.message {
            Message::TopologyUpdate(u) => u.clone(),
            other => panic!("unexpected server message {other:?}"),
        })
        .collect();
    assert!(
        updates.len() >= 2,
        "need multiple versions to reorder, got {}",
        updates.len()
    );
    assert!(
        updates.windows(2).all(|w| w[0].version < w[1].version),
        "server versions must be monotonic"
    );
    let newest = updates.last().expect("nonempty").clone();

    // Camera 0 receives them through the reordering transport: the newest
    // version first, then every stale predecessor.
    let mut driver = NodeDriver::new(
        deployment
            .make_node(CameraId(0), EdgeStorageNode::default())
            .expect("placed"),
        ReorderingTransport {
            inbox: updates
                .iter()
                .map(|u| Envelope {
                    from: Endpoint::TopologyServer,
                    to: Endpoint::Camera(CameraId(0)),
                    message: Message::TopologyUpdate(u.clone()),
                })
                .collect(),
            outbox: Vec::new(),
        },
    );
    let delivered = driver
        .pump(SimTime::from_millis(100), |_| {})
        .expect("collector send");
    assert_eq!(delivered, updates.len(), "all updates were delivered");

    // Only the newest survived: the stale ones were rejected, and the
    // installed table is the newest version's, not the last-delivered's.
    let connection = driver.node().connection();
    assert_eq!(connection.stats().updates_applied, 1);
    assert_eq!(connection.socket_group().table(), &newest.table);
    assert_ne!(
        &newest.table, &updates[0].table,
        "test must reorder materially different tables"
    );
}
