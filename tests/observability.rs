//! Observability integration: the Chrome trace export carries a complete
//! cross-camera causal trace for a known vehicle, and the metrics registry
//! renders per-stage histograms in both Prometheus text and JSON form.

use coral_pie::core::{CameraSpec, CoralPieSystem, NodeConfig, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::obs::json::{parse, JsonValue};
use coral_pie::sim::SimTime;
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, ObjectClass};

fn traced_corridor_run() -> (CoralPieSystem, u64) {
    let n = 3usize;
    let net = generators::corridor(n, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..n)
        .map(|i| CameraSpec {
            id: CameraId(i as u32),
            site: IntersectionId(i as u32),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            ..NodeConfig::default()
        },
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net.clone(), &specs, config);
    sys.enable_tracing();
    sys.run_until(SimTime::from_secs(2));
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2))
        .expect("corridor is connected");
    let vehicle = sys
        .traffic_mut()
        .spawn(SimTime::from_secs(2), r, Some(ObjectClass::Car));
    sys.run_until(SimTime::from_secs(60));
    sys.finish();
    (sys, vehicle.0)
}

#[test]
fn chrome_trace_contains_a_cross_camera_vehicle_trace() {
    let (sys, vehicle) = traced_corridor_run();
    let json = sys.observability().tracer().export_chrome();
    let doc = parse(&json).expect("trace export is valid JSON");
    let events = doc.as_array().expect("trace export is a JSON array");
    assert!(!events.is_empty(), "tracing recorded nothing");

    // Every element is a well-formed trace_event: ph is a string; pid and
    // tid are numbers; non-metadata events carry a ts.
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .expect("event has ph");
        assert!(ev.get("pid").and_then(JsonValue::as_u64).is_some());
        assert!(ev.get("tid").and_then(JsonValue::as_u64).is_some());
        if ph != "M" {
            assert!(ev.get("ts").and_then(JsonValue::as_u64).is_some());
            // Both clocks: sim time in ts, wall time in args.
            assert!(ev
                .get("args")
                .and_then(|a| a.get("wall_us"))
                .and_then(JsonValue::as_u64)
                .is_some());
        }
    }

    // The known vehicle's causal trace rides one tid across cameras.
    let tid = vehicle + 1;
    let of_vehicle: Vec<&JsonValue> = events
        .iter()
        .filter(|e| {
            e.get("tid").and_then(JsonValue::as_u64) == Some(tid)
                && e.get("ph").and_then(JsonValue::as_str) != Some("M")
        })
        .collect();
    let stage = |name: &str| -> Vec<(u64, u64)> {
        // (ts, pid) of every event with this name, in ts order (export
        // order is ts order already).
        of_vehicle
            .iter()
            .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some(name))
            .map(|e| {
                (
                    e.get("ts").and_then(JsonValue::as_u64).unwrap(),
                    e.get("pid").and_then(JsonValue::as_u64).unwrap(),
                )
            })
            .collect()
    };

    // Cross-camera: the vehicle shows up on at least two camera rows.
    let pids: std::collections::BTreeSet<u64> = of_vehicle
        .iter()
        .map(|e| e.get("pid").and_then(JsonValue::as_u64).unwrap())
        .collect();
    assert!(pids.len() >= 2, "trace never crossed cameras: {pids:?}");

    // Detect → InformSend → Reid ordering, ending downstream of where it
    // started (camera 0 is pid 1).
    let detects = stage("Detect");
    let informs = stage("InformSend");
    let reids = stage("Reid");
    let (first_detect_ts, first_detect_pid) = detects[0];
    assert_eq!(first_detect_pid, 1, "first detection happens at camera 0");
    let (inform_ts, inform_pid) = *informs
        .iter()
        .find(|&&(_, pid)| pid == 1)
        .expect("camera 0 informed its MDCS");
    assert!(first_detect_ts <= inform_ts, "inform precedes detection");
    let &(reid_ts, reid_pid) = reids
        .iter()
        .find(|&&(ts, pid)| pid != inform_pid && ts >= inform_ts)
        .expect("a downstream camera re-identified the vehicle");
    assert!(reid_pid > 1, "re-identification happened downstream");

    // The transport hop between them is a complete span with a duration.
    let hop = of_vehicle
        .iter()
        .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("TransportHop"))
        .expect("inform flight recorded");
    assert_eq!(hop.get("ph").and_then(JsonValue::as_str), Some("X"));
    assert!(hop.get("dur").and_then(JsonValue::as_u64).is_some());
    let _ = reid_ts;
}

#[test]
fn registry_renders_prometheus_and_json_snapshots() {
    let (sys, _) = traced_corridor_run();
    let registry = sys.observability().registry();

    let prom = registry.render_prometheus();
    // Per-stage histograms with cumulative buckets and the +Inf bound.
    assert!(
        prom.contains("node_frame_handle_us_bucket"),
        "missing frame-handling histogram:\n{prom}"
    );
    assert!(prom.contains("storage_write_latency_us_bucket"));
    assert!(prom.contains("le=\"+Inf\""));
    assert!(prom.contains("node_frame_handle_us_count"));
    assert!(prom.contains("# TYPE node_frame_handle_us histogram"));
    // Protocol counters made it in.
    assert!(prom.contains("runtime_passages_total"));

    let snapshot = registry.snapshot_json();
    let doc = parse(&snapshot).expect("registry snapshot is valid JSON");
    let histograms = doc
        .get("histograms")
        .and_then(JsonValue::as_array)
        .expect("snapshot lists histograms");
    assert!(!histograms.is_empty());
    let counters = doc
        .get("counters")
        .and_then(JsonValue::as_array)
        .expect("snapshot lists counters");
    assert!(counters
        .iter()
        .any(|c| c.get("name").and_then(JsonValue::as_str) == Some("runtime_events_total")));
}
