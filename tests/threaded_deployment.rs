//! A real multi-threaded deployment (no discrete-event loop): camera nodes
//! on OS threads exchanging protocol messages through the in-process
//! router, with the topology server on its own thread — a compressed
//! version of `examples/threaded_cameras.rs` suitable for CI.

use coral_pie::core::{CameraNode, NodeConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::net::{Endpoint, Envelope, InProcRouter, Message};
use coral_pie::sim::{CameraView, SimDuration, SimTime, TrafficConfig, TrafficModel};
use coral_pie::storage::{EdgeStorageNode, QueryOptions};
use coral_pie::topology::{CameraId, ServerConfig, TopologyServer};
use coral_pie::vision::{DetectorNoise, ObjectClass};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

#[test]
fn threads_and_router_build_a_track() {
    const N: u32 = 3;
    let net = generators::corridor(N as usize, 120.0, 12.0);
    let router = InProcRouter::new();
    let storage = EdgeStorageNode::default();
    let stop = Arc::new(AtomicBool::new(false));
    let clock_ms = Arc::new(AtomicU64::new(0));
    let traffic = Arc::new(Mutex::new(TrafficModel::new(
        net.clone(),
        TrafficConfig::default(),
        7,
    )));

    // Topology server thread.
    let server_rx = router.register(Endpoint::TopologyServer);
    let server_router = router.clone();
    let server_stop = stop.clone();
    let server_net = net.clone();
    let server = thread::spawn(move || {
        let mut server = TopologyServer::new(server_net, ServerConfig::default());
        let mut now_ms = 0u64;
        while !server_stop.load(Ordering::Relaxed) {
            while let Ok(env) = server_rx.try_recv() {
                if let Message::Heartbeat {
                    camera,
                    position,
                    videoing_angle_deg,
                } = env.message
                {
                    now_ms += 1;
                    for u in server
                        .handle_heartbeat(camera, position, videoing_angle_deg, now_ms)
                        .expect("registration succeeds")
                    {
                        let _ = server_router.send(Envelope {
                            from: Endpoint::TopologyServer,
                            to: Endpoint::Camera(u.camera),
                            message: Message::TopologyUpdate(u),
                        });
                    }
                }
            }
            thread::sleep(Duration::from_millis(1));
        }
    });

    // Camera node threads.
    let mut camera_threads = Vec::new();
    for i in 0..N {
        let cam = CameraId(i);
        let rx = router.register(Endpoint::Camera(cam));
        let tx = router.clone();
        let position = net
            .intersection(IntersectionId(i))
            .expect("site exists")
            .position;
        let view = CameraView::standard(position, 0.0);
        let node_storage = storage.clone();
        let cam_stop = stop.clone();
        let cam_clock = clock_ms.clone();
        let cam_traffic = traffic.clone();
        camera_threads.push(thread::spawn(move || {
            let mut node = CameraNode::new(
                cam,
                view,
                NodeConfig {
                    detector_noise: DetectorNoise::perfect(),
                    ..NodeConfig::default()
                },
                node_storage,
                100 + u64::from(i),
            );
            let hb = node.heartbeat();
            tx.send(Envelope {
                from: Endpoint::Camera(cam),
                to: Endpoint::TopologyServer,
                message: hb,
            })
            .expect("server reachable");
            while !cam_stop.load(Ordering::Relaxed) {
                let now_ms = cam_clock.load(Ordering::Relaxed);
                while let Ok(env) = rx.try_recv() {
                    for (to, msg) in node.on_message(env.message, now_ms) {
                        let _ = tx.send(Envelope {
                            from: Endpoint::Camera(cam),
                            to: Endpoint::Camera(to),
                            message: msg,
                        });
                    }
                }
                let scene = { node.view().scene(&cam_traffic.lock()) };
                let out = node.on_frame(&scene, now_ms, None);
                for (to, msg) in out.messages {
                    let _ = tx.send(Envelope {
                        from: Endpoint::Camera(cam),
                        to: Endpoint::Camera(to),
                        message: msg,
                    });
                }
                thread::sleep(Duration::from_millis(2));
            }
            node.flush(cam_clock.load(Ordering::Relaxed), None);
            node.events_generated()
        }));
    }

    // Drive traffic at high speedup on the main thread.
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).expect("connected");
    traffic
        .lock()
        .spawn(SimTime::from_secs(1), r, Some(ObjectClass::Car));
    for _ in 0..450 {
        {
            let mut t = traffic.lock();
            let now = SimTime::from_millis(clock_ms.load(Ordering::Relaxed));
            t.step(now, SimDuration::from_millis(96));
        }
        clock_ms.fetch_add(96, Ordering::Relaxed);
        thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    let mut total_events = 0;
    for h in camera_threads {
        total_events += h.join().expect("camera thread ok");
    }
    server.join().expect("server thread ok");

    // Every camera detected the vehicle; re-identification linked them.
    assert!(total_events >= 3, "events: {total_events}");
    let (vertices, edges, _, _) = storage.stats();
    assert!(vertices >= 3, "vertices: {vertices}");
    assert!(edges >= 1, "no cross-camera links were made");
    let seed = storage
        .with_graph(|g| g.vertices().min_by_key(|v| v.first_seen_ms).map(|v| v.id))
        .expect("detections stored");
    let track = storage
        .query_trajectory(seed, QueryOptions::default())
        .expect("seed exists")
        .best_track();
    assert!(track.len() >= 2, "track: {track:?}");
}
