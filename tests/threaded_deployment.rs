//! A real multi-threaded deployment (no discrete-event loop): camera nodes
//! on OS threads exchanging protocol messages through the in-process
//! router, with the topology server on its own thread — a compressed
//! version of `examples/threaded_cameras.rs` suitable for CI.
//!
//! The threads run the same `NodeDriver` / `ServerDriver` units the DES
//! drives; only the pacing (thread loops and a shared atomic clock)
//! differs.

use coral_pie::core::{CameraSpec, Deployment, NodeConfig, NodeDriver, ServerDriver, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::net::{Endpoint, InProcRouter, InProcTransport, Transport};
use coral_pie::sim::{SimDuration, SimTime, TrafficConfig, TrafficModel};
use coral_pie::storage::{EdgeStorageNode, QueryOptions};
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, ObjectClass};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

#[test]
fn threads_and_router_build_a_track() {
    const N: u32 = 3;
    let net = generators::corridor(N as usize, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..N)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let deployment = Deployment::from_specs(
        net.clone(),
        &specs,
        SystemConfig {
            node: NodeConfig {
                detector_noise: DetectorNoise::perfect(),
                ..NodeConfig::default()
            },
            ..SystemConfig::default()
        },
    );
    let router = InProcRouter::new();
    let storage = EdgeStorageNode::default();
    let stop = Arc::new(AtomicBool::new(false));
    let clock_ms = Arc::new(AtomicU64::new(0));
    let traffic = Arc::new(Mutex::new(TrafficModel::new(
        net.clone(),
        TrafficConfig::default(),
        7,
    )));

    // Topology server thread.
    let mut server_driver = ServerDriver::new(
        deployment.make_server(),
        InProcTransport::attach(&router, Endpoint::TopologyServer),
    );
    let server_stop = stop.clone();
    let server = thread::spawn(move || {
        let mut now_ms = 0u64;
        while !server_stop.load(Ordering::Relaxed) {
            while let Some(env) = server_driver.transport_mut().poll(SimTime::ZERO) {
                now_ms += 1;
                server_driver
                    .on_envelope(env, SimTime::from_millis(now_ms), |_| true)
                    .expect("cameras reachable");
            }
            thread::sleep(Duration::from_millis(1));
        }
    });

    // Camera node threads, each driving a NodeDriver over the router.
    let mut camera_threads = Vec::new();
    for i in 0..N {
        let cam = CameraId(i);
        let mut driver = NodeDriver::new(
            deployment.make_node(cam, storage.clone()).expect("placed"),
            InProcTransport::attach(&router, Endpoint::Camera(cam)),
        );
        let cam_stop = stop.clone();
        let cam_clock = clock_ms.clone();
        let cam_traffic = traffic.clone();
        camera_threads.push(thread::spawn(move || {
            driver
                .send_heartbeat(SimTime::ZERO)
                .expect("server reachable");
            while !cam_stop.load(Ordering::Relaxed) {
                let now = SimTime::from_millis(cam_clock.load(Ordering::Relaxed));
                driver.pump(now, |_| {}).expect("peers reachable");
                let scene = { driver.node().view().scene(&cam_traffic.lock()) };
                driver.capture(&scene, now, None).expect("peers reachable");
                thread::sleep(Duration::from_millis(2));
            }
            let now = SimTime::from_millis(cam_clock.load(Ordering::Relaxed));
            driver.flush(now, None).expect("peers reachable");
            driver.node().events_generated()
        }));
    }

    // Drive traffic at high speedup on the main thread.
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).expect("connected");
    traffic
        .lock()
        .spawn(SimTime::from_secs(1), r, Some(ObjectClass::Car));
    for _ in 0..450 {
        {
            let mut t = traffic.lock();
            let now = SimTime::from_millis(clock_ms.load(Ordering::Relaxed));
            t.step(now, SimDuration::from_millis(96));
        }
        clock_ms.fetch_add(96, Ordering::Relaxed);
        thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    let mut total_events = 0;
    for h in camera_threads {
        total_events += h.join().expect("camera thread ok");
    }
    server.join().expect("server thread ok");

    // Every camera detected the vehicle; re-identification linked them.
    assert!(total_events >= 3, "events: {total_events}");
    let stats = storage.stats();
    let (vertices, edges) = (stats.vertices, stats.edges);
    assert!(vertices >= 3, "vertices: {vertices}");
    assert!(edges >= 1, "no cross-camera links were made");
    let seed = storage
        .with_graph(|g| g.vertices().min_by_key(|v| v.first_seen_ms).map(|v| v.id))
        .expect("detections stored");
    let track = storage
        .query_trajectory(seed, QueryOptions::default())
        .expect("seed exists")
        .best_track();
    assert!(track.len() >= 2, "track: {track:?}");
}
