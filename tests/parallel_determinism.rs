//! Parallel camera stepping is invisible to behavior: a run's full
//! fingerprint — telemetry stream, storage graph, accuracy report — is a
//! pure function of the seed, byte-identical at every
//! `SystemConfig::parallelism`.
//!
//! The analysis phase fans across worker threads, but results merge back
//! in `CameraId` order before any shared-state effect (DESIGN.md §5), so
//! thread scheduling must never leak into a run. The default tests pin a
//! fast smoke subset; `ci.sh` runs the full 8-scenario × 3-seed ×
//! {1, 2, 8}-worker matrix (including under `--release`) via `--ignored`.

use coral_pie::core::{CameraSpec, CoralPieSystem, NodeConfig, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::net::{FaultPlan, FaultPolicy, RetryPolicy};
use coral_pie::sim::{
    FailureEvent, FailureKind, FailureSchedule, PoissonArrivals, SimDuration, SimTime, TrafficLight,
};
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, ObjectClass};
use std::fmt::Write as _;

const SEEDS: [u64; 3] = [7, 1234, 0xC0FFEE];
const PARALLELISMS: [usize; 2] = [2, 8];

/// Serializes everything observable about a finished run.
fn fingerprint(sys: &CoralPieSystem) -> String {
    let mut s = String::new();
    let t = sys.telemetry();
    let _ = writeln!(
        s,
        "counters md={} id={} cd={} ud={} hb={} cb={}",
        t.messages_delivered,
        t.informs_delivered,
        t.confirms_delivered,
        t.updates_delivered,
        t.horizontal_bytes,
        t.cloud_bytes
    );
    for p in &t.passages {
        let _ = writeln!(s, "passage {:?} {:?} {}", p.camera, p.vehicle, p.entered_ms);
    }
    for i in &t.informs {
        let _ = writeln!(
            s,
            "inform at={:?} from={:?} veh={:?} t={:?}",
            i.at, i.from, i.vehicle, i.arrived
        );
    }
    for e in &t.events {
        let _ = writeln!(s, "event {:?} {:?} {:?}", e.0, e.1, e.2);
    }
    for r in &t.recoveries {
        let _ = writeln!(
            s,
            "recovery {:?} {:?} {:?}",
            r.killed, r.killed_at, r.recovered_at
        );
    }
    let _ = writeln!(s, "storage {:?}", sys.storage().stats());
    let _ = writeln!(s, "alive {:?}", sys.alive());
    let _ = writeln!(s, "redundancy {:?}", sys.inform_redundancy());
    let rep = sys.report();
    let _ = writeln!(s, "detection {:?}", rep.detection);
    let _ = writeln!(s, "reid {:?}", rep.reid);
    let _ = writeln!(s, "transitions {:?}", rep.transitions);
    let _ = writeln!(s, "pools {:?}", rep.pools);
    s
}

fn corridor_specs(n: usize) -> Vec<CameraSpec> {
    (0..n)
        .map(|i| CameraSpec {
            id: CameraId(i as u32),
            site: IntersectionId(i as u32),
            videoing_angle_deg: 0.0,
        })
        .collect()
}

fn perfect_node() -> NodeConfig {
    NodeConfig {
        detector_noise: DetectorNoise::perfect(),
        ..NodeConfig::default()
    }
}

// ---- The 8 scenarios. Each maps (seed, parallelism) -> fingerprint. ----

/// 1. Open Poisson workload on a 4-camera corridor, noisy detectors.
fn open_corridor(seed: u64, parallelism: usize) -> String {
    let net = generators::corridor(4, 120.0, 12.0);
    let config = SystemConfig {
        seed,
        parallelism,
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net, &corridor_specs(4), config);
    sys.set_arrivals(PoissonArrivals::new(
        0.3,
        vec![IntersectionId(0), IntersectionId(3)],
        3,
        seed ^ 0xfeed,
    ));
    sys.run_until(SimTime::from_secs(45));
    sys.finish();
    fingerprint(&sys)
}

/// 2. Same workload with MDCS routing replaced by broadcast flooding.
fn open_corridor_broadcast(seed: u64, parallelism: usize) -> String {
    let net = generators::corridor(4, 120.0, 12.0);
    let config = SystemConfig {
        seed,
        parallelism,
        broadcast: true,
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net, &corridor_specs(4), config);
    sys.set_arrivals(PoissonArrivals::new(
        0.3,
        vec![IntersectionId(0), IntersectionId(3)],
        3,
        seed ^ 0xfeed,
    ));
    sys.run_until(SimTime::from_secs(45));
    sys.finish();
    fingerprint(&sys)
}

/// 3. One scripted vehicle crossing three cameras, MDCS routing.
fn single_vehicle(seed: u64, parallelism: usize) -> String {
    single_vehicle_impl(false, seed, parallelism)
}

/// 4. One scripted vehicle, broadcast flooding.
fn single_vehicle_broadcast(seed: u64, parallelism: usize) -> String {
    single_vehicle_impl(true, seed, parallelism)
}

fn single_vehicle_impl(broadcast: bool, seed: u64, parallelism: usize) -> String {
    let net = generators::corridor(3, 120.0, 12.0);
    let config = SystemConfig {
        node: perfect_node(),
        broadcast,
        seed,
        parallelism,
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net.clone(), &corridor_specs(3), config);
    sys.run_until(SimTime::from_secs(2));
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
    sys.traffic_mut()
        .spawn(SimTime::from_secs(2), r, Some(ObjectClass::Car));
    sys.run_until(SimTime::from_secs(40));
    sys.finish();
    fingerprint(&sys)
}

/// 5. Mid-run camera kill: liveness sweep, topology reconfiguration and
///    the recovery protocol all run under the parallel stepper.
fn failure_run(seed: u64, parallelism: usize) -> String {
    let net = generators::corridor(5, 120.0, 12.0);
    let config = SystemConfig {
        node: perfect_node(),
        seed,
        parallelism,
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net.clone(), &corridor_specs(5), config);
    sys.run_until(SimTime::from_secs(5));
    let mut schedule = FailureSchedule::new();
    schedule.push(FailureEvent {
        at: SimTime::from_secs(10),
        camera: CameraId(2),
        kind: FailureKind::Kill,
    });
    sys.set_failures(&schedule);
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(4)).unwrap();
    sys.traffic_mut()
        .spawn(SimTime::from_secs(6), r, Some(ObjectClass::Car));
    sys.run_until(SimTime::from_secs(60));
    sys.finish();
    fingerprint(&sys)
}

/// 6. A platoon queuing at a red light — many vehicles in one FOV.
fn platoon_run(seed: u64, parallelism: usize) -> String {
    let net = generators::corridor(3, 120.0, 12.0);
    let config = SystemConfig {
        node: perfect_node(),
        seed,
        parallelism,
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net.clone(), &corridor_specs(3), config);
    sys.traffic_mut().add_light(TrafficLight::new(
        IntersectionId(1),
        SimDuration::from_secs(40),
        SimDuration::ZERO,
    ));
    sys.run_until(SimTime::from_secs(2));
    for k in 0..3u64 {
        let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
        sys.traffic_mut()
            .spawn(SimTime::from_secs(2 + 3 * k), r, Some(ObjectClass::Car));
    }
    sys.run_until(SimTime::from_secs(80));
    sys.finish();
    fingerprint(&sys)
}

/// 7. Chaos stack live: seeded drops/duplicates under at-least-once
///    delivery. Retransmission timers tick inside the ordered commit
///    phase.
fn chaos_run(seed: u64, parallelism: usize) -> String {
    let net = generators::corridor(4, 120.0, 12.0);
    let config = SystemConfig {
        node: perfect_node(),
        faults: Some(FaultPlan::uniform(
            FaultPolicy {
                drop: 0.05,
                duplicate: 0.01,
                ..FaultPolicy::default()
            },
            seed ^ 0xc0de,
        )),
        reliability: Some(RetryPolicy::default()),
        seed,
        parallelism,
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net, &corridor_specs(4), config);
    sys.set_arrivals(PoissonArrivals::new(
        0.25,
        vec![IntersectionId(0), IntersectionId(3)],
        2,
        seed ^ 0xbeef,
    ));
    sys.run_until(SimTime::from_secs(45));
    sys.finish();
    fingerprint(&sys)
}

/// 8. A 2×3 grid with arrivals from two corners — non-corridor topology,
///    more cameras than workers at `parallelism = 2`.
fn grid_run(seed: u64, parallelism: usize) -> String {
    let net = generators::grid(2, 3, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..6)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: f64::from(i) * 60.0,
        })
        .collect();
    let config = SystemConfig {
        seed,
        parallelism,
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net, &specs, config);
    sys.set_arrivals(PoissonArrivals::new(
        0.3,
        vec![IntersectionId(0), IntersectionId(5)],
        3,
        seed ^ 0xfeed,
    ));
    sys.run_until(SimTime::from_secs(45));
    sys.finish();
    fingerprint(&sys)
}

/// A scenario maps (seed, parallelism) to the run's fingerprint.
type Scenario = fn(u64, usize) -> String;

const SCENARIOS: [(&str, Scenario); 8] = [
    ("open_corridor", open_corridor),
    ("open_corridor_broadcast", open_corridor_broadcast),
    ("single_vehicle", single_vehicle),
    ("single_vehicle_broadcast", single_vehicle_broadcast),
    ("failure_run", failure_run),
    ("platoon_run", platoon_run),
    ("chaos_run", chaos_run),
    ("grid_run", grid_run),
];

fn assert_matrix(scenarios: &[(&str, Scenario)], seeds: &[u64]) {
    for (name, run) in scenarios {
        for &seed in seeds {
            let sequential = run(seed, 1);
            assert!(
                !sequential.is_empty(),
                "{name} seed={seed}: empty fingerprint"
            );
            for &par in &PARALLELISMS {
                let parallel = run(seed, par);
                assert_eq!(
                    sequential, parallel,
                    "{name} seed={seed}: parallelism={par} diverged from sequential"
                );
            }
        }
    }
}

/// Fast smoke subset for `cargo test`: one noisy open workload and the
/// platoon (many vehicles per frame), one seed, all parallelism levels.
#[test]
fn parallel_matches_sequential_smoke() {
    assert_matrix(
        &[
            ("open_corridor", open_corridor as Scenario),
            ("platoon_run", platoon_run),
        ],
        &[SEEDS[0]],
    );
}

/// The full acceptance matrix: 8 scenarios × 3 seeds × parallelism
/// {1, 2, 8}. Slow; run by `ci.sh` (debug and `--release`) via
/// `cargo test --test parallel_determinism -- --ignored`.
#[test]
#[ignore = "full matrix is slow; ci.sh runs it explicitly"]
fn parallel_matches_sequential_full_matrix() {
    assert_matrix(&SCENARIOS, &SEEDS);
}

/// The stepper's utilization metrics land in the shared registry.
#[test]
fn tick_metrics_are_exported() {
    let net = generators::corridor(3, 120.0, 12.0);
    let config = SystemConfig {
        parallelism: 2,
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net, &corridor_specs(3), config);
    sys.set_arrivals(PoissonArrivals::new(
        0.3,
        vec![IntersectionId(0)],
        2,
        0xfeed,
    ));
    sys.run_until(SimTime::from_secs(10));
    let r = sys.observability().registry();
    let ticks = r.counter_value("core_tick_total", &[]).unwrap_or(0);
    assert!(ticks > 0, "tick counter must advance");
    let busy = r.counter_value("core_step_busy_us_total", &[]).unwrap_or(0);
    let critical = r
        .counter_value("core_step_critical_us_total", &[])
        .unwrap_or(0);
    assert!(
        busy >= critical,
        "total work ({busy}us) must dominate the critical path ({critical}us)"
    );
    let prom = r.render_prometheus();
    assert!(
        prom.contains("core_worker_busy_us"),
        "per-worker histograms exported"
    );
    assert!(prom.contains("core_tick_us"), "tick latency exported");
}
