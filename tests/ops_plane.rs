//! The ops plane end to end on the discrete-event simulator: a camera
//! outage is journaled by the flight recorder, flips the health engine's
//! verdict for the dead camera to CRITICAL within one heartbeat-miss
//! deadline (and back to OK after recovery), and `explain_track_break`
//! attributes the induced track break to the outage — while the whole
//! layer stays purely observational (byte-identical fingerprints with
//! health checks disabled, byte-deterministic journal exports per seed).

use coral_pie::core::{CameraSpec, CoralPieSystem, SystemConfig};
use coral_pie::eval::{evaluate, explain_track_break, MissKind, Scenario};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::net::{FaultPlan, FaultPolicy, RetryPolicy};
use coral_pie::obs::{JournalKind, Verdict};
use coral_pie::sim::{
    FailureEvent, FailureKind, FailureSchedule, PoissonArrivals, SimDuration, SimTime,
};
use coral_pie::topology::CameraId;
use coral_pie::vision::GroundTruthId;

/// Heartbeat interval (`SystemConfig::default`), seconds.
const HEARTBEAT_S: u64 = 2;
/// Miss threshold (`SystemConfig::default`).
const MISS_THRESHOLD: u64 = 2;
/// The heartbeat-miss deadline: staleness past this is a dead camera.
const DEADLINE_S: u64 = HEARTBEAT_S * MISS_THRESHOLD;

const KILL_S: u64 = 40;
const RESTORE_S: u64 = 70;

/// Builds the outage scenario's system with vehicles spawned, but without
/// running it — the test drives `run_until` itself so health can be
/// sampled mid-flight (Scenario::run goes straight to the end).
fn outage_system(scenario: &Scenario) -> CoralPieSystem {
    let net = generators::corridor(scenario.cameras, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..scenario.cameras)
        .map(|i| CameraSpec {
            id: CameraId(i as u32),
            site: IntersectionId(i as u32),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let mut sys = CoralPieSystem::new(net.clone(), &specs, scenario.config.clone());
    sys.enable_tracing();
    sys.set_failures(&scenario.failures);
    let first = IntersectionId(0);
    let last = IntersectionId(scenario.cameras as u32 - 1);
    for k in 0..scenario.vehicles as u64 {
        let r = route::shortest_path(&net, first, last).expect("corridor is connected");
        sys.traffic_mut().spawn(
            SimTime::from_secs(scenario.spawn_start_s)
                + SimDuration::from_secs(scenario.spawn_gap_s * k),
            r,
            Some(coral_pie::vision::ObjectClass::Car),
        );
    }
    sys
}

fn journal_kind_count(sys: &CoralPieSystem, kind: JournalKind) -> usize {
    let mut n = 0;
    sys.observability().journal().for_each(|e| {
        if e.kind == kind {
            n += 1;
        }
    });
    n
}

#[test]
fn outage_is_journaled_flips_health_and_explains_the_break() {
    let scenario = Scenario::corridor(5, 6, 42).with_outage(CameraId(2), KILL_S, RESTORE_S);
    let mut sys = outage_system(&scenario);

    // Before the kill: cam2 heartbeats are fresh, no kill on record.
    sys.run_until(SimTime::from_secs(KILL_S - 2));
    assert_eq!(journal_kind_count(&sys, JournalKind::NodeKill), 0);
    let report = sys
        .observability()
        .latest_health()
        .expect("health evaluated every sim-second");
    assert_ne!(
        report.verdict_for("cam2"),
        Some(Verdict::Critical),
        "cam2 critical before the kill: {}",
        report.to_json()
    );

    // One heartbeat-miss deadline (plus the 1 s evaluation cadence) after
    // the kill: the flight recorder has the kill and the health engine
    // has flipped the dead camera to CRITICAL.
    sys.run_until(SimTime::from_secs(KILL_S + DEADLINE_S + 2));
    assert_eq!(journal_kind_count(&sys, JournalKind::NodeKill), 1);
    let report = sys
        .observability()
        .latest_health()
        .expect("health evaluated every sim-second");
    assert_eq!(
        report.verdict_for("cam2"),
        Some(Verdict::Critical),
        "cam2 not critical one deadline after the kill: {}",
        report.to_json()
    );

    // After the restore, the next heartbeats clear the staleness and the
    // camera's verdict returns to OK.
    sys.run_until(SimTime::from_secs(RESTORE_S + DEADLINE_S + 2));
    assert_eq!(journal_kind_count(&sys, JournalKind::NodeRestore), 1);
    let report = sys
        .observability()
        .latest_health()
        .expect("health evaluated every sim-second");
    assert_ne!(
        report.verdict_for("cam2"),
        Some(Verdict::Critical),
        "cam2 still critical after recovery: {}",
        report.to_json()
    );
    // The verdict transitions themselves were journaled.
    assert!(
        journal_kind_count(&sys, JournalKind::HealthChange) >= 1,
        "no HealthChange events journaled across an outage cycle"
    );

    // Run to completion and ask the explainer about a vehicle whose cam2
    // visit was truncated by the outage.
    sys.run_until(SimTime::from_secs(scenario.run_secs));
    sys.finish();
    let report = evaluate(&scenario.name, scenario.config.seed, &sys);
    let broken: Vec<(GroundTruthId, u64)> = report
        .misses
        .iter()
        .filter_map(|m| match m.kind {
            MissKind::Event {
                camera,
                vehicle,
                entered_ms,
            } if camera == CameraId(2) && entered_ms <= RESTORE_S * 1_000 => {
                Some((vehicle, entered_ms))
            }
            _ => None,
        })
        .collect();
    assert!(
        !broken.is_empty(),
        "outage produced no cam2 visit miss to explain; misses: {:?}",
        report.misses
    );
    let (vehicle, _) = broken[0];
    let obs = sys.observability();
    let explanation =
        explain_track_break(&report, obs.journal(), obs.tracer(), vehicle, CameraId(2));
    assert!(
        explanation.outage_attributed(),
        "break not attributed to the outage:\n{}",
        explanation.narrative
    );
}

/// Fingerprint of a run: delivery/event/passage counts plus storage
/// stats — the same tuple `tests/determinism.rs` locks per seed.
fn fingerprint(health_checks: bool) -> (u64, u64, usize, usize, coral_pie::storage::StorageStats) {
    let net = generators::corridor(4, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..4)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let config = SystemConfig {
        health_checks,
        faults: Some(FaultPlan::uniform(
            FaultPolicy {
                drop: 0.05,
                duplicate: 0.01,
                ..FaultPolicy::default()
            },
            0x5eed,
        )),
        reliability: Some(RetryPolicy::default()),
        seed: 7,
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net, &specs, config);
    let mut failures = FailureSchedule::default();
    failures.push(FailureEvent {
        at: SimTime::from_secs(20),
        camera: CameraId(1),
        kind: FailureKind::Kill,
    });
    failures.push(FailureEvent {
        at: SimTime::from_secs(35),
        camera: CameraId(1),
        kind: FailureKind::Restore,
    });
    sys.set_failures(&failures);
    sys.set_arrivals(PoissonArrivals::new(
        0.3,
        vec![IntersectionId(0), IntersectionId(3)],
        3,
        7 ^ 0xfeed,
    ));
    sys.run_until(SimTime::from_secs(60));
    sys.finish();
    let t = sys.telemetry();
    (
        t.messages_delivered,
        t.informs_delivered,
        t.events.len(),
        t.passages.len(),
        sys.storage().stats(),
    )
}

#[test]
fn health_engine_does_not_perturb_the_simulation() {
    // The ops plane is a pure observer: disabling it must leave the DES
    // fingerprint byte-identical, even across kills, drops and retries.
    assert_eq!(fingerprint(true), fingerprint(false));
}

/// A whole-region partition must be visible on the ops plane the same
/// way a camera outage is: the health engine flips CRITICAL for exactly
/// the dead region's subject (the survivor stays healthy), and clears
/// back after the heal once heartbeats land at the revived server again.
#[test]
fn region_partition_flips_health_for_exactly_the_dead_region() {
    use coral_pie::core::FederationConfig;
    use coral_pie::net::{FaultPlan, FaultPolicy, RetryPolicy};

    let net = generators::corridor(6, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..6)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let config = SystemConfig {
        faults: Some(FaultPlan::uniform(
            FaultPolicy {
                drop: 0.05,
                duplicate: 0.01,
                ..FaultPolicy::default()
            },
            0xFED5,
        )),
        reliability: Some(RetryPolicy::default()),
        federation: FederationConfig {
            regions: 2,
            ..FederationConfig::default()
        },
        seed: 42,
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net, &specs, config);
    sys.schedule_region_kill(SimTime::from_secs(KILL_S), 1);
    sys.schedule_region_restore(SimTime::from_secs(RESTORE_S), 1);

    // Before the kill: both regions are in contact and healthy.
    sys.run_until(SimTime::from_secs(KILL_S - 2));
    let report = sys
        .observability()
        .latest_health()
        .expect("health evaluated every sim-second");
    for region in ["region0", "region1"] {
        assert_ne!(
            report.verdict_for(region),
            Some(Verdict::Critical),
            "{region} critical before the partition: {}",
            report.to_json()
        );
    }

    // One heartbeat-miss deadline after the kill: region1's contact gauge
    // is stale past the critical threshold; region0 keeps hearing from
    // its (and, post-failover, the orphaned) cameras.
    sys.run_until(SimTime::from_secs(KILL_S + DEADLINE_S + 2));
    assert_eq!(journal_kind_count(&sys, JournalKind::PartitionOpen), 1);
    let report = sys
        .observability()
        .latest_health()
        .expect("health evaluated every sim-second");
    assert_eq!(
        report.verdict_for("region1"),
        Some(Verdict::Critical),
        "region1 not critical one deadline after the partition: {}",
        report.to_json()
    );
    assert_ne!(
        report.verdict_for("region0"),
        Some(Verdict::Critical),
        "the surviving region0 went critical: {}",
        report.to_json()
    );

    // After the heal the home cameras fail back, their heartbeats refresh
    // the contact gauge, and region1 recovers its verdict.
    sys.run_until(SimTime::from_secs(RESTORE_S + DEADLINE_S + 2));
    assert_eq!(journal_kind_count(&sys, JournalKind::PartitionHeal), 1);
    let report = sys
        .observability()
        .latest_health()
        .expect("health evaluated every sim-second");
    for region in ["region0", "region1"] {
        assert_ne!(
            report.verdict_for(region),
            Some(Verdict::Critical),
            "{region} still critical after the heal: {}",
            report.to_json()
        );
    }
}

#[test]
fn journal_export_is_byte_deterministic_across_seeds() {
    for seed in [7, 42, 1234] {
        let scenario = Scenario::corridor(4, 3, seed)
            .with_faults(0.05, 0.01)
            .with_outage(CameraId(1), 30, 55);
        let a = scenario.run();
        let b = scenario.run();
        let ja = a.observability().journal().export_jsonl();
        let jb = b.observability().journal().export_jsonl();
        assert!(!ja.is_empty(), "seed {seed}: empty journal");
        assert!(
            ja.contains("node_kill") && ja.contains("node_restore"),
            "seed {seed}: outage missing from journal:\n{ja}"
        );
        assert_eq!(ja, jb, "seed {seed}: journal export not deterministic");
    }
}
