//! The live ops endpoint over a real threaded deployment: camera nodes on
//! OS threads behind `Reliable<Faulty<InProc>>` links, the ops HTTP
//! server on an ephemeral port, and a plain `TcpStream` playing `curl`.
//!
//! Fault-free links keep `/healthz` at OK; a lossy network (35% drop)
//! must surface as a non-OK `retransmit-rate` finding while the run is
//! hot. This is the CI smoke for the ops plane (`ci.sh` runs it by name).

use coral_pie::core::obs::{
    default_health_rules, CoreObs, NodeObs, ServerObs, HANDOFF_DEADLINE_MS,
};
use coral_pie::core::{CameraSpec, Deployment, NodeConfig, NodeDriver, ServerDriver, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::net::{
    Endpoint, FaultPlan, FaultPolicy, FaultyTransport, InProcRouter, InProcTransport,
    ReliableTransport, RetryPolicy, Transport,
};
use coral_pie::obs::{OpsServer, OpsState};
use coral_pie::sim::{SimDuration, SimTime, TrafficConfig, TrafficModel};
use coral_pie::storage::EdgeStorageNode;
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, ObjectClass};
use parking_lot::Mutex;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const N: u32 = 3;

/// One `curl`-shaped request; returns (status, body).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("ops endpoint reachable");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").expect("request written");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response read");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

struct RunResult {
    /// `/healthz` bodies sampled while traffic was flowing.
    hot_healthz: Vec<String>,
    /// Final (status, body) of `/healthz` after the threads drained.
    final_healthz: (u16, String),
    final_metrics: String,
    final_journal: String,
}

/// Runs a 3-camera threaded deployment with every link wrapped in the
/// reliability stack over a seeded fault injector, the ops server
/// attached, and one vehicle driven down the corridor.
fn run_threaded(drop: f64) -> RunResult {
    let net = generators::corridor(N as usize, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..N)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let deployment = Deployment::from_specs(
        net.clone(),
        &specs,
        SystemConfig {
            node: NodeConfig {
                detector_noise: DetectorNoise::perfect(),
                ..NodeConfig::default()
            },
            ..SystemConfig::default()
        },
    );
    let config = deployment.config().clone();
    let plan = FaultPlan::uniform(
        FaultPolicy {
            drop,
            ..FaultPolicy::default()
        },
        0x0b5,
    );
    let router = InProcRouter::new();
    let storage = EdgeStorageNode::default();
    let stop = Arc::new(AtomicBool::new(false));
    let clock_ms = Arc::new(AtomicU64::new(0));
    let obs = CoreObs::new();
    obs.install_health_rules(default_health_rules(
        config.heartbeat_interval.as_millis(),
        u64::from(config.miss_threshold),
        HANDOFF_DEADLINE_MS,
        false,
    ));
    storage.instrument(obs.registry());
    let traffic = Arc::new(Mutex::new(TrafficModel::new(
        net.clone(),
        TrafficConfig::default(),
        7,
    )));

    // Every endpoint gets the same stack the DES wires: retries with acks
    // over a seeded fault injector over the router.
    let link = |endpoint: Endpoint| {
        let mut reliable = ReliableTransport::new(
            FaultyTransport::new(
                InProcTransport::attach(&router, endpoint),
                endpoint,
                plan.clone(),
            ),
            endpoint,
            RetryPolicy::default(),
            0xacc5,
        );
        reliable.instrument(obs.registry());
        reliable.set_journal(obs.journal().clone());
        reliable
    };

    let ops = OpsServer::spawn("127.0.0.1:0", {
        let ops_clock = clock_ms.clone();
        OpsState {
            registry: obs.registry().clone(),
            journal: obs.journal().clone(),
            health: obs.health(),
            clock_ms: Arc::new(move || ops_clock.load(Ordering::Relaxed)),
        }
    })
    .expect("ephemeral port bound");
    let addr = ops.local_addr();

    // Topology server thread.
    let mut server_driver =
        ServerDriver::new(deployment.make_server(), link(Endpoint::TopologyServer));
    server_driver.set_obs(ServerObs::new(&obs));
    let server_stop = stop.clone();
    let server_clock = clock_ms.clone();
    let server = thread::spawn(move || {
        while !server_stop.load(Ordering::Relaxed) {
            let now = SimTime::from_millis(server_clock.load(Ordering::Relaxed));
            while let Some(env) = server_driver.transport_mut().poll(now) {
                server_driver
                    .on_envelope(env, now, |_| true)
                    .expect("cameras reachable");
            }
            server_driver.transport_mut().tick(now);
            thread::sleep(Duration::from_millis(2));
        }
    });

    // Camera node threads.
    let mut camera_threads = Vec::new();
    for i in 0..N {
        let cam = CameraId(i);
        let mut driver = NodeDriver::new(
            deployment.make_node(cam, storage.clone()).expect("placed"),
            link(Endpoint::Camera(cam)),
        );
        driver.set_obs(NodeObs::new(&obs, cam));
        let hb_interval_ms = config.heartbeat_interval.as_millis();
        let cam_stop = stop.clone();
        let cam_clock = clock_ms.clone();
        let cam_traffic = traffic.clone();
        camera_threads.push(thread::spawn(move || {
            driver
                .send_heartbeat(SimTime::ZERO)
                .expect("server reachable");
            let mut last_hb_ms = 0u64;
            while !cam_stop.load(Ordering::Relaxed) {
                let now = SimTime::from_millis(cam_clock.load(Ordering::Relaxed));
                if now.as_millis().saturating_sub(last_hb_ms) >= hb_interval_ms {
                    last_hb_ms = now.as_millis();
                    driver.send_heartbeat(now).expect("server reachable");
                }
                driver.pump(now, |_| {}).expect("peers reachable");
                let scene = { driver.node().view().scene(&cam_traffic.lock()) };
                driver.capture(&scene, now, None).expect("peers reachable");
                // Drive the retransmission timers (no-op on clean links).
                driver.transport_mut().tick(now);
                thread::sleep(Duration::from_millis(2));
            }
            let now = SimTime::from_millis(cam_clock.load(Ordering::Relaxed));
            driver.flush(now, None).expect("peers reachable");
        }));
    }

    // Drive traffic on the main thread, sampling /healthz while hot.
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(N - 1))
        .expect("corridor is connected");
    traffic
        .lock()
        .spawn(SimTime::from_secs(1), r, Some(ObjectClass::Car));
    let mut hot_healthz = Vec::new();
    for i in 0..450 {
        {
            let mut t = traffic.lock();
            let now = SimTime::from_millis(clock_ms.load(Ordering::Relaxed));
            t.step(now, SimDuration::from_millis(96));
        }
        clock_ms.fetch_add(96, Ordering::Relaxed);
        if i % 30 == 29 {
            hot_healthz.push(http_get(addr, "/healthz").1);
        }
        thread::sleep(Duration::from_millis(2));
    }
    // Freeze the clock but keep the threads beating briefly, so every
    // camera's last heartbeat is fresh relative to the final clock even
    // if a thread lagged the 48x-speed run.
    thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);
    for h in camera_threads {
        h.join().expect("camera thread ok");
    }
    server.join().expect("server thread ok");

    let final_healthz = http_get(addr, "/healthz");
    let final_metrics = http_get(addr, "/metrics").1;
    let final_journal = http_get(addr, "/journal?last=500").1;
    ops.shutdown();
    RunResult {
        hot_healthz,
        final_healthz,
        final_metrics,
        final_journal,
    }
}

#[test]
fn fault_free_deployment_reports_ok() {
    let run = run_threaded(0.0);
    let (status, body) = &run.final_healthz;
    assert_eq!(*status, 200, "healthz: {body}");
    assert!(
        body.contains("\"overall\": \"ok\""),
        "fault-free run not OK: {body}"
    );
    // The scrape surface is live: heartbeat gauges with HELP/TYPE, and
    // the reliability stack's counters from the instrumented links.
    assert!(
        run.final_metrics.contains("# TYPE"),
        "{}",
        run.final_metrics
    );
    assert!(
        run.final_metrics.contains("node_last_heartbeat_ms"),
        "no heartbeat gauge in /metrics"
    );
    assert!(
        run.final_metrics.contains("reliable_retries_total"),
        "no reliability counters in /metrics"
    );
}

/// Whether a `/healthz` body carries a `retransmit-rate` finding whose
/// own verdict is degraded or critical (OK findings are listed too, so a
/// bare substring match would be vacuous).
fn retransmit_rate_fired(body: &str) -> bool {
    body.match_indices("\"rule\": \"retransmit-rate\"")
        .any(|(i, _)| {
            let finding = &body[i..body[i..].find('}').map_or(body.len(), |e| i + e)];
            finding.contains("\"verdict\": \"degraded\"")
                || finding.contains("\"verdict\": \"critical\"")
        })
}

#[test]
fn lossy_network_degrades_health_while_hot() {
    let run = run_threaded(0.35);
    // At 35% per-envelope drop the retry layer retransmits constantly;
    // some hot sample must carry a retransmit-rate finding past its
    // degraded threshold.
    assert!(
        run.hot_healthz.iter().any(|b| retransmit_rate_fired(b)),
        "no non-OK retransmit-rate finding in any hot sample: {:?}",
        run.hot_healthz
    );
    assert!(
        run.hot_healthz
            .iter()
            .any(|b| b.contains("\"overall\": \"degraded\"")
                || b.contains("\"overall\": \"critical\"")),
        "health never left OK under 35% drop: {:?}",
        run.hot_healthz
    );
    // The flight recorder saw the retransmissions too.
    assert!(
        run.final_journal.contains("retransmit"),
        "journal has no retransmit events: {}",
        run.final_journal
    );
}
