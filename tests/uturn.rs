//! End-to-end U-turn support (paper footnote 3): with
//! `include_self_uturn`, a camera is in its own MDCS, self-informs its
//! detections, and re-identifies a vehicle that turns around beyond its
//! FOV and comes back.

use coral_pie::core::{CameraSpec, CoralPieSystem, NodeConfig, ReidConfig, SystemConfig};
use coral_pie::geo::{generators, route::Route, IntersectionId};
use coral_pie::sim::SimTime;
use coral_pie::topology::{CameraId, MdcsOptions};
use coral_pie::vision::{DetectorNoise, DetectorNoise as _DN, ObjectClass};

fn uturn_system() -> (CoralPieSystem, coral_pie::geo::RoadNetwork) {
    // Corridor 0 - 1 - 2 with cameras at 0 and 1 only; intersection 2 is
    // an uncamera'd turnaround point.
    let net = generators::corridor(3, 120.0, 12.0);
    let specs = vec![
        CameraSpec {
            id: CameraId(0),
            site: IntersectionId(0),
            videoing_angle_deg: 0.0,
        },
        CameraSpec {
            id: CameraId(1),
            site: IntersectionId(1),
            videoing_angle_deg: 0.0,
        },
    ];
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            reid: ReidConfig {
                allow_same_camera: true,
                ..ReidConfig::default()
            },
            ..NodeConfig::default()
        },
        mdcs: MdcsOptions {
            include_self_uturn: true,
            ..MdcsOptions::default()
        },
        ..SystemConfig::default()
    };
    (CoralPieSystem::new(net.clone(), &specs, config), net)
}

/// The out-and-back route 1 → 2 → 1 → 0 (U-turn at intersection 2).
fn out_and_back(net: &coral_pie::geo::RoadNetwork) -> Route {
    let lane = |from: u32, to: u32| {
        net.out_lanes(IntersectionId(from))
            .iter()
            .copied()
            .find(|&l| net.lane(l).unwrap().to == IntersectionId(to))
            .expect("corridor lane exists")
    };
    Route::new(net, vec![lane(0, 1), lane(1, 2), lane(2, 1), lane(1, 0)]).expect("connected route")
}

#[test]
fn self_is_in_the_mdcs() {
    let (mut sys, _) = uturn_system();
    sys.run_until(SimTime::from_secs(3));
    // Camera 1's eastward MDCS (toward the dead end) contains itself.
    let table = sys
        .node(CameraId(1))
        .unwrap()
        .connection()
        .socket_group()
        .table()
        .clone();
    let east = table
        .get(coral_pie::geo::Heading::East)
        .expect("east is an admitted heading");
    assert!(east.contains(&CameraId(1)), "self missing: {east:?}");
}

#[test]
fn uturn_vehicle_is_reidentified_by_the_same_camera() {
    let (mut sys, net) = uturn_system();
    sys.run_until(SimTime::from_secs(2));
    sys.traffic_mut().spawn(
        SimTime::from_secs(2),
        out_and_back(&net),
        Some(ObjectClass::Car),
    );
    sys.run_until(SimTime::from_secs(80));
    sys.finish();

    // Camera 1 saw the vehicle twice (east-bound then west-bound): two
    // events, and the second re-identified the first (a cam1 -> cam1
    // trajectory edge).
    let cam1_events = sys
        .telemetry()
        .events
        .iter()
        .filter(|(c, _, _)| *c == CameraId(1))
        .count();
    assert!(
        cam1_events >= 2,
        "expected two cam1 events, got {cam1_events}"
    );
    let self_edges = sys.storage().with_graph(|g| {
        g.edges()
            .filter(|e| {
                let from = g.vertex(e.from).unwrap();
                let to = g.vertex(e.to).unwrap();
                from.camera == CameraId(1) && to.camera == CameraId(1)
            })
            .count()
    });
    assert!(
        self_edges >= 1,
        "U-turn should produce a same-camera trajectory edge"
    );
    // The full track visits cam0, cam1, cam1, cam0.
    let report = sys.report();
    assert!(
        report.reid.tp >= 2,
        "out-and-back transitions should be linked: {:?}",
        report.reid
    );
}

#[test]
fn without_uturn_support_the_same_scenario_misses_the_link() {
    // Control: identical traffic with the default options loses the
    // cam1 -> cam1 link (the paper's default scoping).
    let net = generators::corridor(3, 120.0, 12.0);
    let specs = vec![
        CameraSpec {
            id: CameraId(0),
            site: IntersectionId(0),
            videoing_angle_deg: 0.0,
        },
        CameraSpec {
            id: CameraId(1),
            site: IntersectionId(1),
            videoing_angle_deg: 0.0,
        },
    ];
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: _DN::perfect(),
            ..NodeConfig::default()
        },
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net.clone(), &specs, config);
    sys.run_until(SimTime::from_secs(2));
    sys.traffic_mut().spawn(
        SimTime::from_secs(2),
        out_and_back(&net),
        Some(ObjectClass::Car),
    );
    sys.run_until(SimTime::from_secs(80));
    sys.finish();
    let self_edges = sys.storage().with_graph(|g| {
        g.edges()
            .filter(|e| {
                let from = g.vertex(e.from).unwrap();
                let to = g.vertex(e.to).unwrap();
                from.camera == to.camera
            })
            .count()
    });
    assert_eq!(self_edges, 0, "default config must not self-link");
}
