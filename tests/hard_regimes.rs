//! Determinism contract for the hard-suite scenario engine: for every
//! adversarial regime (platoon surge, lookalikes, incident re-routing,
//! clutter storm) the same spec and seed must produce a byte-identical
//! run — and sparse (event-driven) stepping must be invisible, exactly as
//! on the corridor workloads (`sparse_equivalence.rs`).
//!
//! Tier-1 pins miniature (3×3, 60 s) versions of each regime so the
//! contract is checked on every `cargo test`; `ci.sh` runs the full-size
//! 3-seed matrix via `--ignored` under `--release`.

use coral_pie::core::CoralPieSystem;
use coral_pie::eval::Scenario;
use coral_pie::sim::{IncidentSpec, ScenarioSpec};
use std::fmt::Write as _;

const SEEDS: [u64; 3] = [7, 1234, 0xC0FFEE];

/// Serializes everything observable about a finished run (same shape as
/// the sparse-equivalence fingerprint).
fn fingerprint(sys: &CoralPieSystem) -> String {
    let mut s = String::new();
    let t = sys.telemetry();
    let _ = writeln!(
        s,
        "counters md={} id={} cd={} ud={} hb={} cb={}",
        t.messages_delivered,
        t.informs_delivered,
        t.confirms_delivered,
        t.updates_delivered,
        t.horizontal_bytes,
        t.cloud_bytes
    );
    for p in &t.passages {
        let _ = writeln!(s, "passage {:?} {:?} {}", p.camera, p.vehicle, p.entered_ms);
    }
    for i in &t.informs {
        let _ = writeln!(
            s,
            "inform at={:?} from={:?} veh={:?} t={:?}",
            i.at, i.from, i.vehicle, i.arrived
        );
    }
    for e in &t.events {
        let _ = writeln!(s, "event {:?} {:?} {:?}", e.0, e.1, e.2);
    }
    let _ = writeln!(s, "storage {:?}", sys.storage().stats());
    let rep = sys.report();
    let _ = writeln!(s, "detection {:?}", rep.detection);
    let _ = writeln!(s, "reid {:?}", rep.reid);
    let _ = writeln!(s, "transitions {:?}", rep.transitions);
    s
}

/// Shrinks a full hard-suite spec to a tier-1-sized run that still
/// exercises the regime's machinery: the traffic model, surge profile,
/// appearance classes and scene effects are kept; the grid, run length
/// and arrival volume come down; 10×10 incident coordinates are remapped
/// onto the 3×3 grid.
fn mini(mut spec: ScenarioSpec) -> ScenarioSpec {
    spec.name = format!("mini_{}", spec.name);
    spec.rows = 3;
    spec.cols = 3;
    spec.run_secs = 60;
    spec.rate_per_s = (spec.rate_per_s / 8.0).max(0.1);
    if let Some(s) = &mut spec.surge {
        s.peak_rate_per_s /= 8.0;
    }
    spec.min_route_lanes = 2;
    if !spec.incidents.is_empty() {
        spec.incidents = vec![IncidentSpec {
            at_s: 15.0,
            duration_s: Some(30.0),
            from: 4,
            to: 5,
        }];
    }
    spec
}

fn run(spec: &ScenarioSpec, seed: u64, sparse: bool) -> String {
    let mut scenario = Scenario::hard(spec.clone(), seed);
    scenario.config.sparse_stepping = sparse;
    fingerprint(&scenario.run())
}

/// Per regime and seed: two dense runs must agree byte-for-byte, a sparse
/// run must agree with them, and a different seed must actually change
/// the run (the regime is seed-driven, not constant).
fn assert_regime_deterministic(spec: &ScenarioSpec, seeds: &[u64]) {
    for &seed in seeds {
        let a = run(spec, seed, false);
        assert!(
            !a.is_empty(),
            "{} seed={seed}: empty fingerprint",
            spec.name
        );
        let b = run(spec, seed, false);
        assert_eq!(
            a, b,
            "{} seed={seed}: same seed produced different runs",
            spec.name
        );
        let sparse = run(spec, seed, true);
        assert_eq!(
            a, sparse,
            "{} seed={seed}: sparse stepping diverged from dense",
            spec.name
        );
    }
    // Cross-seed divergence only makes sense when sweeping seeds — the
    // single-seed full-size tests skip it (their runs are minutes each,
    // and the miniature matrix already pins it per regime).
    if seeds.len() > 1 {
        let a = run(spec, seeds[0], false);
        let b = run(spec, seeds[1], false);
        assert_ne!(
            a, b,
            "{}: different seeds must produce different runs",
            spec.name
        );
    }
}

#[test]
fn mini_platoon_surge_is_deterministic() {
    assert_regime_deterministic(&mini(ScenarioSpec::platoon_surge()), &SEEDS[..1]);
}

#[test]
fn mini_lookalike_is_deterministic() {
    assert_regime_deterministic(&mini(ScenarioSpec::lookalike_city()), &SEEDS[..1]);
}

#[test]
fn mini_incident_reroute_is_deterministic() {
    assert_regime_deterministic(&mini(ScenarioSpec::incident_reroute()), &SEEDS[..1]);
}

#[test]
fn mini_clutter_storm_is_deterministic() {
    assert_regime_deterministic(&mini(ScenarioSpec::clutter_storm()), &SEEDS[..1]);
}

/// The 3-seed sweep over every miniature regime plus the real smoke spec
/// — cheap even in release, so the whole seed matrix runs in one test.
#[test]
#[ignore = "ci.sh runs the seed matrix under --release"]
fn mini_matrix_is_deterministic_across_seeds() {
    for spec in ScenarioSpec::hard_suite() {
        assert_regime_deterministic(&mini(spec), &SEEDS);
    }
    assert_regime_deterministic(&ScenarioSpec::smoke(), &SEEDS);
}

// The full-size 10×10 regimes at the golden seed: one test per regime so
// `cargo test -- --ignored` runs them on parallel test threads (each is
// three ~2-minute city runs: dense, repeat, sparse).

#[test]
#[ignore = "city scale; ci.sh runs the hard suite under --release"]
fn full_platoon_surge_is_deterministic() {
    assert_regime_deterministic(&ScenarioSpec::platoon_surge(), &[42]);
}

#[test]
#[ignore = "city scale; ci.sh runs the hard suite under --release"]
fn full_lookalike_is_deterministic() {
    assert_regime_deterministic(&ScenarioSpec::lookalike_city(), &[42]);
}

#[test]
#[ignore = "city scale; ci.sh runs the hard suite under --release"]
fn full_incident_reroute_is_deterministic() {
    assert_regime_deterministic(&ScenarioSpec::incident_reroute(), &[42]);
}

#[test]
#[ignore = "city scale; ci.sh runs the hard suite under --release"]
fn full_clutter_storm_is_deterministic() {
    assert_regime_deterministic(&ScenarioSpec::clutter_storm(), &[42]);
}
