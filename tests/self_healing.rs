//! Cross-crate integration: failure detection, MDCS healing and rejoin.

use coral_pie::core::{CameraSpec, CoralPieSystem, NodeConfig, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::sim::{FailureEvent, FailureKind, FailureSchedule, SimDuration, SimTime};
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, ObjectClass};

fn system(n: usize, heartbeat_s: u64) -> (CoralPieSystem, coral_pie::geo::RoadNetwork) {
    let net = generators::corridor(n, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..n)
        .map(|i| CameraSpec {
            id: CameraId(i as u32),
            site: IntersectionId(i as u32),
            videoing_angle_deg: 0.0,
        })
        .collect();
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            ..NodeConfig::default()
        },
        heartbeat_interval: SimDuration::from_secs(heartbeat_s),
        ..SystemConfig::default()
    };
    (CoralPieSystem::new(net.clone(), &specs, config), net)
}

fn kill(at_s: u64, cam: u32) -> FailureSchedule {
    let mut s = FailureSchedule::new();
    s.push(FailureEvent {
        at: SimTime::from_secs(at_s),
        camera: CameraId(cam),
        kind: FailureKind::Kill,
    });
    s
}

#[test]
fn recovery_time_scales_with_heartbeat_interval() {
    let mut durations = Vec::new();
    for hb in [2u64, 5] {
        let (mut sys, _) = system(5, hb);
        sys.run_until(SimTime::from_secs(8));
        sys.set_failures(&kill(10, 2));
        sys.run_until(SimTime::from_secs(40));
        let r = sys.telemetry().recoveries[0];
        let d = r.duration();
        // Paper's bound: at most twice the heartbeat interval (plus
        // detection granularity and WAN dissemination).
        assert!(
            d <= SimDuration::from_secs(2 * hb) + SimDuration::from_millis(700),
            "hb {hb}s: recovery {d}"
        );
        assert!(
            d >= SimDuration::from_secs(hb) / 2,
            "hb {hb}s: recovery implausibly fast {d}"
        );
        durations.push(d);
    }
    assert!(
        durations[0] < durations[1],
        "2 s heartbeat must heal faster than 5 s: {durations:?}"
    );
}

#[test]
fn tracking_survives_a_mid_route_failure() {
    // Kill the middle camera of a 5-camera corridor while traffic flows;
    // after healing, upstream informs skip to the next surviving camera and
    // trajectories keep being linked (with the failed camera's segment
    // missing, not the whole track).
    let (mut sys, net) = system(5, 2);
    sys.run_until(SimTime::from_secs(2));
    // Steady vehicle stream.
    for k in 0..8u64 {
        let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(4)).unwrap();
        sys.traffic_mut().spawn(
            SimTime::from_secs(2) + SimDuration::from_secs(12 * k),
            r,
            Some(ObjectClass::Car),
        );
    }
    sys.set_failures(&kill(30, 2));
    sys.run_until(SimTime::from_secs(160));
    sys.finish();

    // The failed camera is gone from the server and from its neighbour's
    // socket group.
    assert!(!sys.server().active_cameras().contains(&CameraId(2)));
    let down1 = sys
        .node(CameraId(1))
        .unwrap()
        .connection()
        .socket_group()
        .all_downstream();
    assert!(
        down1.contains(&CameraId(3)),
        "cam1 must skip to cam3: {down1:?}"
    );
    assert!(!down1.contains(&CameraId(2)));

    // Vehicles that crossed after the failure still get cam1 -> cam3 edges.
    let healed_links = sys.storage().with_graph(|g| {
        g.edges()
            .filter(|e| {
                let from = g.vertex(e.from).unwrap();
                let to = g.vertex(e.to).unwrap();
                from.camera == CameraId(1) && to.camera == CameraId(3)
            })
            .count()
    });
    assert!(
        healed_links >= 2,
        "expected healed cam1->cam3 trajectory edges, got {healed_links}"
    );
}

#[test]
fn failed_camera_rejoins_on_next_heartbeat_cycle() {
    let (mut sys, _) = system(3, 2);
    sys.run_until(SimTime::from_secs(5));
    // Kill camera 1 at 6 s; restore it at 14 s via the scheduled restore
    // path (the camera process reboots and resumes heartbeating).
    let mut schedule = kill(6, 1);
    schedule.push(FailureEvent {
        at: SimTime::from_secs(14),
        camera: CameraId(1),
        kind: FailureKind::Restore,
    });
    sys.set_failures(&schedule);
    sys.run_until(SimTime::from_secs(12));
    // While down, the server evicts the camera and the corridor skips it.
    assert_eq!(sys.server().active_cameras().len(), 2);
    assert!(!sys.server().active_cameras().contains(&CameraId(1)));
    sys.run_until(SimTime::from_secs(24));
    // The revived camera's first heartbeat re-registers it...
    assert!(
        sys.server().active_cameras().contains(&CameraId(1)),
        "restored camera must rejoin the topology"
    );
    assert_eq!(sys.server().active_cameras().len(), 3);
    // ...and MDCS re-stitches the corridor through it: cam0 routes to
    // cam1 again rather than skipping straight to cam2.
    let down0 = sys
        .node(CameraId(0))
        .unwrap()
        .connection()
        .socket_group()
        .all_downstream();
    assert!(
        down0.contains(&CameraId(1)),
        "cam0 must route through the revived cam1 again: {down0:?}"
    );
}

#[test]
fn kill_restore_cycle_round_trip() {
    // Two cameras go through a full Kill -> Restore cycle; both failures
    // heal within the paper's bound and the full roster is back at the end.
    let (mut sys, _) = system(6, 2);
    sys.run_until(SimTime::from_secs(5));
    let cams: Vec<CameraId> = (0..6).map(CameraId).collect();
    let schedule = FailureSchedule::kill_restore_cycle(
        &cams,
        2,
        SimTime::from_secs(8),
        SimDuration::from_secs(20),
        SimDuration::from_secs(10),
        9,
    );
    sys.set_failures(&schedule);
    sys.run_until(SimTime::from_secs(60));
    let recoveries = &sys.telemetry().recoveries;
    assert_eq!(recoveries.len(), 2, "both kills must be healed");
    for r in recoveries {
        assert!(
            r.duration() <= SimDuration::from_secs(4) + SimDuration::from_millis(900),
            "recovery exceeded the 2x heartbeat bound: {r:?}"
        );
    }
    assert_eq!(
        sys.server().active_cameras().len(),
        6,
        "every restored camera must have re-registered"
    );
}

#[test]
fn multiple_overlapping_failures_all_recover() {
    let (mut sys, _) = system(8, 2);
    sys.run_until(SimTime::from_secs(5));
    let mut schedule = FailureSchedule::new();
    // Two cameras die within one heartbeat of each other.
    schedule.push(FailureEvent {
        at: SimTime::from_secs(10),
        camera: CameraId(2),
        kind: FailureKind::Kill,
    });
    schedule.push(FailureEvent {
        at: SimTime::from_millis(10_900),
        camera: CameraId(5),
        kind: FailureKind::Kill,
    });
    sys.set_failures(&schedule);
    sys.run_until(SimTime::from_secs(40));
    let recoveries = &sys.telemetry().recoveries;
    assert_eq!(recoveries.len(), 2, "both failures must be healed");
    for r in recoveries {
        assert!(
            r.duration() <= SimDuration::from_secs(4) + SimDuration::from_millis(900),
            "{:?}",
            r
        );
    }
    // The corridor stitched itself back together: cam1 -> cam3, cam4 -> cam6.
    let down = |cam: u32| {
        sys.node(CameraId(cam))
            .unwrap()
            .connection()
            .socket_group()
            .all_downstream()
    };
    assert!(down(1).contains(&CameraId(3)));
    assert!(down(4).contains(&CameraId(6)));
}
