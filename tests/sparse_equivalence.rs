//! Sparse (event-driven) stepping is invisible to behavior: a run's full
//! fingerprint — telemetry stream, storage graph, accuracy report — is
//! byte-identical with `SystemConfig::sparse_stepping` on or off.
//!
//! Sparse stepping consults the spatial occupancy index each tick and
//! early-outs cameras with no nearby vehicle and no live tracks; cameras
//! with live tracks but an empty candidate list still run the full path on
//! an empty scene so tracker aging and detector clutter draws advance
//! exactly as in a dense run (DESIGN.md §7). The default tests pin a fast
//! smoke subset; `ci.sh` runs the full 9-scenario × 3-seed matrix via
//! `--ignored`.

use coral_pie::core::{CameraSpec, CoralPieSystem, NodeConfig, SystemConfig};
use coral_pie::geo::{generators, route, IntersectionId};
use coral_pie::net::{FaultPlan, FaultPolicy, RetryPolicy};
use coral_pie::sim::{
    CarFollowModel, FailureEvent, FailureKind, FailureSchedule, PoissonArrivals, SimDuration,
    SimTime, TrafficConfig, TrafficLight,
};
use coral_pie::topology::CameraId;
use coral_pie::vision::{DetectorNoise, ObjectClass};
use std::fmt::Write as _;

const SEEDS: [u64; 3] = [7, 1234, 0xC0FFEE];
/// Both modes run under the parallel stepper so the equivalence also
/// covers the sparse batch's interaction with worker partitioning.
const PARALLELISM: usize = 2;

/// Serializes everything observable about a finished run.
fn fingerprint(sys: &CoralPieSystem) -> String {
    let mut s = String::new();
    let t = sys.telemetry();
    let _ = writeln!(
        s,
        "counters md={} id={} cd={} ud={} hb={} cb={}",
        t.messages_delivered,
        t.informs_delivered,
        t.confirms_delivered,
        t.updates_delivered,
        t.horizontal_bytes,
        t.cloud_bytes
    );
    for p in &t.passages {
        let _ = writeln!(s, "passage {:?} {:?} {}", p.camera, p.vehicle, p.entered_ms);
    }
    for i in &t.informs {
        let _ = writeln!(
            s,
            "inform at={:?} from={:?} veh={:?} t={:?}",
            i.at, i.from, i.vehicle, i.arrived
        );
    }
    for e in &t.events {
        let _ = writeln!(s, "event {:?} {:?} {:?}", e.0, e.1, e.2);
    }
    for r in &t.recoveries {
        let _ = writeln!(
            s,
            "recovery {:?} {:?} {:?}",
            r.killed, r.killed_at, r.recovered_at
        );
    }
    let _ = writeln!(s, "storage {:?}", sys.storage().stats());
    let _ = writeln!(s, "alive {:?}", sys.alive());
    let _ = writeln!(s, "redundancy {:?}", sys.inform_redundancy());
    let rep = sys.report();
    let _ = writeln!(s, "detection {:?}", rep.detection);
    let _ = writeln!(s, "reid {:?}", rep.reid);
    let _ = writeln!(s, "transitions {:?}", rep.transitions);
    let _ = writeln!(s, "pools {:?}", rep.pools);
    s
}

fn corridor_specs(n: usize) -> Vec<CameraSpec> {
    (0..n)
        .map(|i| CameraSpec {
            id: CameraId(i as u32),
            site: IntersectionId(i as u32),
            videoing_angle_deg: 0.0,
        })
        .collect()
}

fn perfect_node() -> NodeConfig {
    NodeConfig {
        detector_noise: DetectorNoise::perfect(),
        ..NodeConfig::default()
    }
}

fn config(seed: u64, sparse: bool) -> SystemConfig {
    SystemConfig {
        seed,
        parallelism: PARALLELISM,
        sparse_stepping: sparse,
        ..SystemConfig::default()
    }
}

// ---- The 8 scenarios. Each maps (seed, sparse) -> fingerprint. ----

/// 1. Open Poisson workload on a 4-camera corridor, noisy detectors.
fn open_corridor(seed: u64, sparse: bool) -> String {
    let net = generators::corridor(4, 120.0, 12.0);
    let mut sys = CoralPieSystem::new(net, &corridor_specs(4), config(seed, sparse));
    sys.set_arrivals(PoissonArrivals::new(
        0.3,
        vec![IntersectionId(0), IntersectionId(3)],
        3,
        seed ^ 0xfeed,
    ));
    sys.run_until(SimTime::from_secs(45));
    sys.finish();
    fingerprint(&sys)
}

/// 2. Same workload with MDCS routing replaced by broadcast flooding.
fn open_corridor_broadcast(seed: u64, sparse: bool) -> String {
    let net = generators::corridor(4, 120.0, 12.0);
    let cfg = SystemConfig {
        broadcast: true,
        ..config(seed, sparse)
    };
    let mut sys = CoralPieSystem::new(net, &corridor_specs(4), cfg);
    sys.set_arrivals(PoissonArrivals::new(
        0.3,
        vec![IntersectionId(0), IntersectionId(3)],
        3,
        seed ^ 0xfeed,
    ));
    sys.run_until(SimTime::from_secs(45));
    sys.finish();
    fingerprint(&sys)
}

/// 3. One scripted vehicle crossing three cameras, MDCS routing. Long
///    idle stretches before the spawn and after the exit exercise the
///    early-out on every camera.
fn single_vehicle(seed: u64, sparse: bool) -> String {
    single_vehicle_impl(false, seed, sparse)
}

/// 4. One scripted vehicle, broadcast flooding.
fn single_vehicle_broadcast(seed: u64, sparse: bool) -> String {
    single_vehicle_impl(true, seed, sparse)
}

fn single_vehicle_impl(broadcast: bool, seed: u64, sparse: bool) -> String {
    let net = generators::corridor(3, 120.0, 12.0);
    let cfg = SystemConfig {
        node: perfect_node(),
        broadcast,
        ..config(seed, sparse)
    };
    let mut sys = CoralPieSystem::new(net.clone(), &corridor_specs(3), cfg);
    sys.run_until(SimTime::from_secs(2));
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
    sys.traffic_mut()
        .spawn(SimTime::from_secs(2), r, Some(ObjectClass::Car));
    sys.run_until(SimTime::from_secs(40));
    sys.finish();
    fingerprint(&sys)
}

/// 5. Mid-run camera kill: dead cameras keep their occupancy slot but
///    must not be stepped (or idle-advanced) at all.
fn failure_run(seed: u64, sparse: bool) -> String {
    let net = generators::corridor(5, 120.0, 12.0);
    let cfg = SystemConfig {
        node: perfect_node(),
        ..config(seed, sparse)
    };
    let mut sys = CoralPieSystem::new(net.clone(), &corridor_specs(5), cfg);
    sys.run_until(SimTime::from_secs(5));
    let mut schedule = FailureSchedule::new();
    schedule.push(FailureEvent {
        at: SimTime::from_secs(10),
        camera: CameraId(2),
        kind: FailureKind::Kill,
    });
    sys.set_failures(&schedule);
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(4)).unwrap();
    sys.traffic_mut()
        .spawn(SimTime::from_secs(6), r, Some(ObjectClass::Car));
    sys.run_until(SimTime::from_secs(60));
    sys.finish();
    fingerprint(&sys)
}

/// 6. A platoon queuing at a red light — many vehicles parked inside one
///    FOV for a long time (candidate cache anchors barely move).
fn platoon_run(seed: u64, sparse: bool) -> String {
    let net = generators::corridor(3, 120.0, 12.0);
    let cfg = SystemConfig {
        node: perfect_node(),
        ..config(seed, sparse)
    };
    let mut sys = CoralPieSystem::new(net.clone(), &corridor_specs(3), cfg);
    sys.traffic_mut().add_light(TrafficLight::new(
        IntersectionId(1),
        SimDuration::from_secs(40),
        SimDuration::ZERO,
    ));
    sys.run_until(SimTime::from_secs(2));
    for k in 0..3u64 {
        let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
        sys.traffic_mut()
            .spawn(SimTime::from_secs(2 + 3 * k), r, Some(ObjectClass::Car));
    }
    sys.run_until(SimTime::from_secs(80));
    sys.finish();
    fingerprint(&sys)
}

/// 7. Chaos stack live: seeded drops/duplicates under at-least-once
///    delivery. Idle cameras must still tick their retransmission timers.
fn chaos_run(seed: u64, sparse: bool) -> String {
    let net = generators::corridor(4, 120.0, 12.0);
    let cfg = SystemConfig {
        node: perfect_node(),
        faults: Some(FaultPlan::uniform(
            FaultPolicy {
                drop: 0.05,
                duplicate: 0.01,
                ..FaultPolicy::default()
            },
            seed ^ 0xc0de,
        )),
        reliability: Some(RetryPolicy::default()),
        ..config(seed, sparse)
    };
    let mut sys = CoralPieSystem::new(net, &corridor_specs(4), cfg);
    sys.set_arrivals(PoissonArrivals::new(
        0.25,
        vec![IntersectionId(0), IntersectionId(3)],
        2,
        seed ^ 0xbeef,
    ));
    sys.run_until(SimTime::from_secs(45));
    sys.finish();
    fingerprint(&sys)
}

/// 8. A 2×3 grid with arrivals from two corners — non-corridor topology
///    where occupancy cells cover several cameras at once.
fn grid_run(seed: u64, sparse: bool) -> String {
    let net = generators::grid(2, 3, 120.0, 12.0);
    let specs: Vec<CameraSpec> = (0..6)
        .map(|i| CameraSpec {
            id: CameraId(i),
            site: IntersectionId(i),
            videoing_angle_deg: f64::from(i) * 60.0,
        })
        .collect();
    let mut sys = CoralPieSystem::new(net, &specs, config(seed, sparse));
    sys.set_arrivals(PoissonArrivals::new(
        0.3,
        vec![IntersectionId(0), IntersectionId(5)],
        3,
        seed ^ 0xfeed,
    ));
    sys.run_until(SimTime::from_secs(45));
    sys.finish();
    fingerprint(&sys)
}

/// 9. Fast traffic: IDM vehicles cruising near 30 m/s — several times the
///    ~11 m/s city profile the default anchor slack was tuned for. The
///    speed-derived slack (`slack_for`) must keep the candidate superset
///    exact (the drift test is speed-independent), so sparse and dense
///    fingerprints still agree byte-for-byte.
fn fast_vehicle_run(seed: u64, sparse: bool) -> String {
    let net = generators::corridor(4, 120.0, 30.0);
    let cfg = SystemConfig {
        traffic: TrafficConfig {
            mean_speed_mps: 27.0,
            speed_jitter_mps: 3.0,
            model: CarFollowModel::Idm(Default::default()),
            ..TrafficConfig::default()
        },
        ..config(seed, sparse)
    };
    let mut sys = CoralPieSystem::new(net, &corridor_specs(4), cfg);
    sys.set_arrivals(PoissonArrivals::new(
        0.3,
        vec![IntersectionId(0), IntersectionId(3)],
        3,
        seed ^ 0xfeed,
    ));
    sys.run_until(SimTime::from_secs(45));
    sys.finish();
    fingerprint(&sys)
}

/// A scenario maps (seed, sparse) to the run's fingerprint.
type Scenario = fn(u64, bool) -> String;

const SCENARIOS: [(&str, Scenario); 9] = [
    ("open_corridor", open_corridor),
    ("open_corridor_broadcast", open_corridor_broadcast),
    ("single_vehicle", single_vehicle),
    ("single_vehicle_broadcast", single_vehicle_broadcast),
    ("failure_run", failure_run),
    ("platoon_run", platoon_run),
    ("chaos_run", chaos_run),
    ("grid_run", grid_run),
    ("fast_vehicle_run", fast_vehicle_run),
];

fn assert_matrix(scenarios: &[(&str, Scenario)], seeds: &[u64]) {
    for (name, run) in scenarios {
        for &seed in seeds {
            let dense = run(seed, false);
            assert!(!dense.is_empty(), "{name} seed={seed}: empty fingerprint");
            let sparse = run(seed, true);
            assert_eq!(
                dense, sparse,
                "{name} seed={seed}: sparse stepping diverged from dense"
            );
        }
    }
}

/// Fast smoke subset for `cargo test`: the scripted single vehicle (long
/// all-idle stretches) and the noisy open workload, one seed.
#[test]
fn sparse_matches_dense_smoke() {
    assert_matrix(
        &[
            ("single_vehicle", single_vehicle as Scenario),
            ("open_corridor", open_corridor),
        ],
        &[SEEDS[0]],
    );
}

/// Fast-traffic regression for the speed-derived anchor slack: one seed
/// in tier-1 so a slack derivation bug cannot land silently.
#[test]
fn sparse_matches_dense_fast_vehicles() {
    assert_matrix(
        &[("fast_vehicle_run", fast_vehicle_run as Scenario)],
        &[SEEDS[0]],
    );
}

/// The full acceptance matrix: 9 scenarios × 3 seeds, sparse vs dense.
/// Slow; run by `ci.sh` via `cargo test --test sparse_equivalence --
/// --ignored`.
#[test]
#[ignore = "full matrix is slow; ci.sh runs it explicitly"]
fn sparse_matches_dense_full_matrix() {
    assert_matrix(&SCENARIOS, &SEEDS);
}

/// The sparse path actually skips work: on the scripted single-vehicle
/// corridor most camera-ticks are idle, and the counters prove the
/// early-out fired. Dense mode must report zero skips.
#[test]
fn sparse_skip_counters_advance() {
    let net = generators::corridor(3, 120.0, 12.0);
    let cfg = SystemConfig {
        node: perfect_node(),
        seed: SEEDS[0],
        sparse_stepping: true,
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::new(net.clone(), &corridor_specs(3), cfg);
    sys.run_until(SimTime::from_secs(2));
    let r = route::shortest_path(&net, IntersectionId(0), IntersectionId(2)).unwrap();
    sys.traffic_mut()
        .spawn(SimTime::from_secs(2), r, Some(ObjectClass::Car));
    sys.run_until(SimTime::from_secs(40));
    sys.finish();
    let reg = sys.observability().registry();
    let stepped = reg
        .counter_value("core_cameras_stepped_total", &[])
        .unwrap_or(0);
    let skipped = reg
        .counter_value("core_cameras_skipped_total", &[])
        .unwrap_or(0);
    assert!(skipped > 0, "idle cameras must take the early-out");
    assert!(stepped > 0, "the vehicle's cameras must run the full path");
    assert!(
        skipped > stepped,
        "one vehicle on a 3-camera corridor: most camera-ticks idle \
         (stepped={stepped} skipped={skipped})"
    );
    // Scratch arenas: after the first extraction per camera, every
    // histogram reuses the arena.
    let reuse = reg
        .counter_value("vision_scratch_reuse_total", &[])
        .unwrap_or(0);
    let alloc = reg
        .counter_value("vision_scratch_alloc_total", &[])
        .unwrap_or(0);
    assert!(reuse > 0, "histogram scratch must be reused across frames");
    assert!(
        alloc <= 3,
        "at most one arena allocation per camera (alloc={alloc})"
    );

    // Dense control run: every alive camera steps, none skip.
    let dense_cfg = SystemConfig {
        node: perfect_node(),
        seed: SEEDS[0],
        sparse_stepping: false,
        ..SystemConfig::default()
    };
    let mut dense = CoralPieSystem::new(net.clone(), &corridor_specs(3), dense_cfg);
    dense.run_until(SimTime::from_secs(10));
    dense.finish();
    let reg = dense.observability().registry();
    assert_eq!(
        reg.counter_value("core_cameras_skipped_total", &[])
            .unwrap_or(0),
        0,
        "dense stepping never skips"
    );
}
