//! End-to-end test of lane-resident cameras (paper §4.3, Fig. 8):
//! cameras A and B at intersections 1 and 2, cameras C and D along the
//! lane between them. The topology server assigns C and D to the lane by
//! position, MDCS chains A → C → D → B, and a vehicle produces the full
//! four-hop track.

use coral_pie::core::{CoralPieSystem, NodeConfig, SystemConfig};
use coral_pie::geo::{route, GeoPoint, RoadNetwork};
use coral_pie::sim::SimTime;
use coral_pie::storage::QueryOptions;
use coral_pie::topology::{CameraId, CameraSite};
use coral_pie::vision::{DetectorNoise, ObjectClass};

fn fig8_world() -> (RoadNetwork, Vec<(CameraId, GeoPoint, f64)>) {
    let base = GeoPoint::new(33.77, -84.39);
    let mut net = RoadNetwork::new();
    let v1 = net.add_intersection(base);
    // A long 400 m eastbound segment so the lane cameras' FOVs (35 m) do
    // not overlap the intersections.
    let v2 = net.add_intersection(base.offset_m(0.0, 400.0));
    net.add_two_way(v1, v2, 12.0).unwrap();
    let p1 = net.intersection(v1).unwrap().position;
    let p2 = net.intersection(v2).unwrap().position;
    let placements = vec![
        (CameraId(0), p1, 0.0),                // A at vertex 1
        (CameraId(1), p2, 0.0),                // B at vertex 2
        (CameraId(2), p1.lerp(p2, 0.33), 0.0), // C close to vertex 1
        (CameraId(3), p1.lerp(p2, 0.66), 0.0), // D close to vertex 2
    ];
    (net, placements)
}

#[test]
fn lane_cameras_join_by_position() {
    let (net, placements) = fig8_world();
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            ..NodeConfig::default()
        },
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::with_positions(net, &placements, config);
    sys.run_until(SimTime::from_secs(3));

    // The server placed A and B at vertices, C and D along the lane.
    let topo = sys.server().topology();
    assert!(matches!(
        topo.camera(CameraId(0)).unwrap().site,
        CameraSite::Intersection(_)
    ));
    assert!(matches!(
        topo.camera(CameraId(1)).unwrap().site,
        CameraSite::Intersection(_)
    ));
    for lane_cam in [CameraId(2), CameraId(3)] {
        assert!(
            matches!(topo.camera(lane_cam).unwrap().site, CameraSite::Lane { .. }),
            "{lane_cam} should have been assigned to the lane"
        );
    }

    // Fig. 8 MDCS chain: each camera's eastbound downstream is exactly the
    // next camera along the segment.
    let down = |cam: u32| {
        sys.node(CameraId(cam))
            .unwrap()
            .connection()
            .socket_group()
            .all_downstream()
    };
    assert!(down(0).contains(&CameraId(2)), "A -> C: {:?}", down(0));
    assert!(!down(0).contains(&CameraId(3)), "A must stop at C");
    assert!(down(2).contains(&CameraId(3)), "C -> D: {:?}", down(2));
    assert!(down(3).contains(&CameraId(1)), "D -> B: {:?}", down(3));
}

#[test]
fn vehicle_produces_four_hop_track_through_lane_cameras() {
    let (net, placements) = fig8_world();
    let config = SystemConfig {
        node: NodeConfig {
            detector_noise: DetectorNoise::perfect(),
            ..NodeConfig::default()
        },
        ..SystemConfig::default()
    };
    let mut sys = CoralPieSystem::with_positions(net.clone(), &placements, config);
    sys.run_until(SimTime::from_secs(2));
    let r = route::shortest_path(
        &net,
        net.intersections().next().unwrap().id,
        net.intersections().last().unwrap().id,
    )
    .unwrap();
    sys.traffic_mut()
        .spawn(SimTime::from_secs(2), r, Some(ObjectClass::Car));
    sys.run_until(SimTime::from_secs(60));
    sys.finish();

    // All four cameras saw the vehicle exactly once...
    let report = sys.report();
    for cam in 0..4u32 {
        let acc = report.detection[&CameraId(cam)];
        assert_eq!((acc.tp, acc.fn_), (1, 0), "cam{cam}: {acc:?}");
    }
    // ...and the trajectory chains A -> C -> D -> B.
    let s = sys.storage().stats();
    assert_eq!(s.vertices, 4);
    let e = s.edges;
    assert!(e >= 3, "expected a full chain, got {e} edges");
    let seed = sys.storage().with_graph(|g| {
        g.vertices()
            .min_by_key(|rec| rec.first_seen_ms)
            .map(|rec| rec.id)
            .unwrap()
    });
    let track = sys
        .storage()
        .query_trajectory(seed, QueryOptions::default())
        .unwrap()
        .best_track();
    let cameras: Vec<CameraId> = sys
        .storage()
        .with_graph(|g| track.iter().map(|&v| g.vertex(v).unwrap().camera).collect());
    assert_eq!(
        cameras,
        vec![CameraId(0), CameraId(2), CameraId(3), CameraId(1)],
        "track must pass A, C, D, B in order"
    );
}
