//! Tier-1 accuracy regression gate: replay the corridor scenarios and
//! diff the scores against the checked-in goldens. Any accuracy drift
//! beyond ±0.02 MOTA/IDF1/per-camera-F2 (or any count change) fails the
//! root test suite; bless intentional changes with `CORAL_EVAL_BLESS=1`.

use coral_pie::eval::{check_golden, replay_and_evaluate, GoldenTolerance, Scenario};

#[test]
fn corridor_goldens_hold() {
    for scenario in [Scenario::corridor(5, 5, 42), Scenario::corridor(3, 4, 42)] {
        let report = replay_and_evaluate(&scenario);
        if let Err(errors) = check_golden(&report, GoldenTolerance::default()) {
            panic!(
                "golden drift gate failed for {}:\n  {}",
                scenario.name,
                errors.join("\n  ")
            );
        }
        assert!(
            report.attribution.unattributed_fraction() <= 0.01,
            "{}: {:?}",
            scenario.name,
            report.attribution
        );
    }
}
