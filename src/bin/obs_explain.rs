//! `obs_explain` — why did vehicle V's track break at camera C?
//!
//! Replays a corridor scenario (optionally with a camera outage and/or
//! link faults), evaluates it, and joins the miss attribution with the
//! flight-recorder journal and the per-vehicle causal trace into one
//! answer.
//!
//! ```text
//! obs_explain --vehicle 2 --camera 2 --vehicles 6 --kill 2:40:70
//! obs_explain --cameras 6 --vehicles 4 --seed 7 --drop 0.05 --vehicle 0 --camera 3 --journal
//! ```

use coral_eval::{evaluate, explain_track_break, Scenario};
use coral_topology::CameraId;
use coral_vision::GroundTruthId;

struct Args {
    cameras: usize,
    vehicles: usize,
    seed: u64,
    drop: f64,
    kill: Option<(u32, u64, u64)>,
    vehicle: u64,
    camera: u32,
    journal: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: obs_explain --vehicle V --camera C [--cameras N] [--vehicles N] \
         [--seed S] [--drop P] [--kill CAM:DOWN_S:UP_S] [--journal]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        cameras: 5,
        vehicles: 5,
        seed: 42,
        drop: 0.0,
        kill: None,
        vehicle: 0,
        camera: 0,
        journal: false,
    };
    let mut vehicle_set = false;
    let mut camera_set = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--cameras" => args.cameras = value("--cameras").parse().unwrap_or_else(|_| usage()),
            "--vehicles" => args.vehicles = value("--vehicles").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--drop" => args.drop = value("--drop").parse().unwrap_or_else(|_| usage()),
            "--kill" => {
                let v = value("--kill");
                let parts: Vec<&str> = v.split(':').collect();
                let [cam, down, up] = parts[..] else { usage() };
                args.kill = Some((
                    cam.parse().unwrap_or_else(|_| usage()),
                    down.parse().unwrap_or_else(|_| usage()),
                    up.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "--vehicle" => {
                args.vehicle = value("--vehicle").parse().unwrap_or_else(|_| usage());
                vehicle_set = true;
            }
            "--camera" => {
                args.camera = value("--camera").parse().unwrap_or_else(|_| usage());
                camera_set = true;
            }
            "--journal" => args.journal = true,
            _ => usage(),
        }
    }
    if !vehicle_set || !camera_set {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let mut scenario = Scenario::corridor(args.cameras, args.vehicles, args.seed);
    if args.drop > 0.0 {
        scenario = scenario.with_faults(args.drop, 0.0);
    }
    if let Some((cam, down, up)) = args.kill {
        scenario = scenario.with_outage(CameraId(cam), down, up);
    }
    eprintln!(
        "replaying {} ({} cameras, {} vehicles, seed {})...",
        scenario.name, scenario.cameras, scenario.vehicles, scenario.config.seed
    );
    let sys = scenario.run();
    let report = evaluate(&scenario.name, scenario.config.seed, &sys);
    let obs = sys.observability();
    let explanation = explain_track_break(
        &report,
        obs.journal(),
        obs.tracer(),
        GroundTruthId(args.vehicle),
        CameraId(args.camera),
    );
    println!("{}", explanation.narrative);
    if let Some(health) = obs.latest_health() {
        println!("final health: {:?}", health.overall);
    }
    if args.journal {
        println!(
            "--- journal context ({} events) ---",
            explanation.journal.len()
        );
        for e in &explanation.journal {
            println!("{}", e.to_json_line(false));
        }
    }
}
