//! # Coral-Pie
//!
//! Facade crate re-exporting the Coral-Pie workspace: a geo-distributed
//! edge-compute system for space-time vehicle tracking (STVT).
//!
//! See the [`coral_core`] crate for the end-to-end system harness.

pub use coral_core as core;
pub use coral_eval as eval;
pub use coral_geo as geo;
pub use coral_net as net;
pub use coral_obs as obs;
pub use coral_pipeline as pipeline;
pub use coral_sim as sim;
pub use coral_storage as storage;
pub use coral_topology as topology;
pub use coral_vision as vision;
