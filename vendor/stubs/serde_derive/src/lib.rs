//! Offline test stub for `serde_derive`: hand-rolled `Serialize` /
//! `Deserialize` derives targeting the stub `serde` content model.
//!
//! Supports plain (non-generic) structs and enums with the attribute
//! subset the workspace uses: `#[serde(with = "...")]`, `#[serde(skip)]`,
//! `#[serde(default)]`, `#[serde(skip_serializing_if = "...")]`.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct SerdeAttrs {
    skip: bool,
    default: bool,
    with: Option<String>,
    skip_serializing_if: Option<String>,
}

#[derive(Clone)]
struct Field {
    name: Option<String>,
    ty: String,
    attrs: SerdeAttrs,
}

enum VariantFields {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum Body {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ------------------------------------------------------------------
// token helpers
// ------------------------------------------------------------------

fn tts(stream: TokenStream) -> Vec<TokenTree> {
    stream.into_iter().collect()
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_str(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

fn strip_quotes(lit: String) -> String {
    lit.trim_matches('"').to_string()
}

/// Splits a token slice on commas that sit outside `<...>` nesting.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let stream: TokenStream = tokens.iter().cloned().collect();
    stream.to_string()
}

fn parse_serde_attr(group: &Group, attrs: &mut SerdeAttrs) {
    let toks = tts(group.stream());
    if toks.first().and_then(ident_str).as_deref() != Some("serde") {
        return;
    }
    let Some(TokenTree::Group(inner)) = toks.get(1) else {
        return;
    };
    for entry in split_commas(&tts(inner.stream())) {
        let Some(key) = entry.first().and_then(ident_str) else {
            continue;
        };
        let val = entry.iter().find_map(|t| match t {
            TokenTree::Literal(l) => Some(strip_quotes(l.to_string())),
            _ => None,
        });
        match key.as_str() {
            "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
            "default" => attrs.default = true,
            "with" => attrs.with = val,
            "skip_serializing_if" => attrs.skip_serializing_if = val,
            _ => {}
        }
    }
}

/// Consumes leading attributes, folding `#[serde(...)]` into `attrs`.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 1;
        if *i < tokens.len() && is_punct(&tokens[*i], '!') {
            *i += 1;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            parse_serde_attr(g, &mut attrs);
            *i += 1;
        }
    }
    attrs
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if tokens.get(*i).and_then(ident_str).as_deref() == Some("pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

fn parse_named_fields(group: &Group) -> Vec<Field> {
    let mut out = Vec::new();
    for piece in split_commas(&tts(group.stream())) {
        let mut i = 0usize;
        let attrs = take_attrs(&piece, &mut i);
        skip_visibility(&piece, &mut i);
        let Some(name) = piece.get(i).and_then(ident_str) else {
            continue;
        };
        i += 1;
        debug_assert!(is_punct(&piece[i], ':'));
        i += 1;
        out.push(Field {
            name: Some(name),
            ty: tokens_to_string(&piece[i..]),
            attrs,
        });
    }
    out
}

fn parse_tuple_fields(group: &Group) -> Vec<Field> {
    let mut out = Vec::new();
    for piece in split_commas(&tts(group.stream())) {
        let mut i = 0usize;
        let attrs = take_attrs(&piece, &mut i);
        skip_visibility(&piece, &mut i);
        if i >= piece.len() {
            continue;
        }
        out.push(Field {
            name: None,
            ty: tokens_to_string(&piece[i..]),
            attrs,
        });
    }
    out
}

fn parse_variants(group: &Group) -> Vec<Variant> {
    let mut out = Vec::new();
    for piece in split_commas(&tts(group.stream())) {
        let mut i = 0usize;
        let _attrs = take_attrs(&piece, &mut i);
        let Some(name) = piece.get(i).and_then(ident_str) else {
            continue;
        };
        i += 1;
        let fields = match piece.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantFields::Tuple(parse_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantFields::Named(parse_named_fields(g))
            }
            _ => VariantFields::Unit,
        };
        out.push(Variant { name, fields });
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let tokens = tts(input);
    let mut i = 0usize;
    let _ = take_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = tokens
        .get(i)
        .and_then(ident_str)
        .expect("serde_derive stub: expected `struct` or `enum`");
    i += 1;
    let name = tokens
        .get(i)
        .and_then(ident_str)
        .expect("serde_derive stub: expected type name");
    i += 1;
    // Skip generics if present (unused in this workspace).
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        let mut depth = 0i32;
        while i < tokens.len() {
            if is_punct(&tokens[i], '<') {
                depth += 1;
            } else if is_punct(&tokens[i], '>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // Skip a `where` clause if present.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(_) => break,
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }
    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(parse_tuple_fields(g))
            }
            _ => Body::Unit,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g))
            }
            _ => Body::Enum(Vec::new()),
        },
        other => panic!("serde_derive stub: unsupported item kind `{other}`"),
    };
    Item { name, body }
}

// ------------------------------------------------------------------
// Serialize codegen
// ------------------------------------------------------------------

/// Expression producing the `Content` for one field value expression.
fn ser_value_expr(attrs: &SerdeAttrs, value: &str) -> String {
    match &attrs.with {
        Some(path) => format!(
            "match {path}::serialize({value}, ::serde::ContentSerializer) {{ \
               ::core::result::Result::Ok(__c) => __c, \
               ::core::result::Result::Err(__e) => match __e {{}}, \
             }}"
        ),
        None => format!("::serde::to_content({value})"),
    }
}

/// Statements pushing named fields into a `__fields` vec. `access`
/// renders the borrow expression for a field name.
fn ser_named_pushes(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let name = f.name.as_deref().expect("named field");
        let value = ser_value_expr(&f.attrs, &access(name));
        let push = format!(
            "__fields.push((::std::string::String::from(\"{name}\"), {value}));"
        );
        match &f.attrs.skip_serializing_if {
            Some(pred) => {
                out.push_str(&format!("if !{pred}({}) {{ {push} }}\n", access(name)));
            }
            None => {
                out.push_str(&push);
                out.push('\n');
            }
        }
    }
    out
}

fn derive_serialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => "serializer.serialize_content(::serde::Content::Null)".to_string(),
        Body::Named(fields) => {
            let pushes = ser_named_pushes(fields, |f| format!("&self.{f}"));
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 serializer.serialize_content(::serde::Content::Map(__fields))"
            )
        }
        Body::Tuple(fields) if fields.len() == 1 => {
            // Newtype structs serialise transparently.
            match &fields[0].attrs.with {
                Some(_) => format!(
                    "serializer.serialize_content({})",
                    ser_value_expr(&fields[0].attrs, "&self.0")
                ),
                None => "::serde::Serialize::serialize(&self.0, serializer)".to_string(),
            }
        }
        Body::Tuple(fields) => {
            let items: Vec<String> = fields
                .iter()
                .enumerate()
                .map(|(n, f)| ser_value_expr(&f.attrs, &format!("&self.{n}")))
                .collect();
            format!(
                "serializer.serialize_content(::serde::Content::Seq(::std::vec![{}]))",
                items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serializer.serialize_content(\
                           ::serde::Content::Str(::std::string::String::from(\"{vname}\"))),\n"
                    )),
                    VariantFields::Tuple(fields) if fields.len() == 1 => {
                        let value = ser_value_expr(&fields[0].attrs, "__f0");
                        arms.push_str(&format!(
                            "{name}::{vname}(__f0) => serializer.serialize_content(\
                               ::serde::Content::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), {value})])),\n"
                        ));
                    }
                    VariantFields::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|n| format!("__f{n}")).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .enumerate()
                            .map(|(n, f)| ser_value_expr(&f.attrs, &format!("__f{n}")))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => serializer.serialize_content(\
                               ::serde::Content::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                  ::serde::Content::Seq(::std::vec![{}]))])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let n = f.name.as_deref().expect("named field");
                                if f.attrs.skip {
                                    format!("{n}: _")
                                } else {
                                    n.to_string()
                                }
                            })
                            .collect();
                        let pushes = ser_named_pushes(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                               let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n\
                               {pushes}\
                               serializer.serialize_content(::serde::Content::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                  ::serde::Content::Map(__fields))]))\n\
                             }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           #[allow(unused_mut, unused_variables, clippy::all)]\n\
           fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
             -> ::core::result::Result<S::Ok, S::Error> {{\n\
             {body}\n\
           }}\n\
         }}\n"
    )
}

// ------------------------------------------------------------------
// Deserialize codegen
// ------------------------------------------------------------------

/// Expression converting a `Content` in `__v` into the field type.
fn de_convert_expr(attrs: &SerdeAttrs) -> String {
    match &attrs.with {
        Some(path) => format!(
            "match {path}::deserialize(::serde::ContentDeserializer::new(__v)) {{ \
               ::core::result::Result::Ok(__x) => __x, \
               ::core::result::Result::Err(__e) => \
                 return ::core::result::Result::Err(D::custom(__e)), \
             }}"
        ),
        None => "match ::serde::from_content(__v) { \
                   ::core::result::Result::Ok(__x) => __x, \
                   ::core::result::Result::Err(__e) => \
                     return ::core::result::Result::Err(D::custom(__e)), \
                 }"
        .to_string(),
    }
}

/// Statements binding `__f_{name}` locals from a live `__map` vec.
fn de_named_lets(owner: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let name = f.name.as_deref().expect("named field");
        let ty = &f.ty;
        if f.attrs.skip {
            out.push_str(&format!(
                "let __f_{name}: {ty} = ::core::default::Default::default();\n"
            ));
            continue;
        }
        let convert = de_convert_expr(&f.attrs);
        let missing = if f.attrs.default {
            "::core::default::Default::default()".to_string()
        } else {
            format!(
                "return ::core::result::Result::Err(D::custom(\
                   ::std::string::String::from(\"missing field `{name}` in {owner}\")))"
            )
        };
        out.push_str(&format!(
            "let __f_{name}: {ty} = match ::serde::take_entry(&mut __map, \"{name}\") {{\n\
               ::core::option::Option::Some(__v) => {convert},\n\
               ::core::option::Option::None => {missing},\n\
             }};\n"
        ));
    }
    out
}

fn de_named_ctor(path: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let n = f.name.as_deref().expect("named field");
            format!("{n}: __f_{n}")
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn derive_deserialize_impl(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Unit => {
            format!(
                "let _ = deserializer.deserialize_content()?;\n\
                 ::core::result::Result::Ok({name})"
            )
        }
        Body::Named(fields) => {
            let lets = de_named_lets(name, fields);
            let ctor = de_named_ctor(name, fields);
            format!(
                "let __content = deserializer.deserialize_content()?;\n\
                 let mut __map = match __content {{\n\
                   ::serde::Content::Map(__m) => __m,\n\
                   __other => return ::core::result::Result::Err(D::custom(\
                     ::std::format!(\"expected map for {name}, found {{:?}}\", __other))),\n\
                 }};\n\
                 {lets}\
                 ::core::result::Result::Ok({ctor})"
            )
        }
        Body::Tuple(fields) if fields.len() == 1 => {
            let ty = &fields[0].ty;
            let convert = match &fields[0].attrs.with {
                Some(path) => format!(
                    "{path}::deserialize(::serde::ContentDeserializer::new(__content))"
                ),
                None => format!("::serde::from_content::<{ty}>(__content)"),
            };
            format!(
                "let __content = deserializer.deserialize_content()?;\n\
                 match {convert} {{\n\
                   ::core::result::Result::Ok(__v) => ::core::result::Result::Ok({name}(__v)),\n\
                   ::core::result::Result::Err(__e) => ::core::result::Result::Err(D::custom(__e)),\n\
                 }}"
            )
        }
        Body::Tuple(fields) => {
            let n = fields.len();
            let elems: Vec<String> = fields
                .iter()
                .map(|f| {
                    let ty = &f.ty;
                    format!(
                        "{{ let __v = __it.next().expect(\"length checked\"); \
                           match ::serde::from_content::<{ty}>(__v) {{ \
                             ::core::result::Result::Ok(__x) => __x, \
                             ::core::result::Result::Err(__e) => \
                               return ::core::result::Result::Err(D::custom(__e)), \
                           }} }}"
                    )
                })
                .collect();
            format!(
                "let __content = deserializer.deserialize_content()?;\n\
                 match __content {{\n\
                   ::serde::Content::Seq(__items) if __items.len() == {n} => {{\n\
                     let mut __it = __items.into_iter();\n\
                     ::core::result::Result::Ok({name}({}))\n\
                   }}\n\
                   __other => ::core::result::Result::Err(D::custom(\
                     ::std::format!(\"expected {n}-tuple for {name}, found {{:?}}\", __other))),\n\
                 }}",
                elems.join(", ")
            )
        }
        Body::Enum(variants) => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => str_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantFields::Tuple(fields) if fields.len() == 1 => {
                        let ty = &fields[0].ty;
                        map_arms.push_str(&format!(
                            "\"{vname}\" => match ::serde::from_content::<{ty}>(__v) {{\n\
                               ::core::result::Result::Ok(__x) => \
                                 ::core::result::Result::Ok({name}::{vname}(__x)),\n\
                               ::core::result::Result::Err(__e) => \
                                 ::core::result::Result::Err(D::custom(__e)),\n\
                             }},\n"
                        ));
                    }
                    VariantFields::Tuple(fields) => {
                        let n = fields.len();
                        let elems: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let ty = &f.ty;
                                format!(
                                    "{{ let __v = __it.next().expect(\"length checked\"); \
                                       match ::serde::from_content::<{ty}>(__v) {{ \
                                         ::core::result::Result::Ok(__x) => __x, \
                                         ::core::result::Result::Err(__e) => \
                                           return ::core::result::Result::Err(D::custom(__e)), \
                                       }} }}"
                                )
                            })
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vname}\" => match __v {{\n\
                               ::serde::Content::Seq(__items) if __items.len() == {n} => {{\n\
                                 let mut __it = __items.into_iter();\n\
                                 ::core::result::Result::Ok({name}::{vname}({}))\n\
                               }}\n\
                               __other => ::core::result::Result::Err(D::custom(\
                                 ::std::format!(\"expected {n}-tuple payload for \
                                   {name}::{vname}, found {{:?}}\", __other))),\n\
                             }},\n",
                            elems.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let lets = de_named_lets(&format!("{name}::{vname}"), fields);
                        let ctor = de_named_ctor(&format!("{name}::{vname}"), fields);
                        map_arms.push_str(&format!(
                            "\"{vname}\" => match __v {{\n\
                               ::serde::Content::Map(__m) => {{\n\
                                 let mut __map = __m;\n\
                                 {lets}\
                                 ::core::result::Result::Ok({ctor})\n\
                               }}\n\
                               __other => ::core::result::Result::Err(D::custom(\
                                 ::std::format!(\"expected map payload for {name}::{vname}, \
                                   found {{:?}}\", __other))),\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "let __content = deserializer.deserialize_content()?;\n\
                 match __content {{\n\
                   ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                     {str_arms}\
                     __other => ::core::result::Result::Err(D::custom(\
                       ::std::format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
                   }},\n\
                   ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                     let mut __m = __m;\n\
                     let (__k, __v) = __m.remove(0);\n\
                     match __k.as_str() {{\n\
                       {map_arms}\
                       __other => ::core::result::Result::Err(D::custom(\
                         ::std::format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
                     }}\n\
                   }}\n\
                   __other => ::core::result::Result::Err(D::custom(\
                     ::std::format!(\"invalid enum content for {name}: {{:?}}\", __other))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
           #[allow(unused_mut, unused_variables, clippy::all)]\n\
           fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
             -> ::core::result::Result<Self, D::Error> {{\n\
             {body}\n\
           }}\n\
         }}\n"
    )
}

// ------------------------------------------------------------------
// entry points
// ------------------------------------------------------------------

fn render(source: String) -> TokenStream {
    source
        .parse()
        .unwrap_or_else(|e| panic!("serde_derive stub generated invalid code: {e:?}\n{source}"))
}

/// Derives `serde::Serialize` via the stub content model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(derive_serialize_impl(&item))
}

/// Derives `serde::Deserialize` via the stub content model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render(derive_deserialize_impl(&item))
}
