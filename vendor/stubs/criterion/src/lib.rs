//! Offline test stub for `criterion`: a tiny timing harness with the
//! upstream API surface the workspace benches use. Runs a handful of
//! timed iterations per benchmark and prints one line each, so
//! `cargo bench` completes quickly in CI.

use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortises setup cost (ignored by the stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing context handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    fn report(&self, name: &str) {
        let per_iter = if self.iters > 0 {
            self.elapsed.as_nanos() / u128::from(self.iters)
        } else {
            0
        };
        println!("bench: {name} ... {per_iter} ns/iter ({} iters)", self.iters);
    }
}

const DEFAULT_ITERS: u64 = 5;

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (mapped onto iterations, capped for speed).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 20);
        self
    }

    /// Records a throughput annotation (ignored by the stub).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.iters);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a benchmark without an input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.iters);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Benchmark runner.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: DEFAULT_ITERS,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(DEFAULT_ITERS);
        f(&mut b);
        b.report(&name.to_string());
        self
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
