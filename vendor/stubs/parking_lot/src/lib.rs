//! Offline test stub for `parking_lot`: std sync primitives without
//! lock poisoning.

use std::sync;

/// A mutual exclusion lock (never poisons).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock (never poisons).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}
