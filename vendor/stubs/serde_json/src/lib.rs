//! Offline test stub for `serde_json`: a real (if small) JSON parser
//! and printer bridged to the stub `serde` content model.

use serde::{Content, Deserialize, Deserializer, Serialize};
use std::collections::BTreeMap;

/// JSON error (parse or data-model mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------------
// Value
// ------------------------------------------------------------------

/// A JSON number, preserving integer-ness across round trips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// As unsigned, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(f) if f >= 0.0 && f.fract() == 0.0 => Some(f as u64),
            Number::F64(_) => None,
        }
    }

    /// As signed, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(f) if f.fract() == 0.0 => Some(f as i64),
            Number::F64(_) => None,
        }
    }

    /// As a float (always available).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U64(v) => Some(v as f64),
            Number::I64(v) => Some(v as f64),
            Number::F64(f) => Some(f),
        }
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys, like upstream's default `Map`).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// As boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// As string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", print_content(&value_to_content(self)))
    }
}

fn value_to_content(v: &Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number::U64(n)) => Content::U64(*n),
        Value::Number(Number::I64(n)) => Content::I64(*n),
        Value::Number(Number::F64(n)) => Content::F64(*n),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => Content::Map(
            map.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

fn content_to_value(c: Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::U64(n) => Value::Number(Number::U64(n)),
        Content::I64(n) => Value::Number(Number::I64(n)),
        Content::F64(n) => Value::Number(Number::F64(n)),
        Content::Str(s) => Value::String(s),
        Content::Seq(items) => Value::Array(items.into_iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k, content_to_value(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn serialize<S: serde::Serializer>(
        &self,
        s: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        s.serialize_content(value_to_content(self))
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> std::result::Result<Self, D::Error> {
        Ok(content_to_value(d.deserialize_content()?))
    }
}

// ------------------------------------------------------------------
// printer
// ------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn print_into(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                print_into(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                print_into(v, out);
            }
            out.push('}');
        }
    }
}

fn print_content(c: &Content) -> String {
    let mut out = String::new();
    print_into(c, &mut out);
    out
}

// ------------------------------------------------------------------
// parser
// ------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at offset {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn consume_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.consume_lit("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_lit("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_lit("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
                Ok(Content::Seq(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
                Ok(Content::Map(entries))
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                if !self.consume_lit("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid unicode escape"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Multibyte UTF-8: copy the full scalar.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    if width > 1 {
                        self.pos = start + width;
                        if self.pos > self.bytes.len() {
                            return Err(self.err("truncated utf-8 sequence"));
                        }
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + width])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_document(input: &str) -> Result<Content> {
    let mut p = Parser::new(input);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

// ------------------------------------------------------------------
// serde bridge
// ------------------------------------------------------------------

/// Deserializer handing a parsed content tree to `Deserialize` impls.
#[derive(Debug)]
pub struct JsonDeserializer {
    content: Content,
}

impl<'de> Deserializer<'de> for JsonDeserializer {
    type Error = Error;
    fn deserialize_content(self) -> std::result::Result<Content, Error> {
        Ok(self.content)
    }
    fn custom(msg: String) -> Error {
        Error::new(msg)
    }
}

/// Deserialises `T` from JSON text.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T> {
    let content = parse_document(s)?;
    T::deserialize(JsonDeserializer { content })
}

/// Deserialises `T` from JSON bytes.
pub fn from_slice<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Serialises a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(print_content(&serde::to_content(value)))
}

/// Serialises a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into a dynamically-typed [`Value`].
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T> {
    T::deserialize(JsonDeserializer {
        content: value_to_content(&value),
    })
}

/// Converts any serialisable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(content_to_value(serde::to_content(value)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn value_access() {
        let v: Value = from_str("{\"a\": [1, 2.5], \"b\": {\"c\": \"x\"}}").unwrap();
        let obj = v.as_object().unwrap();
        assert!(obj.contains_key("a"));
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["b"]["c"].as_str(), Some("x"));
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn vec_and_option() {
        let v: Vec<Option<u32>> = from_str("[1, null, 3]").unwrap();
        assert_eq!(v, vec![Some(1), None, Some(3)]);
        assert_eq!(to_string(&v).unwrap(), "[1,null,3]");
    }
}
