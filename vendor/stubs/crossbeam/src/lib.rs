//! Offline test stub for `crossbeam`: multi-consumer channels over
//! `std::sync::mpsc`, with an explicit queue-length counter.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        tx: Tx<T>,
        queued: Arc<AtomicUsize>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Sender {{ queued: {} }}", self.queued.load(Ordering::Relaxed))
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
                queued: Arc::clone(&self.queued),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking if the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let res = match &self.tx {
                Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            };
            if res.is_ok() {
                self.queued.fetch_add(1, Ordering::Relaxed);
            }
            res
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.queued.load(Ordering::Relaxed)
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// The receiving half of a channel (cloneable; receivers share the
    /// stream).
    pub struct Receiver<T> {
        rx: Arc<Mutex<mpsc::Receiver<T>>>,
        queued: Arc<AtomicUsize>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Receiver {{ queued: {} }}", self.queued.load(Ordering::Relaxed))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                rx: Arc::clone(&self.rx),
                queued: Arc::clone(&self.queued),
            }
        }
    }

    impl<T> Receiver<T> {
        fn took(&self) {
            // Saturating decrement: counter is advisory.
            let _ = self
                .queued
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
        }

        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.rx.lock().unwrap_or_else(|p| p.into_inner());
            let v = rx.recv().map_err(|_| RecvError)?;
            self.took();
            Ok(v)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let rx = self.rx.lock().unwrap_or_else(|p| p.into_inner());
            let v = rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })?;
            self.took();
            Ok(v)
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let rx = self.rx.lock().unwrap_or_else(|p| p.into_inner());
            let v = rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })?;
            self.took();
            Ok(v)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.queued.load(Ordering::Relaxed)
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator that ends when all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received values.
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    fn pair<T>(tx: Tx<T>, rx: mpsc::Receiver<T>) -> (Sender<T>, Receiver<T>) {
        let queued = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                tx,
                queued: Arc::clone(&queued),
            },
            Receiver {
                rx: Arc::new(Mutex::new(rx)),
                queued,
            },
        )
    }

    /// Creates a bounded channel; capacity 0 is a rendezvous channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        pair(Tx::Bounded(tx), rx)
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        pair(Tx::Unbounded(tx), rx)
    }
}
