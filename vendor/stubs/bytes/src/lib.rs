//! Offline test stub for the `bytes` crate: a cheaply cloneable,
//! immutable byte buffer.

use std::sync::Arc;

/// A reference-counted immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            data: Vec::new().into(),
        }
    }
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer from a static slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes { data: s.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        iter.into_iter().collect::<Vec<u8>>().into()
    }
}
