//! Offline test stub for the `rand` crate: a deterministic splitmix64
//! generator behind the subset of the rand 0.8 API this workspace uses.

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator: splitmix64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed ^ 0x5DEE_CE66_D9F4_A7C1,
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Conversion of raw bits into a sampled value (the `Standard`
/// distribution equivalent).
pub trait SampleStub: Sized {
    /// Samples one value from `rng`.
    fn sample_stub<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStub for f64 {
    fn sample_stub<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl SampleStub for f32 {
    fn sample_stub<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample_stub(rng) as f32
    }
}

impl SampleStub for bool {
    fn sample_stub<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStub for u64 {
    fn sample_stub<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStub for u32 {
    fn sample_stub<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// A range a uniform value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.end > self.start, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let span = (hi - lo) as u64;
                let r = rng.next_u64();
                if span == u64::MAX {
                    r as $t
                } else {
                    lo + (r % (span + 1)) as $t
                }
            }
        }
    )*};
}
uint_range!(u8, u16, u32, u64, usize);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.end > self.start, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let span = (hi as i128 - lo as i128) as u64;
                let r = rng.next_u64();
                if span == u64::MAX {
                    r as $t
                } else {
                    (lo as i128 + (r % (span + 1)) as i128) as $t
                }
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.end > self.start, "cannot sample empty range");
        self.start + f64::sample_stub(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(b >= a, "cannot sample empty range");
        a + f64::sample_stub(rng) * (b - a)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly.
    fn gen<T: SampleStub>(&mut self) -> T {
        T::sample_stub(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_stub(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators.
pub mod rngs {
    pub use crate::StdRng;
}

/// Sequence helpers.
pub mod seq {
    use crate::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v = r.gen_range(3u64..9);
            assert!((3..9).contains(&v));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.gen_range(1usize..=5);
            assert!((1..=5).contains(&i));
        }
    }
}
