//! Offline test stub for `proptest`: a deterministic property-testing
//! harness. Cases are generated from a splitmix64 stream seeded by the
//! test's module path + name + case index, so runs are reproducible
//! without any shrinking machinery.

/// Deterministic random source backing every strategy.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Seeds a generator for one named test case.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Gen {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform usize in `[lo, hi)`; `lo` when the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, g: &mut Gen) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, g: &mut Gen) -> S::Value {
        (**self).sample(g)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, g: &mut Gen) -> O {
        (self.f)(self.inner.sample(g))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, g: &mut Gen) -> S2::Value {
        (self.f)(self.inner.sample(g)).sample(g)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as $wide - self.start as $wide) as u64;
                (self.start as $wide + (g.next_u64() % span) as $wide) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, g: &mut Gen) -> $t {
                let (lo, hi) = (*self.start() as $wide, *self.end() as $wide);
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo) as u64;
                let r = g.next_u64();
                let v = if span == u64::MAX { r } else { r % (span + 1) };
                (lo + v as $wide) as $t
            }
        }
    )*};
}
int_range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128
);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + (g.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, g: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                lo + (g.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, g: &mut Gen) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(g),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Always returns a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _g: &mut Gen) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed samplers (built by [`prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<Box<dyn Fn(&mut Gen) -> V>>,
}

impl<V> std::fmt::Debug for OneOf<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OneOf({} arms)", self.arms.len())
    }
}

impl<V> OneOf<V> {
    /// Wraps the arm samplers.
    pub fn new(arms: Vec<Box<dyn Fn(&mut Gen) -> V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, g: &mut Gen) -> V {
        let idx = g.usize_in(0, self.arms.len());
        (self.arms[idx])(g)
    }
}

/// Boxes a strategy's sampler for [`OneOf`] (macro support).
pub fn sampler_box<S: Strategy + 'static>(s: S) -> Box<dyn Fn(&mut Gen) -> S::Value> {
    Box::new(move |g| s.sample(g))
}

/// Length specification for [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_excl: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_excl: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_excl: *r.end() + 1,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Gen, SizeRange, Strategy};

    /// Strategy for vectors of `elem` with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// Generates `Vec<S::Value>` with lengths in `len`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, g: &mut Gen) -> Vec<S::Value> {
            let n = g.usize_in(self.len.lo, self.len.hi_excl);
            (0..n).map(|_| self.elem.sample(g)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Gen, Strategy};

    /// Strategy yielding `None` about a quarter of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Option<S::Value>`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, g: &mut Gen) -> Option<S::Value> {
            if g.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.sample(g))
            }
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Gen, Strategy};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// Uniform boolean strategy value.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = core::primitive::bool;
        fn sample(&self, g: &mut Gen) -> core::primitive::bool {
            g.next_u64() & 1 == 1
        }
    }
}

/// Types with a canonical strategy.
pub trait Arbitrary {
    /// That canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for core::primitive::bool {
    type Strategy = crate::bool::AnyBool;
    fn arbitrary() -> Self::Strategy {
        crate::bool::ANY
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Runner configuration (only `cases` is honoured by the stub).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases executed per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a zero-argument function running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..(__cfg.cases as u64) {
                    let mut __gen = $crate::Gen::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __gen);)+
                    let __result: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(__msg) = __result {
                        panic!("proptest case {} failed: {}", __case, __msg);
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property case unless the values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if !(__l == __r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), __l, __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &$left;
        let __r = &$right;
        if !(__l == __r) {
            return ::core::result::Result::Err(::std::format!(
                "{} (left: {:?}, right: {:?})",
                ::std::format!($($fmt)+), __l, __r,
            ));
        }
    }};
}

/// Fails the enclosing property case if the values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if __l == __r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left), stringify!($right), __l,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = &$left;
        let __r = &$right;
        if __l == __r {
            return ::core::result::Result::Err(::std::format!(
                "{} (both: {:?})",
                ::std::format!($($fmt)+), __l,
            ));
        }
    }};
}

/// Uniform choice among strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![$($crate::sampler_box($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut g = Gen::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut g);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..3.5).sample(&mut g);
            assert!((-2.0..3.5).contains(&f));
            let b = (0u8..=255).sample(&mut g);
            let _ = b;
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = Gen::for_case("x", 7);
        let mut b = Gen::for_case("x", 7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn harness_runs(v in collection::vec(0u64..10, 1..5), flag in crate::bool::ANY) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| *x < 10));
            let _ = flag;
        }
    }
}
