//! Offline test stub for `serde`: a self-describing content tree behind
//! serde-shaped `Serialize`/`Deserialize`/`Serializer`/`Deserializer`
//! traits, plus re-exported derive macros.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serialises through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples).
    Seq(Vec<Content>),
    /// Key-ordered map (structs, maps). Order is insertion order.
    Map(Vec<(String, Content)>),
}

/// A sink values serialise into.
pub trait Serializer: Sized {
    /// Successful output.
    type Ok;
    /// Failure type.
    type Error;
    /// Consumes a fully built content tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// A serialisable value.
pub trait Serialize {
    /// Serialises `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A source of content trees.
pub trait Deserializer<'de>: Sized {
    /// Failure type.
    type Error;
    /// Produces the content tree.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
    /// Builds an error from a message.
    fn custom(msg: String) -> Self::Error;
}

/// A deserialisable value.
pub trait Deserialize<'de>: Sized {
    /// Reads `Self` out of `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Infallible serializer producing the content tree itself.
#[derive(Debug, Clone, Copy)]
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = core::convert::Infallible;
    fn serialize_content(self, content: Content) -> Result<Content, Self::Error> {
        Ok(content)
    }
}

/// Serialises any value to its content tree (infallible by construction).
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
    match value.serialize(ContentSerializer) {
        Ok(c) => c,
        Err(e) => match e {},
    }
}

/// Deserializer reading from an in-memory content tree, with `String`
/// errors.
#[derive(Debug, Clone)]
pub struct ContentDeserializer {
    content: Content,
}

impl ContentDeserializer {
    /// Wraps a content tree.
    pub fn new(content: Content) -> Self {
        ContentDeserializer { content }
    }
}

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = String;
    fn deserialize_content(self) -> Result<Content, String> {
        Ok(self.content)
    }
    fn custom(msg: String) -> String {
        msg
    }
}

/// Deserialises a value from a content tree.
pub fn from_content<T: for<'de> Deserialize<'de>>(content: Content) -> Result<T, String> {
    T::deserialize(ContentDeserializer::new(content))
}

/// Removes and returns the first entry named `key` (derive-internal).
pub fn take_entry(map: &mut Vec<(String, Content)>, key: &str) -> Option<Content> {
    let idx = map.iter().position(|(k, _)| k == key)?;
    Some(map.remove(idx).1)
}

// ---------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_content(Content::U64(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    s.serialize_content(Content::U64(v as u64))
                } else {
                    s.serialize_content(Content::I64(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::F64(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.clone()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_content(Content::Null),
            Some(v) => v.serialize(s),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_content(Content::Seq(vec![$(to_content(&self.$n)),+]))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Renders a key's content as a JSON-compatible map key string.
fn key_to_string(c: Content) -> String {
    match c {
        Content::Str(s) => s,
        Content::U64(v) => v.to_string(),
        Content::I64(v) => v.to_string(),
        Content::Bool(b) => b.to_string(),
        other => panic!("unsupported map key content: {other:?}"),
    }
}

/// Recovers a key from its map-key string form.
fn key_from_string<K: for<'a> Deserialize<'a>>(s: String) -> Result<K, String> {
    if let Ok(k) = from_content::<K>(Content::Str(s.clone())) {
        return Ok(k);
    }
    if let Ok(v) = s.parse::<u64>() {
        if let Ok(k) = from_content::<K>(Content::U64(v)) {
            return Ok(k);
        }
    }
    if let Ok(v) = s.parse::<i64>() {
        if let Ok(k) = from_content::<K>(Content::I64(v)) {
            return Ok(k);
        }
    }
    Err(format!("cannot deserialize map key from `{s}`"))
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(to_content(k)), to_content(v)))
                .collect(),
        ))
    }
}

impl<K: Serialize + std::hash::Hash + Eq, V: Serialize> Serialize
    for std::collections::HashMap<K, V>
{
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (key_to_string(to_content(k)), to_content(v)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        s.serialize_content(Content::Map(entries))
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<T: Serialize + std::hash::Hash + Eq> Serialize for std::collections::HashSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut items: Vec<Content> = self.iter().map(to_content).collect();
        items.sort_by(content_order);
        s.serialize_content(Content::Seq(items))
    }
}

/// Total order over content for deterministic set serialisation.
fn content_order(a: &Content, b: &Content) -> std::cmp::Ordering {
    format!("{a:?}").cmp(&format!("{b:?}"))
}

impl Serialize for Content {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(self.clone())
    }
}

// ---------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------

fn want<T>(what: &str, got: &Content) -> Result<T, String> {
    Err(format!("expected {what}, found {got:?}"))
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let c = d.deserialize_content()?;
                let v: Result<$t, String> = match c {
                    Content::U64(v) => <$t>::try_from(v).map_err(|_| "integer out of range".to_string()),
                    Content::F64(f) if f >= 0.0 && f.fract() == 0.0 => Ok(f as $t),
                    ref other => want(stringify!($t), other),
                };
                v.map_err(D::custom)
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let c = d.deserialize_content()?;
                let v: Result<$t, String> = match c {
                    Content::U64(v) => <$t>::try_from(v).map_err(|_| "integer out of range".to_string()),
                    Content::I64(v) => <$t>::try_from(v).map_err(|_| "integer out of range".to_string()),
                    Content::F64(f) if f.fract() == 0.0 => Ok(f as $t),
                    ref other => want(stringify!($t), other),
                };
                v.map_err(D::custom)
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let c = d.deserialize_content()?;
        match c {
            Content::F64(f) => Ok(f),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            ref other => want::<f64>("f64", other).map_err(D::custom),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let c = d.deserialize_content()?;
        match c {
            Content::Bool(b) => Ok(b),
            ref other => want::<bool>("bool", other).map_err(D::custom),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let c = d.deserialize_content()?;
        match c {
            Content::Str(s) => Ok(s),
            ref other => want::<String>("string", other).map_err(D::custom),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let c = d.deserialize_content()?;
        match c {
            Content::Null => Ok(None),
            other => from_content::<T>(other).map(Some).map_err(D::custom),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(d)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| D::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let c = d.deserialize_content()?;
        match c {
            Content::Seq(items) => items
                .into_iter()
                .map(|i| from_content::<T>(i))
                .collect::<Result<Vec<T>, String>>()
                .map_err(D::custom),
            ref other => want::<Vec<T>>("sequence", other).map_err(D::custom),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let c = d.deserialize_content()?;
                match c {
                    Content::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($(
                            from_content::<$t>(it.next().expect("len checked"))
                                .map_err(D::custom)?,
                        )+))
                    }
                    ref other => want::<Self>("tuple", other).map_err(D::custom),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 TA)
    (2; 0 TA, 1 TB)
    (3; 0 TA, 1 TB, 2 TC)
    (4; 0 TA, 1 TB, 2 TC, 3 TD)
    (5; 0 TA, 1 TB, 2 TC, 3 TD, 4 TE)
}

impl<'de, K: for<'a> Deserialize<'a> + Ord, V: for<'a> Deserialize<'a>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let c = d.deserialize_content()?;
        match c {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, from_content::<V>(v)?)))
                .collect::<Result<_, String>>()
                .map_err(D::custom),
            ref other => want::<Self>("map", other).map_err(D::custom),
        }
    }
}

impl<'de, K: for<'a> Deserialize<'a> + std::hash::Hash + Eq, V: for<'a> Deserialize<'a>>
    Deserialize<'de> for std::collections::HashMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let c = d.deserialize_content()?;
        match c {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, from_content::<V>(v)?)))
                .collect::<Result<_, String>>()
                .map_err(D::custom),
            ref other => want::<Self>("map", other).map_err(D::custom),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

impl<'de, T: for<'a> Deserialize<'a> + std::hash::Hash + Eq> Deserialize<'de>
    for std::collections::HashSet<T>
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.deserialize_content()
    }
}
